//! Per-benchmark workload descriptors.
//!
//! Every benchmark of Table 1 is described *structurally*: how many
//! barrier-separated phases it has, how many tasks per phase, how expensive
//! and how memory-bound each task is, whether consecutive phases are linked
//! producer→consumer (fused workloads like `ray-rot`), or — for `h264dec` —
//! the shape of its decoding pipeline. The OmpSs and Pthreads execution
//! models ([`crate::ompss`], [`crate::pthreads`]) then run the *same*
//! descriptor, mirroring the paper's rule that both variants exploit the
//! same parallelism.
//!
//! Task costs are calibrated to the order of magnitude of the original
//! benchmarks on a 2011-class core (micro- to millisecond tasks, phases of a
//! few milliseconds to tens of milliseconds), but the reproduction targets
//! the *shape* of Table 1, not its absolute numbers.

/// Cost model of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost {
    /// Work in nanoseconds.
    pub cost_ns: u64,
    /// Fraction of the work that is memory bound.
    pub mem_fraction: f64,
}

/// One data-parallel phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Tasks of this phase (work units handed to threads/tasks).
    pub tasks: Vec<TaskCost>,
    /// If true, task `i` of this phase consumes the output of task `i` of
    /// the previous phase (producer→consumer chains, no barrier needed in
    /// the task-graph model).
    pub linked_to_previous: bool,
    /// Serial work (on the master) between the previous phase and this one,
    /// e.g. a reduction or bookkeeping step.
    pub serial_ns: u64,
}

impl Phase {
    /// A phase of `n` identical unlinked tasks.
    pub fn uniform(n: usize, cost_ns: u64, mem_fraction: f64) -> Self {
        Phase {
            tasks: vec![
                TaskCost {
                    cost_ns,
                    mem_fraction
                };
                n
            ],
            linked_to_previous: false,
            serial_ns: 0,
        }
    }

    /// Total work of the phase in nanoseconds.
    pub fn total_work_ns(&self) -> u64 {
        self.tasks.iter().map(|t| t.cost_ns).sum::<u64>() + self.serial_ns
    }
}

/// Shape of the `h264dec` pipeline workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineShape {
    /// Number of frames decoded.
    pub frames: usize,
    /// Cost of the read stage per frame.
    pub read_ns: u64,
    /// Cost of the parse stage per frame.
    pub parse_ns: u64,
    /// Cost of entropy decoding a whole frame.
    pub entropy_ns: u64,
    /// Cost of reconstructing a whole frame.
    pub reconstruct_ns: u64,
    /// Cost of the output stage per frame.
    pub output_ns: u64,
    /// Macroblock rows per frame (the unit reconstruction can be split
    /// into).
    pub mb_rows: usize,
    /// How many macroblock rows the OmpSs variant groups into one task
    /// (the granularity knob discussed in Section 4).
    pub group_rows: usize,
    /// Memory-bound fraction of reconstruction work.
    pub mem_fraction: f64,
}

/// The workload structure of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub enum Structure {
    /// Barrier-separated data-parallel phases (possibly with linked
    /// producer→consumer phases in between).
    Phased(Vec<Phase>),
    /// The 5-stage decoding pipeline of `h264dec`.
    Pipeline(PipelineShape),
}

/// A named benchmark workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkWorkload {
    /// Benchmark name as it appears in Table 1.
    pub name: &'static str,
    /// Class as the paper assigns it (kernel / workload / application).
    pub class: &'static str,
    /// Structural description.
    pub structure: Structure,
}

impl BenchmarkWorkload {
    /// Total work contained in the workload (nanoseconds).
    pub fn total_work_ns(&self) -> u64 {
        match &self.structure {
            Structure::Phased(phases) => phases.iter().map(|p| p.total_work_ns()).sum(),
            Structure::Pipeline(p) => {
                (p.read_ns + p.parse_ns + p.entropy_ns + p.reconstruct_ns + p.output_ns)
                    * p.frames as u64
            }
        }
    }
}

/// Names of the 10 benchmarks, in Table 1 order.
pub fn benchmark_names() -> Vec<&'static str> {
    vec![
        "c-ray",
        "rotate",
        "rgbcmy",
        "md5",
        "kmeans",
        "ray-rot",
        "rot-cc",
        "streamcluster",
        "bodytrack",
        "h264dec",
    ]
}

/// Build the workload descriptor for one benchmark.
///
/// # Panics
/// Panics if `name` is not one of [`benchmark_names`].
pub fn workload(name: &str) -> BenchmarkWorkload {
    match name {
        "c-ray" => cray(),
        "rotate" => rotate(),
        "rgbcmy" => rgbcmy(),
        "md5" => md5(),
        "kmeans" => kmeans(),
        "ray-rot" => ray_rot(),
        "rot-cc" => rot_cc(),
        "streamcluster" => streamcluster(),
        "bodytrack" => bodytrack(),
        "h264dec" => h264dec(),
        other => panic!("unknown benchmark {other}"),
    }
}

/// All ten workloads in Table 1 order.
pub fn all_workloads() -> Vec<BenchmarkWorkload> {
    benchmark_names().into_iter().map(workload).collect()
}

// ---------------------------------------------------------------------------
// Individual benchmark descriptors
// ---------------------------------------------------------------------------

/// Scanline costs for a ray tracer: the sphere cluster makes middle scanlines
/// noticeably more expensive than border ones, which is what gives dynamic
/// (task) scheduling its edge over static partitioning.
fn cray_scanline_costs(lines: usize, mean_ns: u64) -> Vec<TaskCost> {
    (0..lines)
        .map(|y| {
            let t = y as f64 / lines as f64;
            // Bell-shaped load: centre scanlines hit many spheres.
            let weight = 0.55 + 1.5 * (-((t - 0.5) * (t - 0.5)) / 0.035).exp();
            TaskCost {
                cost_ns: (mean_ns as f64 * weight) as u64,
                mem_fraction: 0.10,
            }
        })
        .collect()
}

fn cray() -> BenchmarkWorkload {
    // One frame of 1024 scanlines, ~0.55 ms per average scanline.
    BenchmarkWorkload {
        name: "c-ray",
        class: "kernel",
        structure: Structure::Phased(vec![Phase {
            tasks: cray_scanline_costs(1024, 550_000),
            linked_to_previous: false,
            serial_ns: 0,
        }]),
    }
}

fn rotate() -> BenchmarkWorkload {
    // Rotation of a large image sequence in 1024 row bands; bands are
    // uniform and strongly memory bound, and the single long phase amortises
    // every fixed cost, so the two models end up close (as in the paper).
    BenchmarkWorkload {
        name: "rotate",
        class: "kernel",
        structure: Structure::Phased(vec![Phase::uniform(1024, 1_800_000, 0.75)]),
    }
}

fn rgbcmy() -> BenchmarkWorkload {
    // Many short iterations (the paper: < 20 ms per iteration on 16 cores),
    // each split into 128 row-band tasks and separated by a barrier. The
    // short phases are what make the barrier flavour matter.
    let iterations = 60;
    let phases = (0..iterations)
        .map(|_| Phase::uniform(128, 625_000, 0.80))
        .collect();
    BenchmarkWorkload {
        name: "rgbcmy",
        class: "kernel",
        structure: Structure::Phased(phases),
    }
}

fn md5() -> BenchmarkWorkload {
    // Hashing 2048 independent buffers with mildly varying sizes.
    let tasks = (0..2048usize)
        .map(|i| TaskCost {
            cost_ns: 350_000 + (i % 7) as u64 * 40_000,
            mem_fraction: 0.25,
        })
        .collect();
    BenchmarkWorkload {
        name: "md5",
        class: "kernel",
        structure: Structure::Phased(vec![Phase {
            tasks,
            linked_to_previous: false,
            serial_ns: 0,
        }]),
    }
}

fn kmeans() -> BenchmarkWorkload {
    // 20 Lloyd iterations; each iteration is an assign phase over many small
    // point-chunk tasks (so the task-management overhead of the runtime is
    // visible) and an update/reduction step (serial on the master) followed
    // by a barrier.
    let iterations = 20;
    let mut phases = Vec::new();
    for _ in 0..iterations {
        let mut p = Phase::uniform(1_024, 400_000, 0.55);
        p.serial_ns = 900_000; // centroid reduction + convergence test
        phases.push(p);
    }
    BenchmarkWorkload {
        name: "kmeans",
        class: "workload",
        structure: Structure::Phased(phases),
    }
}

fn ray_rot() -> BenchmarkWorkload {
    // c-ray output feeds rotate: the rotate task of band i consumes the
    // rendered band i. The rotate tasks are heavily memory bound, so
    // executing them on the producer's core (OmpSs locality scheduling) pays
    // off — the effect Section 4 highlights.
    let render = Phase {
        tasks: cray_scanline_costs(1024, 550_000),
        linked_to_previous: false,
        serial_ns: 0,
    };
    let rotate = Phase {
        tasks: (0..1024)
            .map(|_| TaskCost {
                cost_ns: 450_000,
                mem_fraction: 0.85,
            })
            .collect(),
        linked_to_previous: true,
        serial_ns: 0,
    };
    BenchmarkWorkload {
        name: "ray-rot",
        class: "workload",
        structure: Structure::Phased(vec![render, rotate]),
    }
}

fn rot_cc() -> BenchmarkWorkload {
    // rotate output feeds the colour conversion; same fusion pattern as
    // ray-rot but with more uniform producer tasks, so the locality gain is
    // more moderate.
    let rotate = Phase::uniform(1024, 900_000, 0.75);
    let convert = Phase {
        tasks: (0..1024)
            .map(|_| TaskCost {
                cost_ns: 600_000,
                mem_fraction: 0.80,
            })
            .collect(),
        linked_to_previous: true,
        serial_ns: 0,
    };
    BenchmarkWorkload {
        name: "rot-cc",
        class: "workload",
        structure: Structure::Phased(vec![rotate, convert]),
    }
}

fn streamcluster() -> BenchmarkWorkload {
    // Long gain-evaluation phases over the point block, separated by
    // barriers, with a noticeable serial section (opening a centre,
    // bookkeeping) between them. Tasks are numerous and small-ish, so the
    // task-management overhead of the runtime is visible.
    let rounds = 48;
    let mut phases = Vec::new();
    for _ in 0..rounds {
        let mut p = Phase::uniform(1_024, 88_000, 0.45);
        p.serial_ns = 700_000;
        phases.push(p);
    }
    BenchmarkWorkload {
        name: "streamcluster",
        class: "application",
        structure: Structure::Phased(phases),
    }
}

fn bodytrack() -> BenchmarkWorkload {
    // Per frame and annealing layer: a likelihood-evaluation phase over many
    // particle-range tasks, a serial resampling step, and a barrier. Task
    // counts are high and task sizes small, so runtime overhead roughly
    // cancels the barrier advantage and the two models end up even.
    let frames = 10;
    let layers = 4;
    let mut phases = Vec::new();
    for _ in 0..frames * layers {
        let mut p = Phase::uniform(1_024, 400_000, 0.35);
        p.serial_ns = 500_000; // resampling on the master
        phases.push(p);
    }
    BenchmarkWorkload {
        name: "bodytrack",
        class: "application",
        structure: Structure::Phased(phases),
    }
}

fn h264dec() -> BenchmarkWorkload {
    // A 1080p-class stream: 68 macroblock rows, 250 frames. Entropy decoding
    // is inherently sequential within a frame; reconstruction dominates and
    // can be split by macroblock rows. The OmpSs variant must group rows into
    // coarse tasks to amortise task overhead (group_rows), which caps its
    // exposed parallelism — the effect the paper blames for the poor h264dec
    // scaling.
    BenchmarkWorkload {
        name: "h264dec",
        class: "application",
        structure: Structure::Pipeline(PipelineShape {
            frames: 250,
            read_ns: 120_000,
            parse_ns: 60_000,
            entropy_ns: 1_500_000,
            reconstruct_ns: 10_500_000,
            output_ns: 80_000,
            mb_rows: 68,
            group_rows: 10,
            mem_fraction: 0.55,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_benchmarks_exist() {
        let names = benchmark_names();
        assert_eq!(names.len(), 10);
        let workloads = all_workloads();
        assert_eq!(workloads.len(), 10);
        for (n, w) in names.iter().zip(workloads.iter()) {
            assert_eq!(*n, w.name);
            assert!(w.total_work_ns() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = workload("quake3");
    }

    #[test]
    fn classes_match_the_paper() {
        assert_eq!(workload("c-ray").class, "kernel");
        assert_eq!(workload("ray-rot").class, "workload");
        assert_eq!(workload("h264dec").class, "application");
        assert_eq!(workload("streamcluster").class, "application");
    }

    #[test]
    fn cray_load_is_imbalanced() {
        let costs = cray_scanline_costs(100, 500_000);
        let min = costs.iter().map(|c| c.cost_ns).min().unwrap();
        let max = costs.iter().map(|c| c.cost_ns).max().unwrap();
        assert!(max > 2 * min, "centre scanlines must be much heavier");
    }

    #[test]
    fn fused_workloads_link_their_second_phase() {
        for name in ["ray-rot", "rot-cc"] {
            match workload(name).structure {
                Structure::Phased(phases) => {
                    assert_eq!(phases.len(), 2);
                    assert!(!phases[0].linked_to_previous);
                    assert!(phases[1].linked_to_previous);
                    assert_eq!(phases[0].tasks.len(), phases[1].tasks.len());
                }
                _ => panic!("{name} must be phased"),
            }
        }
    }

    #[test]
    fn rgbcmy_iterations_are_short() {
        match workload("rgbcmy").structure {
            Structure::Phased(phases) => {
                assert!(phases.len() >= 20, "many iterations");
                for p in &phases {
                    // Under 20 ms of work per iteration when spread over 16
                    // cores (the paper's observation).
                    assert!(p.total_work_ns() / 16 < 20_000_000);
                }
            }
            _ => panic!("rgbcmy must be phased"),
        }
    }

    #[test]
    fn h264_pipeline_shape_is_plausible() {
        match workload("h264dec").structure {
            Structure::Pipeline(p) => {
                assert!(p.reconstruct_ns > p.entropy_ns);
                assert!(p.mb_rows > p.group_rows);
                assert!(p.frames > 100);
            }
            _ => panic!("h264dec must be a pipeline"),
        }
    }

    #[test]
    fn phase_total_work_includes_serial_part() {
        let mut p = Phase::uniform(4, 100, 0.0);
        assert_eq!(p.total_work_ns(), 400);
        p.serial_ns = 50;
        assert_eq!(p.total_work_ns(), 450);
    }
}

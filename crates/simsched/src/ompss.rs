//! The OmpSs execution model: task graphs, dynamic scheduling, locality,
//! polling barriers.

use crate::dag::{list_schedule, ScheduleOptions, SimDag, SimTaskSpec};
use crate::machine::MachineParams;
use crate::workloads::{BenchmarkWorkload, Phase, PipelineShape, Structure};

/// Virtual execution time of `workload` under the OmpSs model on `cores`
/// cores.
pub fn execution_time_ns(
    workload: &BenchmarkWorkload,
    cores: usize,
    machine: &MachineParams,
) -> u64 {
    match &workload.structure {
        Structure::Phased(phases) => phased_time_ns(phases, cores, machine, true),
        Structure::Pipeline(shape) => pipeline_time_ns(shape, cores, machine),
    }
}

/// Phased execution under the task model. Consecutive phases whose second
/// member is `linked_to_previous` form one task graph (no barrier in
/// between — the dependences carry the ordering); every graph ends with a
/// polling task barrier (`taskwait`). `locality` toggles the locality-aware
/// scheduler (used by the locality ablation experiment).
pub fn phased_time_ns(
    phases: &[Phase],
    cores: usize,
    machine: &MachineParams,
    locality: bool,
) -> u64 {
    let mut total = 0u64;
    let mut i = 0;
    let options = ScheduleOptions {
        creation_overhead: true,
        dispatch_overhead: true,
        locality_aware: locality,
    };
    while i < phases.len() {
        // Collect the segment of phases joined by producer→consumer links.
        let mut j = i + 1;
        while j < phases.len() && phases[j].linked_to_previous {
            j += 1;
        }
        let segment = &phases[i..j];
        // Serial master work of each phase in the segment happens outside the
        // task graph (between taskwait and the next spawn burst).
        for p in segment {
            total += p.serial_ns;
        }
        let dag = build_segment_dag(segment);
        let result = list_schedule(&dag, cores, machine, &options);
        total += result.makespan_ns + machine.polling_barrier_ns(cores);
        i = j;
    }
    total
}

fn build_segment_dag(segment: &[Phase]) -> SimDag {
    let mut dag = SimDag::new();
    let mut previous_phase_ids: Vec<usize> = Vec::new();
    for (pi, phase) in segment.iter().enumerate() {
        let mut ids = Vec::with_capacity(phase.tasks.len());
        for (ti, task) in phase.tasks.iter().enumerate() {
            let deps = if pi > 0 && phase.linked_to_previous {
                // Task i consumes the output of task i of the previous phase.
                previous_phase_ids
                    .get(ti)
                    .map(|&d| vec![d])
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            ids.push(dag.push(SimTaskSpec::new(task.cost_ns, task.mem_fraction, deps)));
        }
        previous_phase_ids = ids;
    }
    dag
}

/// Pipeline execution under the task model, following Listing 1: one task
/// per stage per frame, each stage serialised across frames through its
/// `inout` context, with the reconstruction stage split into
/// `ceil(mb_rows / group_rows)` row-group tasks (the granularity the paper
/// says OmpSs must use to amortise task overhead).
pub fn pipeline_time_ns(shape: &PipelineShape, cores: usize, machine: &MachineParams) -> u64 {
    let dag = build_pipeline_dag(shape);
    let result = list_schedule(&dag, cores, machine, &ScheduleOptions::ompss());
    result.makespan_ns + machine.polling_barrier_ns(cores)
}

/// Build the Listing-1 task graph for the whole sequence.
pub fn build_pipeline_dag(shape: &PipelineShape) -> SimDag {
    let groups = shape.mb_rows.div_ceil(shape.group_rows).max(1);
    let mut dag = SimDag::new();
    let mut prev_read: Option<usize> = None;
    let mut prev_parse: Option<usize> = None;
    let mut prev_entropy: Option<usize> = None;
    let mut prev_reconstruct: Vec<usize> = Vec::new();
    let mut prev_output: Option<usize> = None;

    for _frame in 0..shape.frames {
        // read: inout(*rc) serialises it against the previous read.
        let read = dag.push(SimTaskSpec::new(
            shape.read_ns,
            0.2,
            prev_read.into_iter().collect(),
        ));
        // parse: needs this frame's read, serialised against previous parse.
        let mut deps = vec![read];
        deps.extend(prev_parse);
        let parse = dag.push(SimTaskSpec::new(shape.parse_ns, 0.1, deps));
        // entropy decode: needs the parse, serialised against previous ED.
        let mut deps = vec![parse];
        deps.extend(prev_entropy);
        let entropy = dag.push(SimTaskSpec::new(shape.entropy_ns, 0.3, deps));
        // reconstruction: split into row groups; every group needs this
        // frame's ED and the whole previous frame (motion-compensation
        // reference).
        let group_cost = shape.reconstruct_ns / groups as u64;
        let mut rec_ids = Vec::with_capacity(groups);
        for _g in 0..groups {
            let mut deps = vec![entropy];
            deps.extend(prev_reconstruct.iter().copied());
            rec_ids.push(dag.push(SimTaskSpec::new(group_cost, shape.mem_fraction, deps)));
        }
        // output: needs the reconstructed frame, serialised against the
        // previous output.
        let mut deps = rec_ids.clone();
        deps.extend(prev_output);
        let output = dag.push(SimTaskSpec::new(shape.output_ns, 0.2, deps));

        prev_read = Some(read);
        prev_parse = Some(parse);
        prev_entropy = Some(entropy);
        prev_reconstruct = rec_ids;
        prev_output = Some(output);
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{workload, TaskCost};

    fn machine() -> MachineParams {
        MachineParams::default()
    }

    #[test]
    fn single_phase_scales_with_cores() {
        let phases = vec![Phase::uniform(128, 1_000_000, 0.2)];
        let t1 = phased_time_ns(&phases, 1, &machine(), true);
        let t8 = phased_time_ns(&phases, 8, &machine(), true);
        let t32 = phased_time_ns(&phases, 32, &machine(), true);
        assert!(t8 < t1 / 4, "8 cores must give solid speedup");
        assert!(t32 < t8, "more cores keep helping for a big phase");
    }

    #[test]
    fn serial_sections_are_charged() {
        let mut p = Phase::uniform(8, 1_000_000, 0.0);
        p.serial_ns = 5_000_000;
        let with = phased_time_ns(&[p.clone()], 4, &machine(), true);
        p.serial_ns = 0;
        let without = phased_time_ns(&[p], 4, &machine(), true);
        assert_eq!(with - without, 5_000_000);
    }

    #[test]
    fn linked_phases_avoid_a_barrier_and_gain_locality() {
        let producer = Phase::uniform(64, 1_000_000, 0.8);
        let mut consumer = Phase::uniform(64, 1_000_000, 0.8);
        consumer.linked_to_previous = true;
        let fused = phased_time_ns(&[producer.clone(), consumer.clone()], 8, &machine(), true);
        let mut unlinked_consumer = consumer.clone();
        unlinked_consumer.linked_to_previous = false;
        let split = phased_time_ns(&[producer, unlinked_consumer], 8, &machine(), true);
        assert!(
            fused < split,
            "fused producer-consumer graph must beat two barrier-separated phases: {fused} vs {split}"
        );
    }

    #[test]
    fn locality_ablation_shows_a_benefit_on_linked_phases() {
        let producer = Phase::uniform(64, 800_000, 0.8);
        let mut consumer = Phase {
            tasks: vec![
                TaskCost {
                    cost_ns: 800_000,
                    mem_fraction: 0.9
                };
                64
            ],
            linked_to_previous: true,
            serial_ns: 0,
        };
        consumer.linked_to_previous = true;
        let with = phased_time_ns(&[producer.clone(), consumer.clone()], 8, &machine(), true);
        let without = phased_time_ns(&[producer, consumer], 8, &machine(), false);
        assert!(with < without, "locality scheduling must help: {with} vs {without}");
    }

    #[test]
    fn pipeline_dag_has_expected_task_count() {
        let shape = PipelineShape {
            frames: 10,
            read_ns: 1,
            parse_ns: 1,
            entropy_ns: 100,
            reconstruct_ns: 700,
            output_ns: 1,
            mb_rows: 68,
            group_rows: 10,
            mem_fraction: 0.5,
        };
        let dag = build_pipeline_dag(&shape);
        // 5 stages per frame, with reconstruction split into ceil(68/10) = 7
        // groups → 4 + 7 = 11 tasks per frame.
        assert_eq!(dag.len(), 10 * 11);
    }

    #[test]
    fn pipeline_speedup_saturates_with_grouping() {
        let w = workload("h264dec");
        let m = machine();
        let t1 = execution_time_ns(&w, 1, &m);
        let t8 = execution_time_ns(&w, 8, &m);
        let t16 = execution_time_ns(&w, 16, &m);
        let t32 = execution_time_ns(&w, 32, &m);
        assert!(t8 < t1, "some scaling up to 8 cores");
        let s16 = t1 as f64 / t16 as f64;
        let s32 = t1 as f64 / t32 as f64;
        assert!(
            s32 < s16 * 1.15,
            "grouped pipeline must saturate: s16={s16:.2}, s32={s32:.2}"
        );
        assert!(s32 < 12.0, "exposed parallelism is capped by the grouping");
    }

    #[test]
    fn grouping_trades_parallelism_for_overhead() {
        let base = match workload("h264dec").structure {
            Structure::Pipeline(p) => p,
            _ => unreachable!(),
        };
        let m = machine();
        // Whole-frame reconstruction tasks (maximal grouping) leave almost no
        // intra-frame parallelism: much slower at 32 cores than the default
        // grouping.
        let mut whole_frame = base;
        whole_frame.group_rows = base.mb_rows;
        let t_whole = pipeline_time_ns(&whole_frame, 32, &m);
        let t_default = pipeline_time_ns(&base, 32, &m);
        assert!(
            t_whole > t_default * 3 / 2,
            "whole-frame tasks must be much slower at 32 cores: {t_whole} vs {t_default}"
        );
        // Very fine tasks pay more task-management overhead at 1 core.
        let mut fine = base;
        fine.group_rows = 1;
        let t_fine_1 = pipeline_time_ns(&fine, 1, &m);
        let t_default_1 = pipeline_time_ns(&base, 1, &m);
        assert!(
            t_fine_1 > t_default_1,
            "finer granularity must cost more overhead on one core: {t_fine_1} vs {t_default_1}"
        );
    }

    #[test]
    fn all_workloads_simulate_without_panicking() {
        for w in crate::workloads::all_workloads() {
            for cores in [1usize, 8, 32] {
                let t = execution_time_ns(&w, cores, &machine());
                assert!(t > 0, "{} at {cores} cores", w.name);
            }
        }
    }
}

//! Machine and runtime cost parameters used by both execution models.
//!
//! Defaults are calibrated to a 2011-era 4-socket, 32-core cc-NUMA x86
//! server running a Nanos++-style runtime: microsecond-scale task management
//! overheads, millisecond-scale thread wake-up tails for blocking barriers at
//! high thread counts, and a moderate cache-locality benefit for
//! producer→consumer task pairs scheduled back to back on one core.

/// Cost parameters of the simulated machine and runtimes. All times are in
/// nanoseconds of virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineParams {
    /// Number of sockets (NUMA domains) of the machine being modelled.
    pub sockets: usize,
    /// Total number of cores of the modelled machine.
    pub max_cores: usize,
    /// Serial cost, on the master thread, of creating one task (building the
    /// descriptor and inserting it into the dependence graph).
    pub task_create_ns: u64,
    /// Per-task cost on the executing core (scheduling, dependence release).
    pub task_dispatch_ns: u64,
    /// Cost of stealing a task from another core's queue.
    pub steal_ns: u64,
    /// Fixed cost of a polling task barrier.
    pub polling_barrier_base_ns: u64,
    /// Per-core additional cost of a polling task barrier.
    pub polling_barrier_per_core_ns: u64,
    /// Fixed cost of a blocking (condition-variable) barrier.
    pub blocking_barrier_base_ns: u64,
    /// Per-thread additional cost of a blocking barrier (wake-up chain and
    /// re-scheduling tail; the dominant term at high thread counts).
    pub blocking_barrier_per_core_ns: u64,
    /// Fraction of the *memory-bound* part of a task's cost saved when it
    /// executes on the same core as its producer (warm cache).
    pub locality_bonus: f64,
    /// Multiplicative penalty applied to the memory-bound part of a task's
    /// cost when its producer ran on a different socket.
    pub numa_penalty: f64,
    /// How long after its producer finished a consumer task can still find
    /// the produced data in the core's private caches. Consumers scheduled
    /// on the producer's core within this window earn the locality bonus;
    /// later ones find the data evicted.
    pub cache_retention_ns: u64,
    /// One-time cost of creating a worker thread (Pthreads start-up).
    pub thread_create_ns: u64,
}

/// How a task's input data relates to the core it executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataLocality {
    /// No producer (initial data) or unknown placement.
    Neutral,
    /// The producer ran on the same core recently enough that the data is
    /// still cached.
    Warm,
    /// The producer ran on the same socket (or the same core, too long ago).
    SameSocket,
    /// The producer ran on a different socket.
    RemoteSocket,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            sockets: 4,
            max_cores: 32,
            task_create_ns: 1_200,
            task_dispatch_ns: 450,
            steal_ns: 900,
            polling_barrier_base_ns: 800,
            polling_barrier_per_core_ns: 60,
            blocking_barrier_base_ns: 6_000,
            blocking_barrier_per_core_ns: 40_000,
            locality_bonus: 0.35,
            numa_penalty: 1.30,
            cache_retention_ns: 3_000_000,
            thread_create_ns: 60_000,
        }
    }
}

impl MachineParams {
    /// Cores per socket of the modelled machine.
    pub fn cores_per_socket(&self) -> usize {
        (self.max_cores / self.sockets).max(1)
    }

    /// Socket that core `core` belongs to.
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket()
    }

    /// Cost of one polling task barrier episode across `cores` cores.
    pub fn polling_barrier_ns(&self, cores: usize) -> u64 {
        self.polling_barrier_base_ns + self.polling_barrier_per_core_ns * cores as u64
    }

    /// Cost of one blocking thread barrier episode across `cores` threads.
    ///
    /// The per-core term models the wake-up chain and the probability that at
    /// least one thread was descheduled and pays a scheduler-tick latency:
    /// empirically the cost of `pthread_barrier_wait` rounds grows roughly
    /// linearly with the thread count on the machine class the paper uses.
    pub fn blocking_barrier_ns(&self, cores: usize) -> u64 {
        if cores <= 1 {
            return self.blocking_barrier_base_ns / 4;
        }
        self.blocking_barrier_base_ns + self.blocking_barrier_per_core_ns * cores as u64
    }

    /// Effective cost of a task of `cost_ns` total work with `mem_fraction`
    /// of it memory bound, given where its input data lives.
    pub fn effective_task_cost(
        &self,
        cost_ns: u64,
        mem_fraction: f64,
        locality: DataLocality,
    ) -> u64 {
        let mem = cost_ns as f64 * mem_fraction.clamp(0.0, 1.0);
        let compute = cost_ns as f64 - mem;
        let mem_cost = match locality {
            DataLocality::Warm => mem * (1.0 - self.locality_bonus),
            DataLocality::RemoteSocket => mem * self.numa_penalty,
            DataLocality::SameSocket | DataLocality::Neutral => mem,
        };
        (compute + mem_cost).round() as u64
    }

    /// Classify the locality of a consumer starting at `start_ns` on `core`,
    /// whose producer ran on `producer_core` and finished at
    /// `producer_finish_ns`.
    pub fn classify_locality(
        &self,
        core: usize,
        producer: Option<(usize, u64)>,
        start_ns: u64,
    ) -> DataLocality {
        match producer {
            None => DataLocality::Neutral,
            Some((p, finish)) => {
                if p == core && start_ns.saturating_sub(finish) <= self.cache_retention_ns {
                    DataLocality::Warm
                } else if self.socket_of(p) == self.socket_of(core) {
                    DataLocality::SameSocket
                } else {
                    DataLocality::RemoteSocket
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parameters_are_sane() {
        let m = MachineParams::default();
        assert_eq!(m.max_cores, 32);
        assert_eq!(m.cores_per_socket(), 8);
        assert!(m.locality_bonus > 0.0 && m.locality_bonus < 1.0);
        assert!(m.numa_penalty >= 1.0);
    }

    #[test]
    fn socket_mapping() {
        let m = MachineParams::default();
        assert_eq!(m.socket_of(0), 0);
        assert_eq!(m.socket_of(7), 0);
        assert_eq!(m.socket_of(8), 1);
        assert_eq!(m.socket_of(31), 3);
    }

    #[test]
    fn blocking_barrier_is_much_more_expensive_at_scale() {
        let m = MachineParams::default();
        assert!(m.blocking_barrier_ns(32) > 10 * m.polling_barrier_ns(32));
        assert!(m.blocking_barrier_ns(32) > m.blocking_barrier_ns(8));
        // Single thread pays almost nothing.
        assert!(m.blocking_barrier_ns(1) < m.blocking_barrier_ns(2));
    }

    #[test]
    fn polling_barrier_grows_mildly_with_cores() {
        let m = MachineParams::default();
        let delta = m.polling_barrier_ns(32) - m.polling_barrier_ns(1);
        assert!(delta < 10_000, "polling barrier stays in the microsecond range");
    }

    #[test]
    fn locality_bonus_reduces_memory_bound_cost() {
        let m = MachineParams::default();
        let base = m.effective_task_cost(1_000_000, 0.6, DataLocality::Neutral);
        let warm = m.effective_task_cost(1_000_000, 0.6, DataLocality::Warm);
        let remote = m.effective_task_cost(1_000_000, 0.6, DataLocality::RemoteSocket);
        assert!(warm < base, "warm-cache consumer is faster");
        assert!(remote > base, "cross-socket consumer is slower");
        // Compute-only tasks are unaffected.
        assert_eq!(
            m.effective_task_cost(500_000, 0.0, DataLocality::Warm),
            m.effective_task_cost(500_000, 0.0, DataLocality::Neutral)
        );
    }

    #[test]
    fn effective_cost_clamps_mem_fraction() {
        let m = MachineParams::default();
        let a = m.effective_task_cost(100_000, 2.0, DataLocality::Warm);
        let b = m.effective_task_cost(100_000, 1.0, DataLocality::Warm);
        assert_eq!(a, b);
    }

    #[test]
    fn locality_classification_uses_core_socket_and_recency() {
        let m = MachineParams::default();
        assert_eq!(m.classify_locality(3, None, 100), DataLocality::Neutral);
        // Same core, recent: warm.
        assert_eq!(
            m.classify_locality(3, Some((3, 1_000_000)), 1_500_000),
            DataLocality::Warm
        );
        // Same core, but long after the producer: data evicted.
        assert_eq!(
            m.classify_locality(3, Some((3, 1_000_000)), 100_000_000),
            DataLocality::SameSocket
        );
        // Different core, same socket.
        assert_eq!(
            m.classify_locality(3, Some((5, 0)), 0),
            DataLocality::SameSocket
        );
        // Different socket.
        assert_eq!(
            m.classify_locality(3, Some((20, 0)), 0),
            DataLocality::RemoteSocket
        );
    }
}

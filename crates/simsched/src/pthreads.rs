//! The Pthreads execution model: static SPMD threading, blocking barriers,
//! and the hand-optimised line-parallel H.264 decoder.

use crate::machine::MachineParams;
use crate::workloads::{BenchmarkWorkload, Phase, PipelineShape, Structure};

/// Virtual execution time of `workload` under the Pthreads model on `cores`
/// threads.
pub fn execution_time_ns(
    workload: &BenchmarkWorkload,
    cores: usize,
    machine: &MachineParams,
) -> u64 {
    match &workload.structure {
        Structure::Phased(phases) => phased_time_ns(phases, cores, machine),
        Structure::Pipeline(shape) => pipeline_time_ns(shape, cores, machine),
    }
}

/// Phased SPMD execution: every phase is statically partitioned over the
/// threads (cyclic distribution of work items, which is what the
/// hand-written codes use to smooth out load imbalance), every phase ends
/// with a blocking barrier, and the serial sections run on thread 0 while
/// the others wait at the next barrier.
///
/// Producer→consumer phase pairs still need a barrier in this model: the
/// consumer phase cannot start before all threads finished producing,
/// because the static partitions do not line up with readiness of individual
/// items. There is also no cache-locality bonus: by the time a thread
/// returns to item `i` in the consumer phase, the whole partition of the
/// producer phase has flowed through its cache.
pub fn phased_time_ns(phases: &[Phase], cores: usize, machine: &MachineParams) -> u64 {
    assert!(cores > 0, "need at least one thread");
    let mut total = machine.thread_create_ns * cores.saturating_sub(1) as u64;
    for phase in phases {
        total += phase.serial_ns;
        // Cyclic (round-robin) static distribution of the work items.
        let mut thread_time = vec![0u64; cores];
        for (i, task) in phase.tasks.iter().enumerate() {
            thread_time[i % cores] += task.cost_ns;
        }
        let phase_time = thread_time.into_iter().max().unwrap_or(0);
        total += phase_time + machine.blocking_barrier_ns(cores);
    }
    total
}

/// Wavefront ("line decoding") efficiency of the hand-optimised Pthreads
/// decoder: close to ideal at low thread counts, degrading with
/// synchronisation and dependence stalls as threads are added (cf. Chi &
/// Juurlink, ICS'11).
fn wavefront_efficiency(cores: usize) -> f64 {
    1.0 / (1.0 + 0.032 * cores as f64)
}

/// Pipeline execution under the Pthreads model. The hand-written decoder
/// does not use a stage-per-thread pipeline; it decodes entropy for several
/// frames in flight on dedicated threads and reconstructs macroblock lines
/// with a wavefront over all remaining threads — which is why it keeps
/// scaling where the task-grouped OmpSs version saturates.
pub fn pipeline_time_ns(shape: &PipelineShape, cores: usize, machine: &MachineParams) -> u64 {
    let per_frame_serial =
        shape.read_ns + shape.parse_ns + shape.entropy_ns + shape.reconstruct_ns + shape.output_ns;
    if cores == 1 {
        // Plain sequential decode.
        return shape.frames as u64 * per_frame_serial;
    }
    let eff = wavefront_efficiency(cores);
    // Wavefront parallelism within a frame is bounded by half the macroblock
    // rows (diagonal dependences keep only every other row active).
    let max_parallel = (shape.mb_rows as f64 / 2.0).max(1.0);
    let usable = (cores as f64 * eff).min(max_parallel);
    // Entropy decoding overlaps with reconstruction of other frames; it only
    // bounds throughput when fewer than ~2 threads' worth of ED capacity is
    // left over.
    let ed_threads = (cores as f64 * 0.2).max(1.0);
    let ed_bound = shape.entropy_ns as f64 / ed_threads;
    let rec_bound = shape.reconstruct_ns as f64 / usable
        + shape.mb_rows as f64 * 350.0 * (1.0 + 0.02 * cores as f64);
    let small = (shape.read_ns + shape.parse_ns + shape.output_ns) as f64;
    let per_frame = ed_bound.max(rec_bound).max(small);
    let fill = per_frame_serial as f64; // pipeline fill/drain
    (shape.frames as f64 * per_frame + fill) as u64
        + machine.thread_create_ns * cores.saturating_sub(1) as u64
        + machine.blocking_barrier_ns(cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{workload, Structure};

    fn machine() -> MachineParams {
        MachineParams::default()
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = phased_time_ns(&[], 0, &machine());
    }

    #[test]
    fn single_phase_scales_with_threads() {
        let phases = vec![Phase::uniform(256, 1_000_000, 0.3)];
        let t1 = phased_time_ns(&phases, 1, &machine());
        let t8 = phased_time_ns(&phases, 8, &machine());
        assert!(t8 < t1 / 4);
    }

    #[test]
    fn barrier_cost_hurts_short_phases_at_scale() {
        // Many very short phases: the per-phase blocking barrier dominates at
        // 32 threads.
        let phases: Vec<Phase> = (0..50).map(|_| Phase::uniform(32, 100_000, 0.2)).collect();
        let t16 = phased_time_ns(&phases, 16, &machine());
        let t32 = phased_time_ns(&phases, 32, &machine());
        assert!(
            t32 > t16,
            "adding threads to barrier-bound phases must backfire: {t32} vs {t16}"
        );
    }

    #[test]
    fn cyclic_distribution_balances_bell_shaped_load() {
        // A bell-shaped load (like c-ray scanlines) is well balanced by the
        // cyclic distribution: phase time should be close to work / cores.
        let w = workload("c-ray");
        let phases = match &w.structure {
            Structure::Phased(p) => p.clone(),
            _ => unreachable!(),
        };
        let total_work: u64 = phases.iter().map(|p| p.total_work_ns()).sum();
        let t16 = phased_time_ns(&phases, 16, &machine());
        let ideal = total_work / 16;
        assert!(
            t16 < ideal + ideal / 5 + 3_000_000,
            "cyclic partitioning should be within ~20% of ideal: {t16} vs {ideal}"
        );
    }

    #[test]
    fn serial_sections_are_charged() {
        let mut p = Phase::uniform(4, 100_000, 0.0);
        p.serial_ns = 9_000_000;
        let with = phased_time_ns(&[p.clone()], 4, &machine());
        p.serial_ns = 0;
        let without = phased_time_ns(&[p], 4, &machine());
        assert_eq!(with - without, 9_000_000);
    }

    #[test]
    fn pipeline_scales_beyond_the_ompss_grouping_cap() {
        let shape = match workload("h264dec").structure {
            Structure::Pipeline(p) => p,
            _ => unreachable!(),
        };
        let m = machine();
        let t1 = pipeline_time_ns(&shape, 1, &m);
        let t8 = pipeline_time_ns(&shape, 8, &m);
        let t32 = pipeline_time_ns(&shape, 32, &m);
        let s8 = t1 as f64 / t8 as f64;
        let s32 = t1 as f64 / t32 as f64;
        assert!(s8 > 4.0, "line decoding scales well at 8 threads: {s8:.2}");
        assert!(
            s32 > s8 * 1.5,
            "line decoding keeps scaling to 32 threads: s8={s8:.2} s32={s32:.2}"
        );
    }

    #[test]
    fn wavefront_efficiency_decreases() {
        assert!(wavefront_efficiency(1) > wavefront_efficiency(8));
        assert!(wavefront_efficiency(8) > wavefront_efficiency(32));
        assert!(wavefront_efficiency(32) > 0.3);
    }

    #[test]
    fn all_workloads_simulate_without_panicking() {
        for w in crate::workloads::all_workloads() {
            for cores in [1usize, 8, 32] {
                let t = execution_time_ns(&w, cores, &machine());
                assert!(t > 0, "{} at {cores} cores", w.name);
            }
        }
    }
}

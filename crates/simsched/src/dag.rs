//! Virtual-time simulation of task-DAG execution on a multicore runtime.
//!
//! The simulator models the runtime the way Nanos++ (the OmpSs runtime of
//! the paper) actually behaves:
//!
//! * the master creates tasks serially (each paying a creation overhead);
//!   dependence-free tasks enter a global FIFO ready queue at their creation
//!   time;
//! * each virtual core repeatedly takes work: first from its own LIFO stack,
//!   then from the global queue, then by stealing from another core;
//! * when a task completes, the successors it releases are pushed onto the
//!   completing core's own stack (locality-aware mode — they typically run
//!   next, back to back with their producer, finding their input data still
//!   in cache) or onto the global queue (non-locality mode);
//! * a consumer that starts on its producer's core within the cache
//!   retention window earns the locality bonus on the memory-bound part of
//!   its work; consumers on another socket pay the NUMA penalty.

use crate::machine::{DataLocality, MachineParams};

/// Specification of one simulated task.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTaskSpec {
    /// Pure work contained in the task, in nanoseconds.
    pub cost_ns: u64,
    /// Fraction of `cost_ns` that is memory bound (subject to locality bonus
    /// and NUMA penalty).
    pub mem_fraction: f64,
    /// Indices (into the DAG's task vector) of tasks this task depends on.
    pub deps: Vec<usize>,
}

impl SimTaskSpec {
    /// A compute-only task with no dependences.
    pub fn independent(cost_ns: u64) -> Self {
        SimTaskSpec {
            cost_ns,
            mem_fraction: 0.0,
            deps: Vec::new(),
        }
    }

    /// A task with a memory-bound fraction and explicit dependences.
    pub fn new(cost_ns: u64, mem_fraction: f64, deps: Vec<usize>) -> Self {
        SimTaskSpec {
            cost_ns,
            mem_fraction,
            deps,
        }
    }
}

/// A DAG of simulated tasks. Tasks must be listed in a valid topological
/// order (dependences always point to earlier indices), which is how the
/// workload builders construct them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimDag {
    /// The tasks, in creation (program) order.
    pub tasks: Vec<SimTaskSpec>,
}

impl SimDag {
    /// Create an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task, returning its index.
    ///
    /// # Panics
    /// Panics if a dependence refers to a not-yet-added task.
    pub fn push(&mut self, task: SimTaskSpec) -> usize {
        let idx = self.tasks.len();
        for &d in &task.deps {
            assert!(d < idx, "dependence {d} of task {idx} is not yet defined");
        }
        self.tasks.push(task);
        idx
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total work contained in the DAG (sum of task costs), in nanoseconds.
    pub fn total_work_ns(&self) -> u64 {
        self.tasks.iter().map(|t| t.cost_ns).sum()
    }

    /// Length of the critical path (longest dependence chain by cost), in
    /// nanoseconds — a lower bound on any schedule's makespan (ignoring
    /// overheads).
    pub fn critical_path_ns(&self) -> u64 {
        let mut finish = vec![0u64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
            finish[i] = ready + t.cost_ns;
        }
        finish.into_iter().max().unwrap_or(0)
    }

    /// Successor adjacency lists (reverse of `deps`).
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut succ = vec![Vec::new(); self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                succ[d].push(i);
            }
        }
        succ
    }
}

/// Options controlling how the simulated runtime behaves.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOptions {
    /// Serial per-task creation overhead charged on a master timeline; a
    /// task cannot become ready before the master has created it.
    pub creation_overhead: bool,
    /// Per-task dispatch overhead added to every task's execution time.
    pub dispatch_overhead: bool,
    /// Push released successors onto the completing core's own stack (the
    /// OmpSs locality scheduler) instead of the global queue.
    pub locality_aware: bool,
}

impl ScheduleOptions {
    /// The OmpSs runtime behaviour (all overheads and locality scheduling).
    pub fn ompss() -> Self {
        ScheduleOptions {
            creation_overhead: true,
            dispatch_overhead: true,
            locality_aware: true,
        }
    }

    /// An idealised zero-overhead scheduler (used for bounds in tests and
    /// ablations).
    pub fn ideal() -> Self {
        ScheduleOptions {
            creation_overhead: false,
            dispatch_overhead: false,
            locality_aware: false,
        }
    }
}

/// Result of simulating a DAG execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Virtual time at which the last task finishes.
    pub makespan_ns: u64,
    /// Busy time accumulated per core.
    pub core_busy_ns: Vec<u64>,
    /// Core each task executed on.
    pub assignment: Vec<usize>,
    /// Number of tasks that executed warm (on their producer's core, within
    /// the cache retention window).
    pub locality_hits: usize,
    /// Number of tasks obtained by stealing from another core's stack.
    pub steals: usize,
}

impl ScheduleResult {
    /// Average core utilisation over the makespan (0..1).
    pub fn utilisation(&self) -> f64 {
        if self.makespan_ns == 0 || self.core_busy_ns.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.core_busy_ns.iter().sum();
        busy as f64 / (self.makespan_ns as f64 * self.core_busy_ns.len() as f64)
    }
}

/// A ready task waiting in a queue, remembering when it became ready.
#[derive(Debug, Clone, Copy)]
struct ReadyEntry {
    task: usize,
    ready_at: u64,
}

/// Simulate executing `dag` on `cores` virtual cores.
///
/// # Panics
/// Panics if `cores == 0` or if the DAG contains an unsatisfiable dependence
/// (which cannot happen for DAGs built through [`SimDag::push`]).
pub fn list_schedule(
    dag: &SimDag,
    cores: usize,
    machine: &MachineParams,
    options: &ScheduleOptions,
) -> ScheduleResult {
    assert!(cores > 0, "need at least one core");
    let n = dag.tasks.len();
    if n == 0 {
        return ScheduleResult {
            makespan_ns: 0,
            core_busy_ns: vec![0; cores],
            assignment: Vec::new(),
            locality_hits: 0,
            steals: 0,
        };
    }

    let successors = dag.successors();
    let mut remaining_deps: Vec<usize> = dag.tasks.iter().map(|t| t.deps.len()).collect();
    let mut finish = vec![0u64; n];
    let mut assignment = vec![usize::MAX; n];
    let mut core_free = vec![0u64; cores];
    let mut core_busy = vec![0u64; cores];
    let mut local: Vec<Vec<ReadyEntry>> = vec![Vec::new(); cores];
    let mut global: std::collections::VecDeque<ReadyEntry> = std::collections::VecDeque::new();
    let mut locality_hits = 0usize;
    let mut steals = 0usize;

    // Master creation timeline.
    let mut creation_clock = 0u64;
    let mut created_at = vec![0u64; n];
    for i in 0..n {
        if options.creation_overhead {
            creation_clock += machine.task_create_ns;
        }
        created_at[i] = creation_clock;
        if remaining_deps[i] == 0 {
            global.push_back(ReadyEntry {
                task: i,
                ready_at: created_at[i],
            });
        }
    }

    let mut completed = 0usize;
    while completed < n {
        // The core with the smallest clock acts next.
        let core = (0..cores).min_by_key(|&c| (core_free[c], c)).expect("cores > 0");
        let now = core_free[core];

        // 1. Own stack (LIFO), 2. global queue (FIFO among currently
        // available), 3. steal (oldest entry of the fullest victim).
        let mut stolen = false;
        let picked: Option<ReadyEntry> = if let Some(entry) = local[core].pop() {
            Some(entry)
        } else if let Some(pos) = global.iter().position(|e| e.ready_at <= now) {
            global.remove(pos)
        } else if let Some(victim) = (0..cores)
            .filter(|&c| c != core)
            .filter(|&c| local[c].iter().any(|e| e.ready_at <= now))
            .max_by_key(|&c| local[c].len())
        {
            stolen = true;
            let pos = local[victim]
                .iter()
                .position(|e| e.ready_at <= now)
                .expect("victim has an available entry");
            Some(local[victim].remove(pos))
        } else {
            None
        };

        let Some(entry) = picked else {
            // Nothing is available right now: advance this core's clock to
            // the next time anything can become available.
            let mut next: Option<u64> = None;
            let mut consider = |t: u64| {
                if t > now {
                    next = Some(next.map_or(t, |n: u64| n.min(t)));
                }
            };
            for e in &global {
                consider(e.ready_at);
            }
            for stack in &local {
                for e in stack {
                    consider(e.ready_at);
                }
            }
            for (c, &f) in core_free.iter().enumerate() {
                if c != core {
                    consider(f);
                }
            }
            match next {
                Some(t) => {
                    core_free[core] = t;
                    continue;
                }
                None => panic!("simulation stalled with {} of {n} tasks completed", completed),
            }
        };

        if stolen {
            steals += 1;
        }
        let task_idx = entry.task;
        let task = &dag.tasks[task_idx];
        let start = now.max(entry.ready_at);

        // Producer = the dependence that finished last.
        let producer = task
            .deps
            .iter()
            .max_by_key(|&&d| finish[d])
            .map(|&d| (assignment[d], finish[d]));
        let locality = machine.classify_locality(core, producer, start);
        if locality == DataLocality::Warm {
            locality_hits += 1;
        }
        let mut exec = machine.effective_task_cost(task.cost_ns, task.mem_fraction, locality);
        if options.dispatch_overhead {
            exec += machine.task_dispatch_ns;
        }
        let end = start + exec;
        core_free[core] = end;
        core_busy[core] += exec;
        finish[task_idx] = end;
        assignment[task_idx] = core;
        completed += 1;

        // Release successors.
        for &succ in &successors[task_idx] {
            remaining_deps[succ] -= 1;
            if remaining_deps[succ] == 0 {
                let ready_at = dag.tasks[succ]
                    .deps
                    .iter()
                    .map(|&d| finish[d])
                    .max()
                    .unwrap_or(0)
                    .max(created_at[succ]);
                let entry = ReadyEntry {
                    task: succ,
                    ready_at,
                };
                if options.locality_aware {
                    local[core].push(entry);
                } else {
                    global.push_back(entry);
                }
            }
        }
    }

    ScheduleResult {
        makespan_ns: finish.into_iter().max().unwrap_or(0),
        core_busy_ns: core_busy,
        assignment,
        locality_hits,
        steals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn machine() -> MachineParams {
        MachineParams::default()
    }

    #[test]
    fn empty_dag_has_zero_makespan() {
        let dag = SimDag::new();
        let r = list_schedule(&dag, 4, &machine(), &ScheduleOptions::ideal());
        assert_eq!(r.makespan_ns, 0);
        assert_eq!(r.utilisation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least one core")]
    fn zero_cores_panics() {
        let dag = SimDag::new();
        let _ = list_schedule(&dag, 0, &machine(), &ScheduleOptions::ideal());
    }

    #[test]
    #[should_panic(expected = "is not yet defined")]
    fn forward_dependence_panics() {
        let mut dag = SimDag::new();
        dag.push(SimTaskSpec::new(10, 0.0, vec![5]));
    }

    #[test]
    fn successors_are_reverse_of_deps() {
        let mut dag = SimDag::new();
        let a = dag.push(SimTaskSpec::independent(1));
        let b = dag.push(SimTaskSpec::new(1, 0.0, vec![a]));
        let c = dag.push(SimTaskSpec::new(1, 0.0, vec![a, b]));
        let succ = dag.successors();
        assert_eq!(succ[a], vec![b, c]);
        assert_eq!(succ[b], vec![c]);
        assert!(succ[c].is_empty());
    }

    #[test]
    fn independent_tasks_scale_linearly_in_the_ideal_model() {
        let mut dag = SimDag::new();
        for _ in 0..64 {
            dag.push(SimTaskSpec::independent(1_000_000));
        }
        let t1 = list_schedule(&dag, 1, &machine(), &ScheduleOptions::ideal()).makespan_ns;
        let t8 = list_schedule(&dag, 8, &machine(), &ScheduleOptions::ideal()).makespan_ns;
        assert_eq!(t1, 64_000_000);
        assert_eq!(t8, 8_000_000);
    }

    #[test]
    fn chain_is_limited_by_critical_path() {
        let mut dag = SimDag::new();
        let mut prev = None;
        for _ in 0..10 {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(dag.push(SimTaskSpec::new(500_000, 0.0, deps)));
        }
        assert_eq!(dag.critical_path_ns(), 5_000_000);
        let r = list_schedule(&dag, 16, &machine(), &ScheduleOptions::ideal());
        assert_eq!(r.makespan_ns, 5_000_000, "extra cores cannot help a chain");
    }

    #[test]
    fn creation_overhead_serialises_small_tasks() {
        // 1000 tiny tasks: with creation overhead the master becomes the
        // bottleneck and more cores stop helping.
        let mut dag = SimDag::new();
        for _ in 0..1000 {
            dag.push(SimTaskSpec::independent(1_000));
        }
        let opts = ScheduleOptions::ompss();
        let t4 = list_schedule(&dag, 4, &machine(), &opts).makespan_ns;
        let t32 = list_schedule(&dag, 32, &machine(), &opts).makespan_ns;
        let serial_creation = 1000 * machine().task_create_ns;
        assert!(t32 >= serial_creation, "creation time bounds the makespan");
        // Going from 4 to 32 cores helps by far less than 8x.
        assert!(t4 < 3 * t32, "task-creation bound limits scaling");
    }

    #[test]
    fn locality_scheduling_speeds_up_producer_consumer_chains() {
        // Pairs of producer->consumer tasks with a large memory-bound part.
        let mut dag = SimDag::new();
        for _ in 0..32 {
            let p = dag.push(SimTaskSpec::new(2_000_000, 0.8, vec![]));
            dag.push(SimTaskSpec::new(2_000_000, 0.8, vec![p]));
        }
        let m = machine();
        let with = list_schedule(
            &dag,
            8,
            &m,
            &ScheduleOptions {
                locality_aware: true,
                ..ScheduleOptions::ideal()
            },
        );
        let without = list_schedule(&dag, 8, &m, &ScheduleOptions::ideal());
        assert!(
            with.makespan_ns < without.makespan_ns,
            "locality-aware placement must win on producer-consumer chains: {} vs {}",
            with.makespan_ns,
            without.makespan_ns
        );
        assert!(with.locality_hits > 24, "most consumers run warm");
        assert!(
            with.locality_hits > without.locality_hits,
            "locality mode produces more warm executions"
        );
    }

    #[test]
    fn work_stealing_balances_a_deep_local_stack() {
        // One producer releases many successors onto its own stack; other
        // cores must steal them.
        let mut dag = SimDag::new();
        let p = dag.push(SimTaskSpec::independent(100_000));
        for _ in 0..64 {
            dag.push(SimTaskSpec::new(1_000_000, 0.0, vec![p]));
        }
        let r = list_schedule(
            &dag,
            8,
            &machine(),
            &ScheduleOptions {
                locality_aware: true,
                ..ScheduleOptions::ideal()
            },
        );
        assert!(r.steals > 0, "other cores must steal from the producer's stack");
        // The 64 successors must spread over the cores: makespan well below
        // the serial 64 ms.
        assert!(r.makespan_ns < 20_000_000);
    }

    #[test]
    fn utilisation_is_at_most_one() {
        let mut dag = SimDag::new();
        for i in 0..20 {
            let deps = if i >= 4 { vec![i - 4] } else { vec![] };
            dag.push(SimTaskSpec::new(300_000 + i as u64 * 10_000, 0.3, deps));
        }
        let r = list_schedule(&dag, 4, &machine(), &ScheduleOptions::ompss());
        assert!(r.utilisation() > 0.0 && r.utilisation() <= 1.0);
        assert_eq!(r.assignment.len(), 20);
        assert!(r.assignment.iter().all(|&c| c < 4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Work conservation and causality: the makespan is at least
        /// max(total work / cores, critical path) and at most total work,
        /// for the ideal model.
        #[test]
        fn prop_makespan_bounds(
            costs in proptest::collection::vec(1_000u64..1_000_000, 1..60),
            cores in 1usize..16,
            chain in proptest::bool::ANY,
        ) {
            let mut dag = SimDag::new();
            for (i, &c) in costs.iter().enumerate() {
                let deps = if chain && i > 0 { vec![i - 1] } else { vec![] };
                dag.push(SimTaskSpec::new(c, 0.0, deps));
            }
            let r = list_schedule(&dag, cores, &machine(), &ScheduleOptions::ideal());
            let total = dag.total_work_ns();
            let cp = dag.critical_path_ns();
            let lower = cp.max(total / cores as u64);
            prop_assert!(r.makespan_ns >= lower);
            prop_assert!(r.makespan_ns <= total);
            // Busy time equals total work exactly (no overheads in ideal mode).
            prop_assert_eq!(r.core_busy_ns.iter().sum::<u64>(), total);
        }

        /// Every task is assigned to a valid core and the simulation is
        /// deterministic.
        #[test]
        fn prop_simulation_is_deterministic(
            costs in proptest::collection::vec(1_000u64..200_000, 1..50),
            cores in 1usize..8,
            fan in 1usize..4,
        ) {
            let mut dag = SimDag::new();
            for (i, &c) in costs.iter().enumerate() {
                let deps = if i >= fan { vec![i - fan] } else { vec![] };
                dag.push(SimTaskSpec::new(c, 0.4, deps));
            }
            let a = list_schedule(&dag, cores, &machine(), &ScheduleOptions::ompss());
            let b = list_schedule(&dag, cores, &machine(), &ScheduleOptions::ompss());
            prop_assert_eq!(&a, &b);
            prop_assert!(a.assignment.iter().all(|&c| c < cores));
        }

        /// Adding cores never makes the ideal schedule slower for
        /// independent tasks.
        #[test]
        fn prop_more_cores_never_hurt(
            costs in proptest::collection::vec(10_000u64..500_000, 1..40),
            cores in 1usize..8,
        ) {
            let mut dag = SimDag::new();
            for &c in &costs {
                dag.push(SimTaskSpec::independent(c));
            }
            let a = list_schedule(&dag, cores, &machine(), &ScheduleOptions::ideal()).makespan_ns;
            let b = list_schedule(&dag, cores * 2, &machine(), &ScheduleOptions::ideal()).makespan_ns;
            prop_assert!(b <= a);
        }
    }
}

//! # simsched — a discrete-event multicore scheduling simulator
//!
//! The paper evaluates OmpSs against Pthreads on a 32-core, 4-socket
//! cc-NUMA machine. This reproduction runs on whatever host it is given
//! (possibly a single core), so the 1–32-core scaling study of Table 1 is
//! regenerated with a simulator that executes both *runtime models* in
//! virtual time:
//!
//! * the **OmpSs model** ([`ompss`]) — a task-graph runtime: the master
//!   creates tasks serially (paying a per-task creation overhead), ready
//!   tasks are greedily scheduled onto virtual cores, dependent tasks prefer
//!   their producer's core (earning a cache-locality bonus on the
//!   memory-bound fraction of their work), and phases end with a cheap
//!   polling barrier;
//! * the **Pthreads model** ([`pthreads`]) — static SPMD threading: work
//!   items are block-partitioned over threads, every phase ends with a
//!   blocking barrier whose cost grows with the thread count, and pipelines
//!   are executed with one thread per stage (plus a line-parallel
//!   reconstruction stage for `h264dec`, mirroring the highly optimised
//!   Pthreads decoder of the paper).
//!
//! The per-benchmark workload descriptors in [`workloads`] encode the
//! *structure* of each of the 10 benchmarks (task counts, task cost
//! distributions, memory-bound fractions, dependency patterns, phase/barrier
//! cadence, pipeline shape), and [`table1`] combines everything into the
//! paper's Table 1: the speedup of the OmpSs variant over the Pthreads
//! variant per benchmark and core count.
//!
//! The goal is to reproduce the *shape* of the published numbers — which
//! model wins on which benchmark at which core count and by roughly what
//! factor — not the third decimal of the original measurements (the original
//! hardware is not available).
//!
//! ## Workspace role
//!
//! `simsched` is deliberately independent of the real runtimes: it consumes
//! only workload *descriptors*, so the Table 1 scaling study can run on any
//! host (including single-core CI machines) in milliseconds. The `table1`
//! binary in `bench-harness` combines the simulated study with measured
//! numbers from the `ompss` runtime and `threadkit` substrate when host
//! parallelism is available.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dag;
pub mod machine;
pub mod ompss;
pub mod pthreads;
pub mod table1;
pub mod workloads;

pub use dag::{ScheduleResult, SimDag, SimTaskSpec};
pub use machine::MachineParams;
pub use table1::{paper_table1, simulate_table1, Table1, Table1Row, PAPER_CORE_COUNTS};
pub use workloads::{benchmark_names, BenchmarkWorkload};

//! Regeneration of Table 1: speedup of the OmpSs variant over the Pthreads
//! variant for every benchmark at 1, 8, 16, 24 and 32 cores, plus geometric
//! means, and the paper's published values for side-by-side comparison.

use crate::machine::MachineParams;
use crate::workloads::{all_workloads, BenchmarkWorkload};
use crate::{ompss, pthreads};

/// The core counts of Table 1.
pub const PAPER_CORE_COUNTS: [usize; 5] = [1, 8, 16, 24, 32];

/// One row of Table 1: a benchmark and its OmpSs-over-Pthreads speedups.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Speedup (Pthreads time / OmpSs time) at each of
    /// [`PAPER_CORE_COUNTS`].
    pub speedups: Vec<f64>,
}

impl Table1Row {
    /// Geometric mean over the row's core counts (the paper's "Mean"
    /// column).
    pub fn mean(&self) -> f64 {
        geometric_mean(&self.speedups)
    }
}

/// A complete Table 1 (one row per benchmark plus the column means).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Core counts of the columns.
    pub core_counts: Vec<usize>,
    /// Rows in benchmark order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Geometric mean of each column (the paper's bottom "Mean" row).
    pub fn column_means(&self) -> Vec<f64> {
        (0..self.core_counts.len())
            .map(|c| geometric_mean(&self.rows.iter().map(|r| r.speedups[c]).collect::<Vec<_>>()))
            .collect()
    }

    /// Geometric mean over every cell (the paper's overall "2% faster"
    /// claim corresponds to this value being ≈ 1.02).
    pub fn overall_mean(&self) -> f64 {
        let all: Vec<f64> = self.rows.iter().flat_map(|r| r.speedups.clone()).collect();
        geometric_mean(&all)
    }

    /// Look up a row by benchmark name.
    pub fn row(&self, name: &str) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Render the table in the paper's layout.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{title}\n"));
        out.push_str(&format!("{:<14}", "Benchmark"));
        for c in &self.core_counts {
            out.push_str(&format!("{c:>7}"));
        }
        out.push_str(&format!("{:>7}\n", "Mean"));
        for row in &self.rows {
            out.push_str(&format!("{:<14}", row.name));
            for s in &row.speedups {
                out.push_str(&format!("{s:>7.2}"));
            }
            out.push_str(&format!("{:>7.2}\n", row.mean()));
        }
        out.push_str(&format!("{:<14}", "Mean"));
        for m in self.column_means() {
            out.push_str(&format!("{m:>7.2}"));
        }
        out.push_str(&format!("{:>7.2}\n", self.overall_mean()));
        out
    }
}

/// Geometric mean of a slice of positive values (0 for an empty slice).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Simulate one benchmark at one core count, returning
/// `(ompss_time_ns, pthreads_time_ns)`.
pub fn simulate_benchmark(
    workload: &BenchmarkWorkload,
    cores: usize,
    machine: &MachineParams,
) -> (u64, u64) {
    (
        ompss::execution_time_ns(workload, cores, machine),
        pthreads::execution_time_ns(workload, cores, machine),
    )
}

/// Regenerate Table 1 with the simulator.
pub fn simulate_table1(machine: &MachineParams) -> Table1 {
    let core_counts: Vec<usize> = PAPER_CORE_COUNTS
        .iter()
        .copied()
        .filter(|&c| c <= machine.max_cores)
        .collect();
    let rows = all_workloads()
        .iter()
        .map(|w| {
            let speedups = core_counts
                .iter()
                .map(|&cores| {
                    let (o, p) = simulate_benchmark(w, cores, machine);
                    p as f64 / o as f64
                })
                .collect();
            Table1Row {
                name: w.name.to_string(),
                speedups,
            }
        })
        .collect();
    Table1 {
        core_counts,
        rows,
    }
}

/// The values published in the paper's Table 1 (used for comparison in the
/// harness output and in EXPERIMENTS.md).
pub fn paper_table1() -> Table1 {
    let data: [(&str, [f64; 5]); 10] = [
        ("c-ray", [1.03, 1.11, 1.12, 1.11, 1.14]),
        ("rotate", [1.06, 1.04, 1.09, 1.02, 0.86]),
        ("rgbcmy", [1.02, 0.98, 1.14, 1.40, 1.53]),
        ("md5", [1.00, 1.02, 1.10, 1.14, 1.05]),
        ("kmeans", [0.91, 0.87, 1.30, 0.95, 0.88]),
        ("ray-rot", [1.02, 1.10, 1.65, 1.46, 1.20]),
        ("rot-cc", [1.00, 1.06, 1.17, 1.14, 1.04]),
        ("streamcluster", [0.93, 0.84, 0.91, 0.99, 0.99]),
        ("bodytrack", [0.98, 0.99, 1.05, 0.97, 1.00]),
        ("h264dec", [0.94, 1.07, 0.87, 0.57, 0.42]),
    ];
    Table1 {
        core_counts: PAPER_CORE_COUNTS.to_vec(),
        rows: data
            .iter()
            .map(|(name, speedups)| Table1Row {
                name: name.to_string(),
                speedups: speedups.to_vec(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table_matches_published_means() {
        let t = paper_table1();
        assert_eq!(t.rows.len(), 10);
        // Row means as printed in the paper (±0.01 rounding).
        assert!((t.row("c-ray").unwrap().mean() - 1.10).abs() < 0.015);
        assert!((t.row("rgbcmy").unwrap().mean() - 1.19).abs() < 0.015);
        assert!((t.row("ray-rot").unwrap().mean() - 1.27).abs() < 0.015);
        assert!((t.row("h264dec").unwrap().mean() - 0.73).abs() < 0.015);
        // Overall mean is the paper's "2 % better" claim.
        assert!((t.overall_mean() - 1.02).abs() < 0.02);
        // Column means of the paper: 0.99, 1.00, 1.12, 1.05, 0.97.
        let cols = t.column_means();
        let expected = [0.99, 1.00, 1.12, 1.05, 0.97];
        for (c, e) in cols.iter().zip(expected.iter()) {
            assert!((c - e).abs() < 0.02, "column mean {c} vs paper {e}");
        }
    }

    #[test]
    fn simulated_table_has_full_shape() {
        let t = simulate_table1(&MachineParams::default());
        assert_eq!(t.core_counts, vec![1, 8, 16, 24, 32]);
        assert_eq!(t.rows.len(), 10);
        for row in &t.rows {
            assert_eq!(row.speedups.len(), 5);
            for &s in &row.speedups {
                assert!(s > 0.1 && s < 10.0, "{}: implausible speedup {s}", row.name);
            }
        }
        let rendered = t.render("simulated");
        assert!(rendered.contains("h264dec"));
        assert!(rendered.contains("Mean"));
    }

    #[test]
    fn simulated_table_reproduces_headline_shapes() {
        let t = simulate_table1(&MachineParams::default());
        // (1) At one core the two models are close everywhere (the fused
        //     workloads retain a modest locality advantage even on one core
        //     in our cache model, hence the wider tolerance).
        for row in &t.rows {
            assert!(
                (row.speedups[0] - 1.0).abs() < 0.20,
                "{} at 1 core: {}",
                row.name,
                row.speedups[0]
            );
        }
        // (2) rgbcmy: OmpSs advantage grows with the core count and is
        //     substantial at 32 cores (polling vs blocking barrier).
        let rgbcmy = t.row("rgbcmy").unwrap();
        assert!(rgbcmy.speedups[4] > 1.20, "rgbcmy at 32: {}", rgbcmy.speedups[4]);
        assert!(rgbcmy.speedups[4] > rgbcmy.speedups[1]);
        // (3) ray-rot beats both of its components thanks to locality.
        let ray_rot = t.row("ray-rot").unwrap();
        let c_ray = t.row("c-ray").unwrap();
        let rotate = t.row("rotate").unwrap();
        assert!(ray_rot.speedups[2] > c_ray.speedups[2]);
        assert!(ray_rot.speedups[2] > rotate.speedups[2]);
        assert!(
            ray_rot.speedups[2] > c_ray.speedups[2] * rotate.speedups[2],
            "fused speedup must exceed the product of the parts"
        );
        // (4) h264dec: OmpSs roughly competitive at 8 cores, clearly losing
        //     at 24 and 32 cores.
        let h264 = t.row("h264dec").unwrap();
        assert!(h264.speedups[1] > 0.85, "h264dec at 8: {}", h264.speedups[1]);
        assert!(h264.speedups[3] < 0.80, "h264dec at 24: {}", h264.speedups[3]);
        assert!(h264.speedups[4] < 0.65, "h264dec at 32: {}", h264.speedups[4]);
        assert!(h264.speedups[4] < h264.speedups[1]);
        // (5) The overall mean stays close to parity (the paper reports
        //     +2 %).
        let overall = t.overall_mean();
        assert!(
            overall > 0.90 && overall < 1.25,
            "overall mean should stay near parity: {overall}"
        );
    }

    #[test]
    fn machine_with_fewer_cores_truncates_columns() {
        let m = MachineParams {
            max_cores: 16,
            ..MachineParams::default()
        };
        let t = simulate_table1(&m);
        assert_eq!(t.core_counts, vec![1, 8, 16]);
    }
}

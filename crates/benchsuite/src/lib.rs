//! # benchsuite — the paper's 10-benchmark suite, three variants each
//!
//! For every benchmark of Table 1 this crate provides three implementations
//! that perform bit-identical computations (verified by checksums):
//!
//! * **sequential** — a plain loop over the kernel functions from the
//!   `kernels` crate;
//! * **pthreads** — manual threading in the style of the paper's POSIX
//!   threads variants, built from the `threadkit` substrate (thread teams,
//!   blocking barriers, static partitioning, bounded-queue pipelines);
//! * **ompss** — task annotations in the style of the paper's OmpSs
//!   variants, built on the `ompss` runtime (`input`/`output`/`inout`
//!   clauses, `taskwait`, `taskwait_on`, renaming rings, critical sections).
//!
//! Both parallel variants of a benchmark exploit *the same parallelism*
//! (same work units, same phase structure), mirroring the paper's
//! methodology; only the way that parallelism is expressed and scheduled
//! differs.
//!
//! [`runner`] provides a uniform entry point used by the examples, the
//! integration tests and the benchmark harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod benchmarks;
pub mod runner;

pub use runner::{
    benchmark_names, captured_benchmark_names, run_benchmark, verify_benchmark, RunResult,
    Variant, WorkloadSize,
};

//! Uniform entry point for running any benchmark in any variant.

use std::time::{Duration, Instant};

use ompss::{Runtime, RuntimeConfig};

use crate::benchmarks::*;

/// Which implementation of a benchmark to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Plain sequential loop.
    Sequential,
    /// Manual threading (Pthreads style).
    Pthreads,
    /// Task annotations on the OmpSs-style runtime.
    Ompss,
}

impl Variant {
    /// All variants, in the order the paper discusses them.
    pub fn all() -> [Variant; 3] {
        [Variant::Sequential, Variant::Pthreads, Variant::Ompss]
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Sequential => "seq",
            Variant::Pthreads => "pthreads",
            Variant::Ompss => "ompss",
        }
    }
}

/// Which problem size to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSize {
    /// Small inputs for correctness tests and quick demos.
    Small,
    /// Larger inputs for timing runs.
    Large,
}

/// Result of one benchmark execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Benchmark name (as in Table 1).
    pub name: String,
    /// Which variant ran.
    pub variant: Variant,
    /// Number of threads / workers used (1 for the sequential variant).
    pub threads: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Checksum of the benchmark output (identical across variants).
    pub checksum: u64,
}

/// Names of the 10 benchmarks, in Table 1 order.
pub fn benchmark_names() -> Vec<&'static str> {
    vec![
        "c-ray",
        "rotate",
        "rgbcmy",
        "md5",
        "kmeans",
        "ray-rot",
        "rot-cc",
        "streamcluster",
        "bodytrack",
        "h264dec",
    ]
}

/// Captured-replay companions of the Table-1 rows: same kernels, but the
/// OmpSs variant stamps its task graph through `Runtime::replay` /
/// `Runtime::replay_fused` instead of fresh per-task spawns. They run
/// through [`run_benchmark`] / [`verify_benchmark`] like any other name and
/// appear in `table1 --real` right after their fresh-spawn rows.
pub fn captured_benchmark_names() -> Vec<&'static str> {
    vec!["rotate-cap", "h264dec-cap"]
}

/// Dispatch with explicit per-variant entry points (the captured rows swap
/// in `run_*_captured` functions where the workload differs from the base
/// row).
macro_rules! dispatch_fns {
    ($module:ident, $seq:ident, $pthreads:ident, $ompss:ident,
     $variant:expr, $threads:expr, $size:expr) => {{
        let params = match $size {
            WorkloadSize::Small => $module::Params::small(),
            WorkloadSize::Large => $module::Params::large(),
        };
        match $variant {
            Variant::Sequential => $module::$seq(&params),
            Variant::Pthreads => $module::$pthreads(&params, $threads),
            Variant::Ompss => {
                let rt = Runtime::new(RuntimeConfig::default().with_workers($threads));
                let checksum = $module::$ompss(&params, &rt);
                rt.shutdown();
                checksum
            }
        }
    }};
}

macro_rules! dispatch {
    ($module:ident, $variant:expr, $threads:expr, $size:expr) => {
        dispatch_fns!(
            $module,
            run_seq,
            run_pthreads,
            run_ompss,
            $variant,
            $threads,
            $size
        )
    };
}

/// Run `name` in the given variant with `threads` workers and the given
/// problem size, measuring wall-clock time.
///
/// # Panics
/// Panics if `name` is not one of [`benchmark_names`] or `threads == 0`.
pub fn run_benchmark(name: &str, variant: Variant, threads: usize, size: WorkloadSize) -> RunResult {
    assert!(threads > 0, "need at least one thread");
    let start = Instant::now();
    let checksum = match name {
        "c-ray" => dispatch!(cray, variant, threads, size),
        "rotate" => dispatch!(rotate, variant, threads, size),
        "rgbcmy" => dispatch!(rgbcmy, variant, threads, size),
        "md5" => dispatch!(md5, variant, threads, size),
        "kmeans" => dispatch!(kmeans, variant, threads, size),
        "ray-rot" => dispatch!(rayrot, variant, threads, size),
        "rot-cc" => dispatch!(rotcc, variant, threads, size),
        "streamcluster" => dispatch!(streamcluster, variant, threads, size),
        "bodytrack" => dispatch!(bodytrack, variant, threads, size),
        "h264dec" => dispatch!(h264dec, variant, threads, size),
        // The captured-replay companions. `rotate-cap` sweeps the rotation
        // CAPTURE_SWEEPS times in every variant (isolating per-sweep
        // insertion); `h264dec-cap` decodes the same stream as `h264dec`,
        // replaying the captured frame iteration instead of re-spawning it.
        "rotate-cap" => dispatch_fns!(
            rotate,
            run_seq_captured,
            run_pthreads_captured,
            run_ompss_captured,
            variant,
            threads,
            size
        ),
        "h264dec-cap" => dispatch_fns!(
            h264dec,
            run_seq,
            run_pthreads,
            run_ompss_captured,
            variant,
            threads,
            size
        ),
        other => panic!("unknown benchmark {other}"),
    };
    RunResult {
        name: name.to_string(),
        variant,
        threads,
        duration: start.elapsed(),
        checksum,
    }
}

/// Run all three variants of `name` on the small size and check that they
/// produce identical output. Returns the common checksum.
///
/// # Panics
/// Panics if the variants disagree.
pub fn verify_benchmark(name: &str, threads: usize) -> u64 {
    let seq = run_benchmark(name, Variant::Sequential, 1, WorkloadSize::Small);
    let pthreads = run_benchmark(name, Variant::Pthreads, threads, WorkloadSize::Small);
    let ompss = run_benchmark(name, Variant::Ompss, threads, WorkloadSize::Small);
    assert_eq!(
        seq.checksum, pthreads.checksum,
        "{name}: pthreads variant diverges from sequential"
    );
    assert_eq!(
        seq.checksum, ompss.checksum,
        "{name}: ompss variant diverges from sequential"
    );
    seq.checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_the_paper_table() {
        assert_eq!(benchmark_names().len(), 10);
        assert!(benchmark_names().contains(&"h264dec"));
        // Captured rows are companions, not paper rows.
        for cap in captured_benchmark_names() {
            assert!(cap.ends_with("-cap"));
            assert!(!benchmark_names().contains(&cap));
        }
    }

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::Sequential.label(), "seq");
        assert_eq!(Variant::Pthreads.label(), "pthreads");
        assert_eq!(Variant::Ompss.label(), "ompss");
        assert_eq!(Variant::all().len(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = run_benchmark("doom3", Variant::Sequential, 1, WorkloadSize::Small);
    }

    #[test]
    fn run_benchmark_produces_a_result() {
        let r = run_benchmark("md5", Variant::Sequential, 1, WorkloadSize::Small);
        assert_eq!(r.name, "md5");
        assert_eq!(r.threads, 1);
        assert!(r.checksum != 0);
    }

    #[test]
    fn verify_a_cheap_benchmark() {
        // Full verification of every benchmark lives in the workspace-level
        // integration tests; here we just exercise the helper.
        let c = verify_benchmark("md5", 2);
        assert_ne!(c, 0);
    }
}

//! `rot-cc`: the output of the rotate kernel feeds the RGB→CMYK colour
//! conversion. The conversion of an output band only needs the matching
//! rotated band, so the OmpSs variant chains band-to-band tasks.


use kernels::image::{ImageCmyk, ImageRgb};
use kernels::rgbcmy::convert_rows;
use kernels::rotate::rotate_rows;
use kernels::workload::synthetic_rgb_image;
use ompss::Runtime;
use threadkit::partition::block_range;

/// Parameters of the rot-cc benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Rotation angle in radians.
    pub angle: f64,
    /// Rows per band (work unit of both kernels).
    pub band_rows: usize,
    /// Seed of the synthetic input image.
    pub seed: u64,
}

impl Params {
    /// Small instance for correctness tests.
    pub fn small() -> Self {
        Params {
            width: 56,
            height: 40,
            angle: 0.3,
            band_rows: 5,
            seed: 9,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            width: 512,
            height: 384,
            angle: 0.3,
            band_rows: 16,
            seed: 9,
        }
    }

    /// The synthetic source image.
    pub fn input(&self) -> ImageRgb {
        synthetic_rgb_image(self.width, self.height, self.seed)
    }
}

/// Sequential variant.
pub fn run_seq(p: &Params) -> u64 {
    let src = p.input();
    let rotated = kernels::rotate::rotate(&src, p.angle);
    let cmyk = kernels::rgbcmy::convert(&rotated);
    cmyk.checksum()
}

/// Pthreads-style variant: rotate phase, join, convert phase.
pub fn run_pthreads(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let src = p.input();
    let (width, height) = (p.width, p.height);

    let mut rotated = vec![0u8; 3 * width * height];
    {
        let mut rest: &mut [u8] = &mut rotated;
        let mut bands = Vec::new();
        for t in 0..threads {
            let rows = block_range(height, threads, t);
            let (band, tail) = rest.split_at_mut(rows.len() * 3 * width);
            rest = tail;
            bands.push((rows, band));
        }
        let src = &src;
        let angle = p.angle;
        std::thread::scope(|scope| {
            for (rows, band) in bands {
                scope.spawn(move || {
                    if !rows.is_empty() {
                        rotate_rows(src, angle, rows, band);
                    }
                });
            }
        });
    }
    let rotated = ImageRgb::from_data(width, height, rotated);

    let mut cmyk = vec![0u8; 4 * width * height];
    {
        let mut rest: &mut [u8] = &mut cmyk;
        let mut bands = Vec::new();
        for t in 0..threads {
            let rows = block_range(height, threads, t);
            let (band, tail) = rest.split_at_mut(rows.len() * 4 * width);
            rest = tail;
            bands.push((rows, band));
        }
        let rotated = &rotated;
        std::thread::scope(|scope| {
            for (rows, band) in bands {
                scope.spawn(move || {
                    if !rows.is_empty() {
                        convert_rows(rotated, rows, band);
                    }
                });
            }
        });
    }
    ImageCmyk {
        width,
        height,
        data: cmyk,
    }
    .checksum()
}

/// OmpSs-style variant: rotate task `i` produces band `i` of the rotated
/// image; conversion task `i` consumes exactly that band. The band-to-band
/// dependences let conversions start while other bands are still rotating.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    let (width, height) = (p.width, p.height);
    let src = rt.data(p.input());
    let rotated = rt.partitioned(vec![0u8; 3 * width * height], 3 * width * p.band_rows);
    let cmyk = rt.partitioned(vec![0u8; 4 * width * height], 4 * width * p.band_rows);
    let band_rows = p.band_rows;
    let angle = p.angle;
    let n_bands = rotated.num_chunks();

    for i in 0..n_bands {
        let rot_chunk = rotated.chunk(i);
        let src = src.clone();
        rt.task()
            .name("rotcc_rotate")
            .input(&src)
            .output(&rot_chunk)
            .spawn(move |ctx| {
                let src = ctx.read(&src);
                let mut band = ctx.write_chunk(&rot_chunk);
                let start = i * band_rows;
                let end = (start + band_rows).min(height);
                rotate_rows(&src, angle, start..end, &mut band);
            });
    }
    for i in 0..n_bands {
        let rot_chunk = rotated.chunk(i);
        let cmyk_chunk = cmyk.chunk(i);
        rt.task()
            .name("rotcc_convert")
            .input(&rot_chunk)
            .output(&cmyk_chunk)
            .spawn(move |ctx| {
                let band_rgb = ctx.read_chunk(&rot_chunk);
                let rows = band_rgb.len() / (3 * width);
                let band_img = ImageRgb {
                    width,
                    height: rows,
                    data: band_rgb.to_vec(),
                };
                let mut out = ctx.write_chunk(&cmyk_chunk);
                convert_rows(&band_img, 0..rows, &mut out);
            });
    }
    rt.taskwait();
    let data = rt.into_vec(cmyk);
    ImageCmyk {
        width,
        height,
        data,
    }
    .checksum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 1), seq);
        assert_eq!(run_pthreads(&p, 4), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq);
    }

    #[test]
    fn band_to_band_chaining_produces_many_dependence_edges() {
        let p = Params::small();
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2).with_tracing(true));
        let _ = run_ompss(&p, &rt);
        let stats = rt.stats();
        // Every conversion task depends on its rotate task (plus the rotate
        // tasks' RAW edges on the source image handle). `edges_added` only
        // counts predecessors still in flight at registration and so varies
        // with host load; `dependences_seen` counts the discovered
        // conflicts deterministically.
        assert!(stats.dependences_seen >= (p.height.div_ceil(p.band_rows)) as u64);
    }
}

//! `streamcluster`: online k-median clustering. The expensive part of every
//! candidate evaluation — the gain computation over all points — is the
//! parallel phase; opening a centre is a serial step between phases.

use std::sync::Arc;

use kernels::streamcluster::{apply_open, gain_range, ClusterState};
use kernels::workload::clustered_points;
use ompss::Runtime;
use threadkit::partition::chunk_ranges;

/// Parameters of the streamcluster benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Number of points in the block.
    pub points: usize,
    /// Dimensionality of each point.
    pub dim: usize,
    /// Facility opening cost.
    pub facility_cost: f64,
    /// Candidate stride (every `stride`-th point is considered as a centre).
    pub stride: usize,
    /// Maximum number of open centres.
    pub max_centers: usize,
    /// Points per work unit of the gain computation.
    pub chunk: usize,
    /// Seed of the synthetic points.
    pub seed: u64,
}

impl Params {
    /// Small instance for correctness tests.
    pub fn small() -> Self {
        Params {
            points: 300,
            dim: 3,
            facility_cost: 2.0,
            stride: 23,
            max_centers: 8,
            chunk: 50,
            seed: 31,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            points: 8_000,
            dim: 8,
            facility_cost: 20.0,
            stride: 97,
            max_centers: 32,
            chunk: 500,
            seed: 31,
        }
    }

    /// The input points (flattened).
    pub fn input(&self) -> Vec<f32> {
        clustered_points(self.points, self.dim, self.max_centers.max(4), self.seed)
    }
}

fn state_checksum(state: &ClusterState) -> u64 {
    let mut bytes = Vec::new();
    for &a in &state.assignment {
        bytes.extend_from_slice(&a.to_le_bytes());
    }
    for &c in &state.cost {
        bytes.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    for &c in &state.centers {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    kernels::image::fletcher64(&bytes)
}

/// The candidate centres every variant evaluates, in order.
fn candidates(p: &Params) -> Vec<usize> {
    (0..p.points).step_by(p.stride.max(1)).collect()
}

/// Sequential variant (chunked gain computation so the reduction order is
/// identical across variants).
pub fn run_seq(p: &Params) -> u64 {
    let points = p.input();
    let ranges = chunk_ranges(p.points, p.chunk);
    let mut state = ClusterState::singleton(&points, p.dim);
    for candidate in candidates(p) {
        if state.centers.len() >= p.max_centers || state.centers.contains(&(candidate as u32)) {
            continue;
        }
        let mut gain = 0f64;
        let mut switchers = Vec::new();
        for range in &ranges {
            let (g, s) = gain_range(&points, p.dim, &state, candidate, range.clone());
            gain += g;
            switchers.extend(s);
        }
        if gain > p.facility_cost {
            apply_open(&points, p.dim, &mut state, candidate, &switchers);
        }
    }
    state_checksum(&state)
}

/// Pthreads-style variant: every candidate's gain computation is forked over
/// the threads (each taking a set of chunks), joined, and the open decision
/// is made on the main thread.
pub fn run_pthreads(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let points = Arc::new(p.input());
    let ranges = chunk_ranges(p.points, p.chunk);
    let mut state = ClusterState::singleton(&points, p.dim);
    for candidate in candidates(p) {
        if state.centers.len() >= p.max_centers || state.centers.contains(&(candidate as u32)) {
            continue;
        }
        let mut per_chunk: Vec<(f64, Vec<u32>)> = vec![(0.0, Vec::new()); ranges.len()];
        {
            let state = &state;
            let points = &points;
            let mut rest: &mut [(f64, Vec<u32>)] = &mut per_chunk;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let my_chunks = threadkit::partition::block_range(ranges.len(), threads, t);
                    let my_ranges: Vec<std::ops::Range<usize>> =
                        ranges[my_chunks.clone()].to_vec();
                    let (mine, tail) = rest.split_at_mut(my_chunks.len());
                    rest = tail;
                    let dim = p.dim;
                    scope.spawn(move || {
                        for (slot, range) in mine.iter_mut().zip(my_ranges) {
                            *slot = gain_range(points, dim, state, candidate, range);
                        }
                    });
                }
            });
        }
        let mut gain = 0f64;
        let mut switchers = Vec::new();
        for (g, s) in per_chunk {
            gain += g;
            switchers.extend(s);
        }
        if gain > p.facility_cost {
            apply_open(&points, p.dim, &mut state, candidate, &switchers);
        }
    }
    state_checksum(&state)
}

/// OmpSs-style variant: for every candidate, one gain task per point chunk
/// (reading the shared state) and one decision task (reading every gain slot
/// and updating the state). The dependences — gain tasks read `state`, the
/// decision task writes it — order the candidates without any explicit
/// barrier; a single `taskwait` at the end drains the graph.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    let points: Arc<Vec<f32>> = Arc::new(p.input());
    let ranges = chunk_ranges(p.points, p.chunk);
    let n_chunks = ranges.len();
    let state = rt.data(ClusterState::singleton(&points, p.dim));
    let gains = rt.partitioned(vec![(0f64, Vec::<u32>::new()); n_chunks], 1);

    for candidate in candidates(p) {
        // Gain tasks: read the state, write their own slot.
        for (i, range) in ranges.iter().enumerate() {
            let slot = gains.chunk(i);
            let state = state.clone();
            let points = points.clone();
            let range = range.clone();
            let dim = p.dim;
            rt.task()
                .name("streamcluster_gain")
                .input(&state)
                .output(&slot)
                .spawn(move |ctx| {
                    let st = ctx.read(&state);
                    let mut slot = ctx.write_chunk(&slot);
                    slot[0] = gain_range(&points, dim, &st, candidate, range);
                });
        }
        // Decision task: read all gain slots, update the state.
        {
            let all_gains = gains.whole();
            let state = state.clone();
            let points = points.clone();
            let dim = p.dim;
            let facility_cost = p.facility_cost;
            let max_centers = p.max_centers;
            rt.task()
                .name("streamcluster_open")
                .input(&all_gains)
                .inout(&state)
                .spawn(move |ctx| {
                    let mut st = ctx.write(&state);
                    if st.centers.len() >= max_centers
                        || st.centers.contains(&(candidate as u32))
                    {
                        return;
                    }
                    let parts = ctx.read_whole(&all_gains);
                    let mut gain = 0f64;
                    let mut switchers = Vec::new();
                    for (g, s) in parts.iter() {
                        gain += g;
                        switchers.extend_from_slice(s);
                    }
                    if gain > facility_cost {
                        apply_open(&points, dim, &mut st, candidate, &switchers);
                    }
                });
        }
    }
    rt.taskwait();
    let final_state = rt.fetch(&state);
    state_checksum(&final_state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 1), seq);
        assert_eq!(run_pthreads(&p, 3), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq);
    }

    #[test]
    fn opens_more_than_the_initial_center() {
        // Sanity: the chosen parameters must actually exercise the open path.
        let p = Params::small();
        let points = p.input();
        let state = kernels::streamcluster::local_search_seq(
            &points,
            p.dim,
            p.facility_cost,
            p.stride,
            p.max_centers,
        );
        assert!(state.centers.len() > 1);
    }
}

//! `md5`: hashing many independent buffers, one work unit per buffer.

use std::sync::Arc;

use kernels::md5::{md5_digest, Digest};
use kernels::workload::md5_buffers;
use ompss::Runtime;

/// Parameters of the md5 benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Number of buffers to hash.
    pub buffers: usize,
    /// Size of each buffer in bytes.
    pub buffer_size: usize,
    /// Seed of the synthetic buffers.
    pub seed: u64,
}

impl Params {
    /// Small instance for correctness tests.
    pub fn small() -> Self {
        Params {
            buffers: 24,
            buffer_size: 2_048,
            seed: 77,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            buffers: 512,
            buffer_size: 16_384,
            seed: 77,
        }
    }

    /// The input buffers.
    pub fn input(&self) -> Vec<Vec<u8>> {
        md5_buffers(self.buffers, self.buffer_size, self.seed)
    }
}

fn digests_checksum(digests: &[Digest]) -> u64 {
    let flat: Vec<u8> = digests.iter().flatten().copied().collect();
    kernels::image::fletcher64(&flat)
}

/// Sequential variant.
pub fn run_seq(p: &Params) -> u64 {
    let buffers = p.input();
    let digests: Vec<Digest> = buffers.iter().map(|b| md5_digest(b)).collect();
    digests_checksum(&digests)
}

/// Pthreads-style variant: the buffers are block-partitioned over the
/// threads; each thread fills its slice of the digest array.
pub fn run_pthreads(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let buffers = p.input();
    let mut digests: Vec<Digest> = vec![[0u8; 16]; p.buffers];
    {
        let buffers = &buffers;
        let mut remaining: &mut [Digest] = &mut digests;
        let mut start = 0usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let range = threadkit::partition::block_range(p.buffers, threads, t);
                let (mine, rest) = remaining.split_at_mut(range.len());
                remaining = rest;
                let first = start;
                start += range.len();
                scope.spawn(move || {
                    for (i, slot) in mine.iter_mut().enumerate() {
                        *slot = md5_digest(&buffers[first + i]);
                    }
                });
            }
        });
    }
    digests_checksum(&digests)
}

/// OmpSs-style variant: one task per buffer, writing one digest slot each.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    let buffers: Arc<Vec<Vec<u8>>> = Arc::new(p.input());
    let digests = rt.partitioned(vec![[0u8; 16] as Digest; p.buffers], 1);
    for i in 0..p.buffers {
        let chunk = digests.chunk(i);
        let buffers = buffers.clone();
        rt.task()
            .name("md5_buffer")
            .output(&chunk)
            .spawn(move |ctx| {
                let mut slot = ctx.write_chunk(&chunk);
                slot[0] = md5_digest(&buffers[i]);
            });
    }
    rt.taskwait();
    let digests = rt.into_vec(digests);
    digests_checksum(&digests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 1), seq);
        assert_eq!(run_pthreads(&p, 5), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq);
    }

    #[test]
    fn checksum_depends_on_input() {
        let p = Params::small();
        let other = Params {
            seed: 78,
            ..Params::small()
        };
        assert_ne!(run_seq(&p), run_seq(&other));
    }
}

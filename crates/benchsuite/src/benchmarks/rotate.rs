//! `rotate`: bilinear image rotation, one work unit per band of output rows.


use kernels::image::ImageRgb;
use kernels::rotate::rotate_rows;
use kernels::workload::synthetic_rgb_image;
use ompss::Runtime;
use threadkit::partition::block_range;

/// Parameters of the rotate benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Rotation angle in radians.
    pub angle: f64,
    /// Number of output rows per work unit.
    pub band_rows: usize,
    /// Seed of the synthetic input image.
    pub seed: u64,
}

impl Params {
    /// Small instance for correctness tests.
    pub fn small() -> Self {
        Params {
            width: 64,
            height: 48,
            angle: 0.41,
            band_rows: 4,
            seed: 11,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            width: 512,
            height: 384,
            angle: 0.41,
            band_rows: 16,
            seed: 11,
        }
    }

    /// The synthetic source image.
    pub fn input(&self) -> ImageRgb {
        synthetic_rgb_image(self.width, self.height, self.seed)
    }
}

/// Sequential variant.
pub fn run_seq(p: &Params) -> u64 {
    let src = p.input();
    let out = kernels::rotate::rotate(&src, p.angle);
    out.checksum()
}

/// Pthreads-style variant: the output rows are block-partitioned over the
/// threads; each thread rotates its contiguous band.
pub fn run_pthreads(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let src = p.input();
    let mut out = vec![0u8; 3 * p.width * p.height];
    {
        let row_bytes = 3 * p.width;
        // Block partition: thread t gets a contiguous band of rows.
        let mut bands: Vec<(std::ops::Range<usize>, &mut [u8])> = Vec::new();
        let mut rest: &mut [u8] = &mut out;
        let mut consumed = 0usize;
        for t in 0..threads {
            let rows = block_range(p.height, threads, t);
            let bytes = rows.len() * row_bytes;
            let (band, tail) = rest.split_at_mut(bytes);
            debug_assert_eq!(rows.start, consumed);
            consumed += rows.len();
            bands.push((rows, band));
            rest = tail;
        }
        let src = &src;
        let angle = p.angle;
        std::thread::scope(|scope| {
            for (rows, band) in bands {
                scope.spawn(move || {
                    if !rows.is_empty() {
                        rotate_rows(src, angle, rows, band);
                    }
                });
            }
        });
    }
    ImageRgb::from_data(p.width, p.height, out).checksum()
}

/// OmpSs-style variant: one task per band of output rows, reading the whole
/// source image and writing its own output chunk. The output lives in a
/// **versioned** partition: each band's `output` access renames just that
/// chunk, so repeated rotations into the same handle (or callers composing
/// this with downstream readers) never inherit WAR/WAW serialisation and no
/// manual double-buffer is needed.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    let src = rt.data(p.input());
    let out =
        rt.versioned_partitioned(vec![0u8; 3 * p.width * p.height], 3 * p.width * p.band_rows);
    let angle = p.angle;
    let band_rows = p.band_rows;
    let height = p.height;
    for (i, chunk) in out.chunk_handles().enumerate() {
        let src = src.clone();
        rt.task()
            .name("rotate_band")
            .input(&src)
            .output(&chunk)
            .spawn(move |ctx| {
                let src = ctx.read(&src);
                let mut band = ctx.write_chunk(&chunk);
                let start = i * band_rows;
                let end = (start + band_rows).min(height);
                rotate_rows(&src, angle, start..end, &mut band);
            });
    }
    rt.taskwait();
    let data = rt.into_vec(out);
    ImageRgb::from_data(p.width, p.height, data).checksum()
}

/// Rotation sweeps the captured (`rotate-cap`) variant performs. Every
/// variant does the same number, so the three rows stay comparable: the
/// rotation is deterministic, so re-rotating is idempotent and the repeat
/// isolates exactly what capture amortises — per-sweep task insertion.
pub const CAPTURE_SWEEPS: usize = 4;

/// Sequential variant of `rotate-cap`: the same rotation, swept
/// [`CAPTURE_SWEEPS`] times.
pub fn run_seq_captured(p: &Params) -> u64 {
    let src = p.input();
    let mut out = kernels::rotate::rotate(&src, p.angle);
    for _ in 1..CAPTURE_SWEEPS {
        out = kernels::rotate::rotate(&src, p.angle);
    }
    out.checksum()
}

/// Pthreads variant of `rotate-cap`: each thread re-rotates its band
/// [`CAPTURE_SWEEPS`] times (bands are disjoint, so no cross-sweep
/// synchronisation is needed — the fairest possible hand-rolled loop).
pub fn run_pthreads_captured(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let src = p.input();
    let mut out = vec![0u8; 3 * p.width * p.height];
    {
        let row_bytes = 3 * p.width;
        let mut bands: Vec<(std::ops::Range<usize>, &mut [u8])> = Vec::new();
        let mut rest: &mut [u8] = &mut out;
        for t in 0..threads {
            let rows = block_range(p.height, threads, t);
            let bytes = rows.len() * row_bytes;
            let (band, tail) = rest.split_at_mut(bytes);
            bands.push((rows, band));
            rest = tail;
        }
        let src = &src;
        let angle = p.angle;
        std::thread::scope(|scope| {
            for (rows, band) in bands {
                scope.spawn(move || {
                    for _ in 0..CAPTURE_SWEEPS {
                        if !rows.is_empty() {
                            rotate_rows(src, angle, rows.clone(), band);
                        }
                    }
                });
            }
        });
    }
    ImageRgb::from_data(p.width, p.height, out).checksum()
}

/// OmpSs variant of `rotate-cap`: the band sweep is spawned **once** inside
/// a capture scope, then re-stamped — one resolved `replay` pass (which
/// freezes the template: the output partition's chunks are disjoint plain
/// regions, so resolution is pass-invariant) and one fused super-batch for
/// the remaining sweeps, riding the pre-wired plan. Inter-sweep WAW chains
/// on each chunk carry the ordering; no taskwait separates the sweeps.
pub fn run_ompss_captured(p: &Params, rt: &Runtime) -> u64 {
    let src = rt.data(p.input());
    let out = rt.partitioned(vec![0u8; 3 * p.width * p.height], 3 * p.width * p.band_rows);
    let angle = p.angle;
    let band_rows = p.band_rows;
    let height = p.height;
    let mut scope = rt.capture();
    for (i, chunk) in out.chunk_handles().enumerate() {
        let src = src.clone();
        scope
            .task()
            .name("rotate_band")
            .input(&src)
            .output(&chunk)
            .spawn(move |ctx| {
                let src = ctx.read(&src);
                let mut band = ctx.write_chunk(&chunk);
                let start = i * band_rows;
                let end = (start + band_rows).min(height);
                rotate_rows(&src, angle, start..end, &mut band);
            });
    }
    let template = scope.finish();
    let bindings = ompss::ReplayBindings::new();
    rt.replay(&template, &bindings);
    rt.replay_fused(&template, CAPTURE_SWEEPS - 2);
    rt.taskwait();
    debug_assert!(
        template.is_frozen(),
        "a disjoint-chunk band sweep must freeze after its pure replay pass"
    );
    // The recipes own clones of the chunk handles; release them so the
    // partition can be reclaimed.
    drop(template);
    let data = rt.into_vec(out);
    ImageRgb::from_data(p.width, p.height, data).checksum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 1), seq);
        assert_eq!(run_pthreads(&p, 4), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq);
    }

    #[test]
    fn captured_variants_agree_and_freeze() {
        let p = Params::small();
        let seq = run_seq_captured(&p);
        assert_eq!(seq, run_seq(&p), "re-rotation is idempotent");
        assert_eq!(run_pthreads_captured(&p, 3), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss_captured(&p, &rt), seq);
    }

    #[test]
    fn band_size_does_not_change_the_result() {
        let mut p = Params::small();
        let seq = run_seq(&p);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        p.band_rows = 7;
        assert_eq!(run_ompss(&p, &rt), seq);
        p.band_rows = 48;
        assert_eq!(run_ompss(&p, &rt), seq);
    }
}

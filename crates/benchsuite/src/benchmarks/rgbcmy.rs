//! `rgbcmy`: repeated RGB → CMYK conversion with a barrier between
//! iterations (the benchmark Section 4 uses to contrast polling task
//! barriers with blocking thread barriers).

use std::sync::Arc;

use kernels::image::{ImageCmyk, ImageRgb};
use kernels::rgbcmy::convert_rows;
use kernels::workload::synthetic_rgb_image;
use ompss::Runtime;
use parking_lot::Mutex;
use threadkit::team::{TeamBarrierKind, ThreadTeam};

/// Parameters of the rgbcmy benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of conversion iterations (each ending with a barrier).
    pub iterations: usize,
    /// Output rows per work unit.
    pub band_rows: usize,
    /// Seed of the synthetic input image.
    pub seed: u64,
}

impl Params {
    /// Small instance for correctness tests.
    pub fn small() -> Self {
        Params {
            width: 48,
            height: 36,
            iterations: 4,
            band_rows: 6,
            seed: 3,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            width: 512,
            height: 384,
            iterations: 20,
            band_rows: 16,
            seed: 3,
        }
    }

    /// The synthetic source image.
    pub fn input(&self) -> ImageRgb {
        synthetic_rgb_image(self.width, self.height, self.seed)
    }
}

/// Sequential variant.
pub fn run_seq(p: &Params) -> u64 {
    let src = p.input();
    let mut out = ImageCmyk::new(p.width, p.height);
    for _ in 0..p.iterations {
        convert_rows(&src, 0..p.height, &mut out.data);
    }
    out.checksum()
}

/// Pthreads-style variant: a persistent thread team converts its static band
/// of rows every iteration and meets the others at a blocking barrier — the
/// structure the paper's Pthreads version uses.
pub fn run_pthreads(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let src = Arc::new(p.input());
    // Each thread owns its band buffer; bands are stitched together at the
    // end, which keeps the team closure free of unsynchronised shared
    // mutation.
    let bands: Arc<Vec<Mutex<Vec<u8>>>> = Arc::new(
        (0..threads)
            .map(|t| {
                let rows = threadkit::partition::block_range(p.height, threads, t);
                Mutex::new(vec![0u8; 4 * p.width * rows.len()])
            })
            .collect(),
    );
    let mut team = ThreadTeam::with_barrier(threads, TeamBarrierKind::Blocking);
    let iterations = p.iterations;
    let height = p.height;
    {
        let src = src.clone();
        let bands = bands.clone();
        team.run(move |ctx| {
            let rows = ctx.block_range(height);
            for _ in 0..iterations {
                if !rows.is_empty() {
                    let mut band = bands[ctx.thread_id].lock();
                    convert_rows(&src, rows.clone(), &mut band);
                }
                ctx.barrier();
            }
        });
    }
    team.shutdown();
    let mut out = ImageCmyk::new(p.width, p.height);
    let mut offset = 0;
    for band in bands.iter() {
        let band = band.lock();
        out.data[offset..offset + band.len()].copy_from_slice(&band);
        offset += band.len();
    }
    out.checksum()
}

/// OmpSs-style variant: every iteration spawns one task per row band and ends
/// with a `taskwait` (the polling task barrier). The output bands live in a
/// **versioned** partition, so each iteration's `output` renames its chunk
/// instead of inheriting WAW hazards from the previous iteration — no manual
/// double-buffering.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    let src = rt.data(p.input());
    let out = rt.versioned_partitioned(
        vec![0u8; 4 * p.width * p.height],
        4 * p.width * p.band_rows,
    );
    let band_rows = p.band_rows;
    let height = p.height;
    for _ in 0..p.iterations {
        spawn_iteration(rt, &src, &out, band_rows, height);
        // Polling task barrier between iterations.
        rt.taskwait();
    }
    checksum_output(p, rt, out)
}

/// Fully pipelined OmpSs-style variant: **no barrier between iterations**.
/// Without renaming, iteration `k + 1`'s band writes would WAW-serialise
/// behind iteration `k`'s (the pattern Listing 1 breaks by hand with
/// circular buffers); with per-chunk version chains the runtime renames each
/// band write, so all iterations overlap and the manual double-buffer drops
/// out entirely.
pub fn run_ompss_pipelined(p: &Params, rt: &Runtime) -> u64 {
    let src = rt.data(p.input());
    let out = rt.versioned_partitioned(
        vec![0u8; 4 * p.width * p.height],
        4 * p.width * p.band_rows,
    );
    for _ in 0..p.iterations {
        spawn_iteration(rt, &src, &out, p.band_rows, p.height);
    }
    rt.taskwait();
    checksum_output(p, rt, out)
}

fn spawn_iteration(
    rt: &Runtime,
    src: &ompss::Data<ImageRgb>,
    out: &ompss::PartitionedData<u8>,
    band_rows: usize,
    height: usize,
) {
    for (i, chunk) in out.chunk_handles().enumerate() {
        let src = src.clone();
        rt.task()
            .name("rgbcmy_band")
            .input(&src)
            .output(&chunk)
            .spawn(move |ctx| {
                let src = ctx.read(&src);
                let mut band = ctx.write_chunk(&chunk);
                let start = i * band_rows;
                let end = (start + band_rows).min(height);
                convert_rows(&src, start..end, &mut band);
            });
    }
}

fn checksum_output(p: &Params, rt: &Runtime, out: ompss::PartitionedData<u8>) -> u64 {
    let data = rt.into_vec(out);
    let out = ImageCmyk {
        width: p.width,
        height: p.height,
        data,
    };
    out.checksum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 1), seq);
        assert_eq!(run_pthreads(&p, 3), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq);
        assert_eq!(run_ompss_pipelined(&p, &rt), seq);
    }

    #[test]
    fn pipelined_variant_has_no_false_dependences() {
        // Without the inter-iteration barrier, the per-chunk renaming must
        // absorb every WAW between iterations: the graph carries no false
        // dependences at all for this benchmark.
        let p = Params::small();
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        let seq = run_seq(&p);
        assert_eq!(run_ompss_pipelined(&p, &rt), seq);
        let stats = rt.stats();
        assert_eq!(stats.war_edges + stats.waw_edges, 0);
        // Re-written bands are decoupled per chunk: renamed while the
        // previous round is in flight, elided (overwritten in place) once it
        // has fully retired — either way no false dependence arises.
        assert!(
            stats.chunk_renames + stats.renames_elided > 0,
            "bands renamed (or elided) per chunk"
        );
    }

    #[test]
    fn iteration_count_does_not_change_the_checksum() {
        // The conversion is idempotent on the same input, so more iterations
        // only repeat work (as in the original benchmark, which iterates to
        // stabilise timing).
        let mut p = Params::small();
        let one = run_seq(&Params {
            iterations: 1,
            ..p.clone()
        });
        p.iterations = 5;
        assert_eq!(run_seq(&p), one);
    }
}

//! `bodytrack`: an annealed particle filter. Per frame and annealing layer,
//! the particle likelihood evaluation is data parallel over particle ranges;
//! resampling is a serial step between layers.

use std::sync::Arc;

use kernels::bodytrack::{
    estimate_pose, evaluate_weights_range, init_particles, resample, FilterConfig, Particle,
};
use kernels::workload::body_observations;
use ompss::Runtime;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use threadkit::partition::chunk_ranges;

/// Parameters of the bodytrack benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Particle-filter configuration.
    pub filter: FilterConfig,
    /// Number of frames to track.
    pub frames: usize,
    /// Particles per work unit.
    pub chunk: usize,
    /// Seed of the observations and of the filter's RNG.
    pub seed: u64,
}

impl Params {
    /// Small instance for correctness tests.
    pub fn small() -> Self {
        Params {
            filter: FilterConfig {
                particles: 96,
                joints: 5,
                layers: 2,
                base_noise: 0.1,
                beta: 30.0,
            },
            frames: 4,
            chunk: 24,
            seed: 13,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            filter: FilterConfig {
                particles: 2_048,
                joints: 12,
                layers: 4,
                base_noise: 0.1,
                beta: 40.0,
            },
            frames: 30,
            chunk: 128,
            seed: 13,
        }
    }

    /// The per-frame observations.
    pub fn observations(&self) -> Vec<Vec<f32>> {
        body_observations(self.frames, self.filter.joints, self.seed)
    }
}

fn poses_checksum(poses: &[Vec<f32>]) -> u64 {
    let mut bytes = Vec::new();
    for pose in poses {
        for v in pose {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    kernels::image::fletcher64(&bytes)
}

/// The tracking loop shared by the sequential and Pthreads variants; the
/// `evaluate` closure fills the weights for the particle set (the only
/// parallel part).
fn track_with<E>(p: &Params, mut evaluate: E) -> Vec<Vec<f32>>
where
    E: FnMut(&[Particle], &[f32], &mut [f32]),
{
    let cfg = &p.filter;
    let observations = p.observations();
    let mut rng = ChaCha8Rng::seed_from_u64(p.seed);
    let mut particles = init_particles(cfg, &mut rng);
    let mut poses = Vec::with_capacity(observations.len());
    let mut weights = vec![0f32; cfg.particles];
    for obs in &observations {
        for layer in 0..cfg.layers {
            let noise = cfg.base_noise / (1 << layer) as f32;
            evaluate(&particles, obs, &mut weights);
            particles = resample(&particles, &weights, noise, &mut rng);
        }
        evaluate(&particles, obs, &mut weights);
        poses.push(estimate_pose(&particles, &weights));
    }
    poses
}

/// Sequential variant.
pub fn run_seq(p: &Params) -> u64 {
    let beta = p.filter.beta;
    let n = p.filter.particles;
    let poses = track_with(p, |particles, obs, weights| {
        evaluate_weights_range(particles, obs, beta, 0..n, weights);
    });
    poses_checksum(&poses)
}

/// Pthreads-style variant: the weight evaluation is forked over the threads
/// (block partition of the particle chunks); resampling stays on the main
/// thread, exactly as in the sequential code.
pub fn run_pthreads(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let beta = p.filter.beta;
    let ranges = chunk_ranges(p.filter.particles, p.chunk);
    let poses = track_with(p, |particles, obs, weights| {
        let mut rest: &mut [f32] = weights;
        let mut offset = 0usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let my_chunks = threadkit::partition::block_range(ranges.len(), threads, t);
                let my_ranges: Vec<std::ops::Range<usize>> = ranges[my_chunks].to_vec();
                let my_len: usize = my_ranges.iter().map(|r| r.len()).sum();
                let (mine, tail) = rest.split_at_mut(my_len);
                rest = tail;
                debug_assert!(my_ranges.first().is_none_or(|r| r.start == offset));
                offset += my_len;
                scope.spawn(move || {
                    let mut local = 0usize;
                    for range in my_ranges {
                        let len = range.len();
                        evaluate_weights_range(
                            particles,
                            obs,
                            beta,
                            range,
                            &mut mine[local..local + len],
                        );
                        local += len;
                    }
                });
            }
        });
    });
    poses_checksum(&poses)
}

/// OmpSs-style variant: per layer, one task per particle chunk evaluates the
/// weights (reading the particle set, writing its weight chunk) and one
/// resampling task (reading all weights, updating the particle set). The
/// frame loop ends with a `taskwait`.
///
/// The weight vector is a **versioned** partition: each layer's per-chunk
/// `output` renames its chunk, so the next layer's weight writes never
/// WAR-serialise behind the previous resampling/pose read of the whole
/// array — the runtime provides the double-buffer the programmer would
/// otherwise write by hand.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    let cfg = p.filter.clone();
    let observations: Arc<Vec<Vec<f32>>> = Arc::new(p.observations());
    let ranges = chunk_ranges(cfg.particles, p.chunk);

    let mut rng = ChaCha8Rng::seed_from_u64(p.seed);
    let particles = rt.data(init_particles(&cfg, &mut rng));
    let weights = rt.versioned_partitioned(vec![0f32; cfg.particles], p.chunk);
    let rng_handle = rt.data(rng);
    let poses = rt.data(Vec::<Vec<f32>>::new());

    for frame in 0..p.frames {
        for layer in 0..=cfg.layers {
            // Weight evaluation tasks.
            for (i, range) in ranges.iter().enumerate() {
                let particles = particles.clone();
                let weight_chunk = weights.chunk(i);
                let observations = observations.clone();
                let range = range.clone();
                let beta = cfg.beta;
                rt.task()
                    .name("bodytrack_weights")
                    .input(&particles)
                    .output(&weight_chunk)
                    .spawn(move |ctx| {
                        let parts = ctx.read(&particles);
                        let mut w = ctx.write_chunk(&weight_chunk);
                        evaluate_weights_range(&parts, &observations[frame], beta, range, &mut w);
                    });
            }
            if layer < cfg.layers {
                // Resampling task (serial, like the original).
                let particles = particles.clone();
                let all_weights = weights.whole();
                let rng_handle = rng_handle.clone();
                let noise = cfg.base_noise / (1 << layer) as f32;
                rt.task()
                    .name("bodytrack_resample")
                    .input(&all_weights)
                    .inout(&particles)
                    .inout(&rng_handle)
                    .spawn(move |ctx| {
                        let w = ctx.gather_whole(&all_weights);
                        let mut parts = ctx.write(&particles);
                        let mut rng = ctx.write(&rng_handle);
                        *parts = resample(&parts, &w, noise, &mut rng);
                    });
            } else {
                // Pose-estimation task for this frame.
                let particles = particles.clone();
                let all_weights = weights.whole();
                let poses = poses.clone();
                rt.task()
                    .name("bodytrack_pose")
                    .input(&all_weights)
                    .input(&particles)
                    .inout(&poses)
                    .spawn(move |ctx| {
                        let w = ctx.gather_whole(&all_weights);
                        let parts = ctx.read(&particles);
                        let mut poses = ctx.write(&poses);
                        poses.push(estimate_pose(&parts, &w));
                    });
            }
        }
        rt.taskwait();
    }
    let poses = rt.fetch(&poses);
    poses_checksum(&poses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 1), seq);
        assert_eq!(run_pthreads(&p, 3), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq);
    }

    #[test]
    fn matches_the_reference_tracker_structure() {
        // The benchmark's sequential driver follows the same layer structure
        // as the kernels crate's reference tracker (same number of poses).
        let p = Params::small();
        let obs = p.observations();
        let reference = kernels::bodytrack::track_seq(&p.filter, &obs, p.seed);
        assert_eq!(reference.poses.len(), p.frames);
    }
}

//! One module per benchmark of Table 1.
//!
//! Every module exposes a `Params` type (with `small()` for tests and
//! `large()` for timing runs), plus `run_seq`, `run_pthreads` and
//! `run_ompss` functions that return a checksum of the benchmark's output,
//! so that the three variants can be verified to compute exactly the same
//! thing.

pub mod bodytrack;
pub mod cray;
pub mod h264dec;
pub mod kmeans;
pub mod md5;
pub mod rayrot;
pub mod rgbcmy;
pub mod rotate;
pub mod rotcc;
pub mod streamcluster;

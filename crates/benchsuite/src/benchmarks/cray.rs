//! `c-ray`: sphere ray tracing, one work unit per scanline.

use std::sync::Arc;

use kernels::cray::{render_scanline, Scene};
use kernels::image::ImageRgb;
use ompss::Runtime;

/// Parameters of the c-ray benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels (= number of scanline work units).
    pub height: usize,
    /// Number of spheres in the scene.
    pub spheres: usize,
}

impl Params {
    /// Small instance for correctness tests.
    pub fn small() -> Self {
        Params {
            width: 48,
            height: 32,
            spheres: 6,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            width: 256,
            height: 192,
            spheres: 24,
        }
    }

    fn scene(&self) -> Scene {
        Scene::demo(self.spheres)
    }
}

/// Sequential variant.
pub fn run_seq(p: &Params) -> u64 {
    let scene = p.scene();
    let mut img = ImageRgb::new(p.width, p.height);
    for y in 0..p.height {
        let range = img.row_range(y);
        render_scanline(&scene, p.width, p.height, y, &mut img.data[range]);
    }
    img.checksum()
}

/// Pthreads-style variant: scanlines distributed cyclically over a fixed set
/// of threads (static partitioning, no load balancing).
pub fn run_pthreads(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let scene = p.scene();
    let mut img = ImageRgb::new(p.width, p.height);
    let width = p.width;
    let height = p.height;
    {
        // Hand out disjoint mutable rows to the threads, cyclically.
        let rows: Vec<(usize, &mut [u8])> = img
            .data
            .chunks_mut(3 * width)
            .enumerate()
            .collect();
        let mut per_thread: Vec<Vec<(usize, &mut [u8])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (y, row) in rows {
            per_thread[y % threads].push((y, row));
        }
        let scene = &scene;
        std::thread::scope(|scope| {
            for mine in per_thread {
                scope.spawn(move || {
                    for (y, row) in mine {
                        render_scanline(scene, width, height, y, row);
                    }
                });
            }
        });
    }
    img.checksum()
}

/// OmpSs-style variant: one task per scanline, each declaring an `output`
/// access on its row of the image; the runtime balances them dynamically.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    let scene = Arc::new(p.scene());
    let width = p.width;
    let height = p.height;
    let image = rt.partitioned(vec![0u8; 3 * width * height], 3 * width);
    for y in 0..height {
        let chunk = image.chunk(y);
        let scene = scene.clone();
        rt.task()
            .name("cray_scanline")
            .output(&chunk)
            .spawn(move |ctx| {
                let mut row = ctx.write_chunk(&chunk);
                render_scanline(&scene, width, height, y, &mut row);
            });
    }
    rt.taskwait();
    let data = rt.into_vec(image);
    ImageRgb::from_data(width, height, data).checksum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 1), seq);
        assert_eq!(run_pthreads(&p, 3), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq);
    }

    #[test]
    fn more_threads_than_scanlines_is_fine() {
        let p = Params {
            width: 16,
            height: 4,
            spheres: 2,
        };
        assert_eq!(run_pthreads(&p, 9), run_seq(&p));
    }
}

//! `h264dec`: the synthetic 5-stage video decoder.
//!
//! * The **Pthreads** variant is a hand-rolled thread-per-stage pipeline
//!   over bounded queues (`threadkit::Pipeline`).
//! * The **OmpSs** variant ([`run_ompss`]) uses the runtime's *automatic*
//!   renaming: each inter-stage buffer is a single versioned handle, and
//!   the per-iteration `output` access renames it to a fresh version, so
//!   iterations decouple without any manual buffer management. `inout`
//!   context arguments keep each stage in order across frames, `taskwait
//!   on` the read context detects end-of-stream, and `critical` sections
//!   protect the Picture Info Buffer and Decoded Picture Buffer, which are
//!   hidden from the dependence system.
//! * The **manual** variant ([`run_ompss_manual`]) reproduces Listing 1 of
//!   the paper verbatim: circular buffers (`RenameRing`) of depth `N`
//!   renamed by hand, kept as the comparison baseline for the
//!   `rename_ablation` harness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kernels::h264::{
    decode_sequence, encode_sequence, entropy_decode_frame, generate_video, output_frame,
    parse_header, read_frame, reconstruct_frame, DecodedFrame, DecodedPictureBuffer,
    EncodedFrame, EncodedStream, EntropyContext, FrameHeader, MacroblockSyntax, NalContext,
    OutputContext, PictureInfoBuffer, ReadContext, ReconstructContext, VideoParams,
};
use ompss::{Runtime, RenameRing};
use parking_lot::Mutex;
use threadkit::Pipeline;

/// Parameters of the h264dec benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Video sequence parameters (the stream is generated and encoded from
    /// them).
    pub video: VideoParams,
    /// Depth of the circular buffers / pipeline window (the `N` of
    /// Listing 1).
    pub window: usize,
    /// Size of the PIB/DPB pools.
    pub pool: usize,
}

impl Params {
    /// Small instance for correctness tests.
    pub fn small() -> Self {
        Params {
            video: VideoParams {
                width: 48,
                height: 32,
                frames: 10,
                gop: 4,
                seed: 19,
            },
            window: 4,
            pool: 8,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            video: VideoParams {
                width: 320,
                height: 192,
                frames: 48,
                gop: 8,
                seed: 19,
            },
            window: 6,
            pool: 10,
        }
    }

    /// Generate and encode the input stream.
    pub fn stream(&self) -> EncodedStream {
        let video = generate_video(&self.video);
        encode_sequence(&self.video, &video)
    }
}

fn frames_checksum(frames: &[DecodedFrame]) -> u64 {
    let mut bytes = Vec::new();
    for f in frames {
        bytes.extend_from_slice(&f.frame_num.to_le_bytes());
        bytes.extend_from_slice(&f.checksum().to_le_bytes());
    }
    kernels::image::fletcher64(&bytes)
}

/// Sequential variant: the reference decoder from the kernels crate.
pub fn run_seq(p: &Params) -> u64 {
    let stream = p.stream();
    let decoded = decode_sequence(&stream, p.pool);
    frames_checksum(&decoded)
}

/// Work item flowing through the Pthreads pipeline: fields are filled in by
/// successive stages.
struct PipeItem {
    encoded: EncodedFrame,
    header: Option<FrameHeader>,
    mbs: Vec<MacroblockSyntax>,
    decoded: Option<DecodedFrame>,
}

/// Pthreads-style variant: a thread per pipeline stage, connected by bounded
/// queues of depth `window`. The read stage is the pipeline source (the main
/// thread), the output stage collects frames from the sink in order.
pub fn run_pthreads(p: &Params, _threads: usize) -> u64 {
    let stream = p.stream();
    let mut rc = ReadContext::new(&stream);
    let mut frames = Vec::new();
    while let Some(f) = read_frame(&mut rc) {
        frames.push(PipeItem {
            encoded: f,
            header: None,
            mbs: Vec::new(),
            decoded: None,
        });
    }

    let mut nc = NalContext::new(&stream);
    let pib = Arc::new(Mutex::new(PictureInfoBuffer::new(p.pool)));
    let pib_parse = pib.clone();
    let mut ec = EntropyContext::default();
    let mut rec_ctx = ReconstructContext::default();
    let mut last_decoded: Option<DecodedFrame> = None;
    let dpb = Arc::new(Mutex::new(DecodedPictureBuffer::new(
        p.pool,
        stream.params.width,
        stream.params.height,
    )));
    let dpb_rec = dpb.clone();

    let pipeline = Pipeline::new(p.window)
        .stage("parse", move |mut item: PipeItem| {
            let header = parse_header(&mut nc, &item.encoded);
            // Claim and immediately release a PIB slot, as the real decoder
            // does per frame (the pool bounds the frames in flight).
            let idx = pib_parse.lock().fetch(header).expect("PIB exhausted");
            item.header = Some(header);
            pib_parse.lock().release(idx);
            item
        })
        .stage("entropy", move |mut item: PipeItem| {
            let header = item.header.expect("parse stage ran first");
            item.mbs = entropy_decode_frame(&mut ec, &item.encoded, &header);
            item
        })
        .stage("reconstruct", move |mut item: PipeItem| {
            let header = item.header.expect("parse stage ran first");
            let idx = dpb_rec
                .lock()
                .fetch(header.frame_num)
                .expect("DPB exhausted");
            let decoded =
                reconstruct_frame(&mut rec_ctx, &header, &item.mbs, last_decoded.as_ref());
            dpb_rec.lock().store(idx, decoded.clone());
            last_decoded = Some(decoded.clone());
            item.decoded = Some(decoded);
            dpb_rec.lock().release(idx);
            item
        });
    let (items, _stats) = pipeline.run(frames);

    let mut oc = OutputContext::new();
    for item in items {
        output_frame(&mut oc, item.decoded.expect("reconstruct stage ran"));
    }
    frames_checksum(&oc.emitted)
}

/// Shared decoder state used by the OmpSs variant's tasks (the contexts of
/// Listing 1). The read context carries an EOF flag the main loop polls
/// after `taskwait on (*rc)`.
struct OmpssReadState {
    rc: ReadContext,
    eof: Arc<AtomicBool>,
}

/// OmpSs-style variant using the runtime's automatic renaming: the
/// inter-stage buffers are versioned handles, and every iteration's
/// `output` access renames them to fresh versions — the runtime does what
/// Listing 1 does by hand with circular buffers. The in-flight window is
/// bounded by the runtime's per-handle version bound
/// (`RuntimeConfig::rename_max_versions`) rather than a ring depth.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    decode_ompss(&p.stream(), p.pool, rt)
}

/// Decode-only core of [`run_ompss`], for harnesses that pre-build the
/// stream (stream generation would otherwise dominate the measurement).
pub fn decode_ompss(stream: &EncodedStream, pool: usize, rt: &Runtime) -> u64 {
    let eof = Arc::new(AtomicBool::new(false));

    // Contexts, exactly as in the manual variant: `inout` dependences that
    // serialise each stage across iterations (plain handles — an in-place
    // update chain gains nothing from versioning).
    let rc = rt.data(OmpssReadState {
        rc: ReadContext::new(stream),
        eof: eof.clone(),
    });
    let nc = rt.data(NalContext::new(stream));
    let ec = rt.data(EntropyContext::default());
    let rec = rt.data((ReconstructContext::default(), None::<DecodedFrame>));
    let oc = rt.data(OutputContext::new());

    // The inter-stage buffers: one versioned handle each. `output` accesses
    // rename them per iteration (no RenameRing, no window bookkeeping).
    let frm = rt.versioned_data::<Option<EncodedFrame>>(None);
    let slice = rt.versioned_data::<Option<FrameHeader>>(None);
    let ed = rt.versioned_data(Vec::<MacroblockSyntax>::new());
    let pic = rt.versioned_data::<Option<DecodedFrame>>(None);

    // The hidden buffers, protected by critical sections inside task bodies.
    let pib = Arc::new(Mutex::new(PictureInfoBuffer::new(pool)));
    let dpb = Arc::new(Mutex::new(DecodedPictureBuffer::new(
        pool,
        stream.params.width,
        stream.params.height,
    )));

    while !eof.load(Ordering::SeqCst) {
        // task inout(*rc) output(*frm) — the output renames `frm`.
        {
            let rc = rc.clone();
            let frm = frm.clone();
            rt.task()
                .name("h264_read")
                .inout(&rc)
                .output(&frm)
                .spawn(move |ctx| {
                    let mut state = ctx.write(&rc);
                    let frame = read_frame(&mut state.rc);
                    if frame.is_none() {
                        state.eof.store(true, Ordering::SeqCst);
                    }
                    *ctx.write(&frm) = frame;
                });
        }
        // task inout(*nc) input(*frm) output(*s)
        {
            let nc = nc.clone();
            let frm = frm.clone();
            let slice = slice.clone();
            let pib = pib.clone();
            rt.task()
                .name("h264_parse")
                .inout(&nc)
                .input(&frm)
                .output(&slice)
                .spawn(move |ctx| {
                    let frame = ctx.read(&frm);
                    let Some(frame) = frame.as_ref() else {
                        *ctx.write(&slice) = None;
                        return;
                    };
                    let mut nal = ctx.write(&nc);
                    let header = parse_header(&mut nal, frame);
                    let idx = ctx.critical("pib", || pib.lock().fetch(header));
                    *ctx.write(&slice) = Some(header);
                    if let Some(idx) = idx {
                        ctx.critical("pib", || pib.lock().release(idx));
                    }
                });
        }
        // task inout(*ec) input(*frm, *s) output(*ed_buf)
        {
            let ec = ec.clone();
            let frm = frm.clone();
            let slice = slice.clone();
            let ed = ed.clone();
            rt.task()
                .name("h264_entropy")
                .inout(&ec)
                .input(&frm)
                .input(&slice)
                .output(&ed)
                .spawn(move |ctx| {
                    let frame = ctx.read(&frm);
                    let header = ctx.read(&slice);
                    let (Some(frame), Some(header)) = (frame.as_ref(), header.as_ref()) else {
                        ctx.write(&ed).clear();
                        return;
                    };
                    let mut entropy = ctx.write(&ec);
                    *ctx.write(&ed) = entropy_decode_frame(&mut entropy, frame, header);
                });
        }
        // task inout(*rec) input(*s, *ed_buf) output(*pic)
        {
            let rec = rec.clone();
            let slice = slice.clone();
            let ed = ed.clone();
            let pic = pic.clone();
            let dpb = dpb.clone();
            rt.task()
                .name("h264_reconstruct")
                .inout(&rec)
                .input(&slice)
                .input(&ed)
                .output(&pic)
                .spawn(move |ctx| {
                    let header = ctx.read(&slice);
                    let Some(header) = header.as_ref() else {
                        *ctx.write(&pic) = None;
                        return;
                    };
                    let mbs = ctx.read(&ed);
                    let mut state = ctx.write(&rec);
                    let idx = ctx.critical("dpb", || dpb.lock().fetch(header.frame_num));
                    let (rec_ctx, last) = &mut *state;
                    let decoded = reconstruct_frame(rec_ctx, header, &mbs, last.as_ref());
                    if let Some(idx) = idx {
                        ctx.critical("dpb", || {
                            let mut pool = dpb.lock();
                            pool.store(idx, decoded.clone());
                            pool.release(idx);
                        });
                    }
                    *last = Some(decoded.clone());
                    *ctx.write(&pic) = Some(decoded);
                });
        }
        // task inout(*oc) input(*pic)
        {
            let oc = oc.clone();
            let pic = pic.clone();
            rt.task()
                .name("h264_output")
                .inout(&oc)
                .input(&pic)
                .spawn(move |ctx| {
                    let pic = ctx.read(&pic);
                    if let Some(pic) = pic.as_ref() {
                        let mut out = ctx.write(&oc);
                        output_frame(&mut out, pic.clone());
                    }
                });
        }

        // taskwait on (*rc): only the read must have finished before the
        // EOF condition of the while loop is evaluated.
        rt.taskwait_on(&rc);
    }
    rt.taskwait();
    let emitted = rt.fetch(&oc).emitted;
    frames_checksum(&emitted)
}

/// Captured variant of the frame loop (`h264dec-cap`): the 5-task pipeline
/// iteration is captured once — frame 0 — and every subsequent frame is
/// stamped with `Runtime::replay`. The inter-stage buffers are versioned
/// handles, so each pass re-resolves its clauses and renames as usual
/// (renaming and pre-wiring are mutually exclusive, so this template never
/// freezes); what replay amortises is the spawn path itself: recipes arm
/// recycled slab nodes directly — no builders, no per-task body boxing —
/// and each frame costs one batched gate acquisition and one scheduler
/// wakeup instead of five of each.
pub fn run_ompss_captured(p: &Params, rt: &Runtime) -> u64 {
    decode_ompss_captured(&p.stream(), p.pool, rt)
}

/// Decode-only core of [`run_ompss_captured`], for harnesses that pre-build
/// the stream.
pub fn decode_ompss_captured(stream: &EncodedStream, pool: usize, rt: &Runtime) -> u64 {
    let eof = Arc::new(AtomicBool::new(false));

    let rc = rt.data(OmpssReadState {
        rc: ReadContext::new(stream),
        eof: eof.clone(),
    });
    let nc = rt.data(NalContext::new(stream));
    let ec = rt.data(EntropyContext::default());
    let rec = rt.data((ReconstructContext::default(), None::<DecodedFrame>));
    let oc = rt.data(OutputContext::new());

    let frm = rt.versioned_data::<Option<EncodedFrame>>(None);
    let slice = rt.versioned_data::<Option<FrameHeader>>(None);
    let ed = rt.versioned_data(Vec::<MacroblockSyntax>::new());
    let pic = rt.versioned_data::<Option<DecodedFrame>>(None);

    let pib = Arc::new(Mutex::new(PictureInfoBuffer::new(pool)));
    let dpb = Arc::new(Mutex::new(DecodedPictureBuffer::new(
        pool,
        stream.params.width,
        stream.params.height,
    )));

    // Capture frame 0's pipeline iteration (the tasks run as they record).
    let template = {
        let mut scope = rt.capture();
        {
            let rc = rc.clone();
            let frm = frm.clone();
            scope
                .task()
                .name("h264_read")
                .inout(&rc)
                .output(&frm)
                .spawn(move |ctx| {
                    let mut state = ctx.write(&rc);
                    let frame = read_frame(&mut state.rc);
                    if frame.is_none() {
                        state.eof.store(true, Ordering::SeqCst);
                    }
                    *ctx.write(&frm) = frame;
                });
        }
        {
            let nc = nc.clone();
            let frm = frm.clone();
            let slice = slice.clone();
            let pib = pib.clone();
            scope
                .task()
                .name("h264_parse")
                .inout(&nc)
                .input(&frm)
                .output(&slice)
                .spawn(move |ctx| {
                    let frame = ctx.read(&frm);
                    let Some(frame) = frame.as_ref() else {
                        *ctx.write(&slice) = None;
                        return;
                    };
                    let mut nal = ctx.write(&nc);
                    let header = parse_header(&mut nal, frame);
                    let idx = ctx.critical("pib", || pib.lock().fetch(header));
                    *ctx.write(&slice) = Some(header);
                    if let Some(idx) = idx {
                        ctx.critical("pib", || pib.lock().release(idx));
                    }
                });
        }
        {
            let ec = ec.clone();
            let frm = frm.clone();
            let slice = slice.clone();
            let ed = ed.clone();
            scope
                .task()
                .name("h264_entropy")
                .inout(&ec)
                .input(&frm)
                .input(&slice)
                .output(&ed)
                .spawn(move |ctx| {
                    let frame = ctx.read(&frm);
                    let header = ctx.read(&slice);
                    let (Some(frame), Some(header)) = (frame.as_ref(), header.as_ref()) else {
                        ctx.write(&ed).clear();
                        return;
                    };
                    let mut entropy = ctx.write(&ec);
                    *ctx.write(&ed) = entropy_decode_frame(&mut entropy, frame, header);
                });
        }
        {
            let rec = rec.clone();
            let slice = slice.clone();
            let ed = ed.clone();
            let pic = pic.clone();
            let dpb = dpb.clone();
            scope
                .task()
                .name("h264_reconstruct")
                .inout(&rec)
                .input(&slice)
                .input(&ed)
                .output(&pic)
                .spawn(move |ctx| {
                    let header = ctx.read(&slice);
                    let Some(header) = header.as_ref() else {
                        *ctx.write(&pic) = None;
                        return;
                    };
                    let mbs = ctx.read(&ed);
                    let mut state = ctx.write(&rec);
                    let idx = ctx.critical("dpb", || dpb.lock().fetch(header.frame_num));
                    let (rec_ctx, last) = &mut *state;
                    let decoded = reconstruct_frame(rec_ctx, header, &mbs, last.as_ref());
                    if let Some(idx) = idx {
                        ctx.critical("dpb", || {
                            let mut pool = dpb.lock();
                            pool.store(idx, decoded.clone());
                            pool.release(idx);
                        });
                    }
                    *last = Some(decoded.clone());
                    *ctx.write(&pic) = Some(decoded);
                });
        }
        {
            let oc = oc.clone();
            let pic = pic.clone();
            scope
                .task()
                .name("h264_output")
                .inout(&oc)
                .input(&pic)
                .spawn(move |ctx| {
                    let pic = ctx.read(&pic);
                    if let Some(pic) = pic.as_ref() {
                        let mut out = ctx.write(&oc);
                        output_frame(&mut out, pic.clone());
                    }
                });
        }
        scope.finish()
    };

    // Frames 1..EOF: one replay per frame, exactly the fresh-spawn loop
    // with the five spawns collapsed into one stamp.
    let bindings = ompss::ReplayBindings::new();
    rt.taskwait_on(&rc);
    while !eof.load(Ordering::SeqCst) {
        rt.replay(&template, &bindings);
        rt.taskwait_on(&rc);
    }
    rt.taskwait();
    let emitted = rt.fetch(&oc).emitted;
    frames_checksum(&emitted)
}

/// OmpSs-style variant following Listing 1 verbatim: manual renaming with
/// circular buffers of depth `p.window`. Kept as the baseline the
/// `rename_ablation` harness compares automatic renaming against.
pub fn run_ompss_manual(p: &Params, rt: &Runtime) -> u64 {
    decode_ompss_manual(&p.stream(), p.window, p.pool, rt)
}

/// Decode-only core of [`run_ompss_manual`], for harnesses that pre-build
/// the stream.
pub fn decode_ompss_manual(stream: &EncodedStream, window: usize, pool: usize, rt: &Runtime) -> u64 {
    let n = window;
    let eof = Arc::new(AtomicBool::new(false));

    // Contexts (the `rc`, `nc`, `ec`, … of Listing 1), each an `inout`
    // dependence that serialises its stage across iterations.
    let rc = rt.data(OmpssReadState {
        rc: ReadContext::new(stream),
        eof: eof.clone(),
    });
    let nc = rt.data(NalContext::new(stream));
    let ec = rt.data(EntropyContext::default());
    let rec = rt.data((ReconstructContext::default(), None::<DecodedFrame>));
    let oc = rt.data(OutputContext::new());

    // Circular buffers of depth N (the manual renaming of Listing 1).
    let frm: RenameRing<Option<EncodedFrame>> = RenameRing::with_default(n);
    let slices: RenameRing<Option<FrameHeader>> = RenameRing::with_default(n);
    let ed_bufs: RenameRing<Vec<MacroblockSyntax>> = RenameRing::with_default(n);
    let pics: RenameRing<Option<DecodedFrame>> = RenameRing::with_default(n);

    // The hidden buffers, protected by critical sections inside task bodies.
    let pib = Arc::new(Mutex::new(PictureInfoBuffer::new(pool)));
    let dpb = Arc::new(Mutex::new(DecodedPictureBuffer::new(
        pool,
        stream.params.width,
        stream.params.height,
    )));

    let mut k = 0usize;
    while !eof.load(Ordering::SeqCst) {
        let frm_k = frm.slot(k).clone();
        let slice_k = slices.slot(k).clone();
        let ed_k = ed_bufs.slot(k).clone();
        let pic_k = pics.slot(k).clone();

        // #pragma omp task inout(*rc) output(*frm)
        {
            let rc = rc.clone();
            let frm_k = frm_k.clone();
            rt.task()
                .name("h264_read")
                .inout(&rc)
                .output(&frm_k)
                .spawn(move |ctx| {
                    let mut state = ctx.write(&rc);
                    let frame = read_frame(&mut state.rc);
                    if frame.is_none() {
                        state.eof.store(true, Ordering::SeqCst);
                    }
                    *ctx.write(&frm_k) = frame;
                });
        }
        // #pragma omp task inout(*nc) input(*frm) output(*s)
        {
            let nc = nc.clone();
            let frm_k = frm_k.clone();
            let slice_k = slice_k.clone();
            let pib = pib.clone();
            rt.task()
                .name("h264_parse")
                .inout(&nc)
                .input(&frm_k)
                .output(&slice_k)
                .spawn(move |ctx| {
                    let frame = ctx.read(&frm_k);
                    let Some(frame) = frame.as_ref() else {
                        *ctx.write(&slice_k) = None;
                        return;
                    };
                    let mut nal = ctx.write(&nc);
                    let header = parse_header(&mut nal, frame);
                    // Fetch/release of the hidden Picture Info Buffer is
                    // protected by a critical section, not by dependences.
                    let idx = ctx.critical("pib", || pib.lock().fetch(header));
                    *ctx.write(&slice_k) = Some(header);
                    if let Some(idx) = idx {
                        ctx.critical("pib", || pib.lock().release(idx));
                    }
                });
        }
        // #pragma omp task inout(*ec) input(*frm, *s) output(*ed_buf)
        {
            let ec = ec.clone();
            let frm_k = frm_k.clone();
            let slice_k = slice_k.clone();
            let ed_k = ed_k.clone();
            rt.task()
                .name("h264_entropy")
                .inout(&ec)
                .input(&frm_k)
                .input(&slice_k)
                .output(&ed_k)
                .spawn(move |ctx| {
                    let frame = ctx.read(&frm_k);
                    let header = ctx.read(&slice_k);
                    let (Some(frame), Some(header)) = (frame.as_ref(), header.as_ref()) else {
                        ctx.write(&ed_k).clear();
                        return;
                    };
                    let mut entropy = ctx.write(&ec);
                    *ctx.write(&ed_k) = entropy_decode_frame(&mut entropy, frame, header);
                });
        }
        // #pragma omp task inout(*rec) input(*s, *ed_buf) output(*pic)
        {
            let rec = rec.clone();
            let slice_k = slice_k.clone();
            let ed_k = ed_k.clone();
            let pic_k = pic_k.clone();
            let dpb = dpb.clone();
            rt.task()
                .name("h264_reconstruct")
                .inout(&rec)
                .input(&slice_k)
                .input(&ed_k)
                .output(&pic_k)
                .spawn(move |ctx| {
                    let header = ctx.read(&slice_k);
                    let Some(header) = header.as_ref() else {
                        *ctx.write(&pic_k) = None;
                        return;
                    };
                    let mbs = ctx.read(&ed_k);
                    let mut state = ctx.write(&rec);
                    let idx = ctx.critical("dpb", || dpb.lock().fetch(header.frame_num));
                    let (rec_ctx, last) = &mut *state;
                    let decoded = reconstruct_frame(rec_ctx, header, &mbs, last.as_ref());
                    if let Some(idx) = idx {
                        ctx.critical("dpb", || {
                            let mut pool = dpb.lock();
                            pool.store(idx, decoded.clone());
                            pool.release(idx);
                        });
                    }
                    *last = Some(decoded.clone());
                    *ctx.write(&pic_k) = Some(decoded);
                });
        }
        // #pragma omp task inout(*oc) input(*pic)
        {
            let oc = oc.clone();
            let pic_k = pic_k.clone();
            rt.task()
                .name("h264_output")
                .inout(&oc)
                .input(&pic_k)
                .spawn(move |ctx| {
                    let pic = ctx.read(&pic_k);
                    if let Some(pic) = pic.as_ref() {
                        let mut out = ctx.write(&oc);
                        output_frame(&mut out, pic.clone());
                    }
                });
        }

        k += 1;
        // #pragma omp taskwait on (*rc): only the read must have finished
        // before the EOF condition of the while loop is evaluated.
        rt.taskwait_on(&rc);
    }
    rt.taskwait();
    let emitted = rt.fetch(&oc).emitted;
    frames_checksum(&emitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 2), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq, "automatic renaming variant");
        assert_eq!(run_ompss_manual(&p, &rt), seq, "manual RenameRing variant");
    }

    #[test]
    fn captured_frame_loop_matches_and_stays_unfrozen() {
        let p = Params::small();
        let seq = run_seq(&p);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss_captured(&p, &rt), seq);
        // The pipeline buffers are versioned, so every replayed frame
        // re-resolved (and renamed) — the captured loop must not have taken
        // the pre-wired path, which would bake away the renaming.
        let stats = rt.stats();
        assert!(
            (stats.renames + stats.renames_elided) as usize >= p.video.frames,
            "each replayed frame still renames (or elides on) the buffers, \
             got {} renames + {} elided",
            stats.renames,
            stats.renames_elided
        );
    }

    #[test]
    fn automatic_renaming_actually_renames() {
        let p = Params::small();
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        let seq = run_seq(&p);
        assert_eq!(run_ompss(&p, &rt), seq);
        let stats = rt.stats();
        // Every frame rebinds the inter-stage buffers: either to a freshly
        // renamed version (a consumer still held the old one) or — when the
        // previous round had fully retired — by eliding the rename and
        // overwriting in place. Both decouple the iterations.
        assert!(
            (stats.renames + stats.renames_elided) as usize >= p.video.frames,
            "each frame renames (or elides on) the inter-stage buffers, got {} renames + {} elided",
            stats.renames,
            stats.renames_elided
        );
    }

    #[test]
    fn elision_disabled_renames_every_rebinding() {
        // With first-write elision off, every decoupled `output` rebinding
        // must allocate (or recycle) a version — the pre-elision behaviour.
        let p = Params::small();
        let rt = Runtime::new(
            RuntimeConfig::default()
                .with_workers(2)
                .with_rename_elision(false),
        );
        let seq = run_seq(&p);
        assert_eq!(run_ompss(&p, &rt), seq);
        let stats = rt.stats();
        assert_eq!(stats.renames_elided, 0);
        assert!(
            stats.renames as usize >= p.video.frames,
            "each frame renames the inter-stage buffers, got {} renames",
            stats.renames
        );
    }

    #[test]
    fn renaming_disabled_still_decodes_correctly() {
        // With renaming off the versioned buffers serialise on WAR/WAW —
        // slower, but the output must be identical.
        let p = Params::small();
        let seq = run_seq(&p);
        let rt = Runtime::new(
            RuntimeConfig::default()
                .with_workers(2)
                .with_renaming(false),
        );
        assert_eq!(run_ompss(&p, &rt), seq);
        assert_eq!(rt.stats().renames, 0);
    }

    #[test]
    fn tiny_rename_budget_falls_back_but_stays_correct() {
        let p = Params::small();
        let seq = run_seq(&p);
        let rt = Runtime::new(
            RuntimeConfig::default()
                .with_workers(2)
                .with_rename_memory_cap(64)
                .with_rename_pool_depth(0),
        );
        assert_eq!(run_ompss(&p, &rt), seq);
    }

    #[test]
    fn window_size_does_not_change_the_output() {
        let mut p = Params::small();
        let seq = run_seq(&p);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(3));
        for window in [1, 2, 6] {
            p.window = window;
            assert_eq!(run_ompss_manual(&p, &rt), seq, "window {window}");
        }
    }

    #[test]
    fn decoded_output_matches_the_source_video() {
        // The codec is lossless, so the decoded frames equal the generated
        // ones — a stronger check than cross-variant agreement.
        let p = Params::small();
        let stream = p.stream();
        let source = generate_video(&p.video);
        let decoded = decode_sequence(&stream, p.pool);
        assert_eq!(decoded.len(), source.len());
        for (d, s) in decoded.iter().zip(source.iter()) {
            assert_eq!(d.pixels, s.pixels);
        }
    }
}

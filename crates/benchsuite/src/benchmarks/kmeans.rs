//! `kmeans`: Lloyd's algorithm — a parallel assign phase and a reduction per
//! iteration, separated by barriers.

use std::sync::Arc;

use kernels::kmeans::{
    assign_range, init_centroids, partial_sums_range, reduce_centroids,
};
use kernels::workload::clustered_points;
use ompss::Runtime;
use threadkit::partition::block_range;

/// Parameters of the kmeans benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Number of points.
    pub points: usize,
    /// Dimensionality of each point.
    pub dim: usize,
    /// Number of clusters.
    pub k: usize,
    /// Number of Lloyd iterations.
    pub iterations: usize,
    /// Points per work unit.
    pub chunk: usize,
    /// Seed of the synthetic points.
    pub seed: u64,
}

impl Params {
    /// Small instance for correctness tests. Sized so each task does a few
    /// microseconds of real work: the previous 240-point/40-chunk instance
    /// spawned 6 ~1µs tasks per iteration, so per-task runtime overhead —
    /// not the kernel — dominated the OmpSs timing (the "over-fine
    /// chunking" half of the recorded speedup anomaly). Four chunks keeps a
    /// genuinely parallel assign phase for the multi-thread correctness
    /// tests; all three variants share the decomposition, so checksums stay
    /// comparable.
    pub fn small() -> Self {
        Params {
            points: 960,
            dim: 3,
            k: 4,
            iterations: 5,
            chunk: 240,
            seed: 21,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            points: 20_000,
            dim: 8,
            k: 16,
            iterations: 12,
            chunk: 1_000,
            seed: 21,
        }
    }

    /// The input points (flattened).
    pub fn input(&self) -> Vec<f32> {
        clustered_points(self.points, self.dim, self.k, self.seed)
    }
}

fn centroids_checksum(centroids: &[f32], labels: &[u32]) -> u64 {
    let mut bytes = Vec::with_capacity(centroids.len() * 4 + labels.len() * 4);
    for c in centroids {
        bytes.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    for l in labels {
        bytes.extend_from_slice(&l.to_le_bytes());
    }
    kernels::image::fletcher64(&bytes)
}

/// The chunk ranges all three variants use for the partial-sum reduction.
/// Keeping the decomposition identical makes the floating-point reduction
/// order — and therefore the checksums — bit-identical across variants.
fn chunk_ranges(p: &Params) -> Vec<std::ops::Range<usize>> {
    threadkit::partition::chunk_ranges(p.points, p.chunk)
}

/// Sequential variant (runs exactly `iterations` Lloyd steps, matching the
/// parallel variants' fixed iteration count and reduction order).
pub fn run_seq(p: &Params) -> u64 {
    let points = p.input();
    let ranges = chunk_ranges(p);
    let mut centroids = init_centroids(&points, p.dim, p.k);
    let mut labels = vec![0u32; p.points];
    for _ in 0..p.iterations {
        let mut partials = Vec::with_capacity(ranges.len());
        for range in &ranges {
            assign_range(
                &points,
                &centroids,
                p.dim,
                range.clone(),
                &mut labels[range.clone()],
            );
            partials.push(partial_sums_range(
                &points,
                &labels[range.clone()],
                p.dim,
                p.k,
                range.clone(),
            ));
        }
        centroids = reduce_centroids(&partials, &centroids, p.dim, p.k);
    }
    centroids_checksum(&centroids, &labels)
}

/// Pthreads-style variant: every iteration forks the assign phase over the
/// threads (block partition of the chunks), joins, and reduces the partial
/// sums on the main thread — the fork/join + barrier structure of the
/// original code.
pub fn run_pthreads(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let points = Arc::new(p.input());
    let ranges = chunk_ranges(p);
    let n_chunks = ranges.len();
    let mut centroids = init_centroids(&points, p.dim, p.k);
    let mut labels = vec![0u32; p.points];
    let mut partials: Vec<(Vec<f64>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); n_chunks];
    for _ in 0..p.iterations {
        {
            // Block-partition the chunks over the threads; hand each thread
            // the label and partial slots of its chunks.
            let mut label_rest: &mut [u32] = &mut labels;
            let mut partial_rest: &mut [(Vec<f64>, Vec<u64>)] = &mut partials;
            let mut next_chunk = 0usize;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let my_chunks = block_range(n_chunks, threads, t);
                    let my_ranges: Vec<std::ops::Range<usize>> =
                        ranges[my_chunks.clone()].to_vec();
                    let my_points: usize = my_ranges.iter().map(|r| r.len()).sum();
                    let (my_labels, lrest) = label_rest.split_at_mut(my_points);
                    label_rest = lrest;
                    let (my_partials, prest) = partial_rest.split_at_mut(my_chunks.len());
                    partial_rest = prest;
                    debug_assert_eq!(my_chunks.start, next_chunk);
                    next_chunk += my_chunks.len();
                    let points = points.clone();
                    let centroids = centroids.clone();
                    let dim = p.dim;
                    let k = p.k;
                    scope.spawn(move || {
                        let mut offset = 0usize;
                        for (ci, range) in my_ranges.iter().enumerate() {
                            let lab = &mut my_labels[offset..offset + range.len()];
                            offset += range.len();
                            assign_range(&points, &centroids, dim, range.clone(), lab);
                            my_partials[ci] =
                                partial_sums_range(&points, lab, dim, k, range.clone());
                        }
                    });
                }
            });
        }
        centroids = reduce_centroids(&partials, &centroids, p.dim, p.k);
    }
    centroids_checksum(&centroids, &labels)
}

/// OmpSs-style variant: one task per point chunk computes labels and partial
/// sums; a reduction task (depending on all the partials through its
/// `input` clauses) produces the new centroids. Iterations are separated by
/// dataflow alone — each assign task's `input(centroids)` takes a RAW edge
/// on the previous reduction's `inout(centroids)` — so the main thread
/// never blocks on a per-iteration barrier (a single `taskwait` before the
/// fetch suffices). The earlier per-iteration `taskwait` made the paper's
/// spin-polling barrier part of every iteration's critical path, which on a
/// single-core host could stall each iteration for a scheduling quantum.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    let points: Arc<Vec<f32>> = Arc::new(p.input());
    let n_chunks = p.points.div_ceil(p.chunk);
    let labels = rt.partitioned(vec![0u32; p.points], p.chunk);
    // One partial-sum slot per chunk, plus a handle for the shared centroids.
    let partials = rt.partitioned(
        vec![(Vec::<f64>::new(), Vec::<u64>::new()); n_chunks],
        1,
    );
    let centroids = rt.data(init_centroids(&points, p.dim, p.k));

    for _ in 0..p.iterations {
        for i in 0..n_chunks {
            let label_chunk = labels.chunk(i);
            let partial_chunk = partials.chunk(i);
            let centroids = centroids.clone();
            let points = points.clone();
            let dim = p.dim;
            let k = p.k;
            let chunk = p.chunk;
            let total = p.points;
            rt.task()
                .name("kmeans_assign")
                .input(&centroids)
                .output(&label_chunk)
                .output(&partial_chunk)
                .spawn(move |ctx| {
                    let cent = ctx.read(&centroids);
                    let mut lab = ctx.write_chunk(&label_chunk);
                    let mut part = ctx.write_chunk(&partial_chunk);
                    let range = i * chunk..((i + 1) * chunk).min(total);
                    assign_range(&points, &cent, dim, range.clone(), &mut lab);
                    part[0] = partial_sums_range(&points, &lab, dim, k, range);
                });
        }
        // Reduction task: reads every partial slot, updates the centroids.
        {
            let all_partials = partials.whole();
            let centroids = centroids.clone();
            let dim = p.dim;
            let k = p.k;
            rt.task()
                .name("kmeans_reduce")
                .input(&all_partials)
                .inout(&centroids)
                .spawn(move |ctx| {
                    let parts = ctx.read_whole(&all_partials);
                    let mut cent = ctx.write(&centroids);
                    let new = reduce_centroids(&parts, &cent, dim, k);
                    *cent = new;
                });
        }
    }
    rt.taskwait();
    let final_centroids = rt.fetch(&centroids);
    let final_labels = rt.into_vec(labels);
    centroids_checksum(&final_centroids, &final_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::kmeans::kmeans_seq;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 1), seq);
        assert_eq!(run_pthreads(&p, 3), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq);
    }

    #[test]
    fn fixed_iterations_match_reference_kernel() {
        // With enough iterations to converge, the fixed-iteration driver
        // reaches the same labels as the library's converging driver.
        let p = Params {
            iterations: 30,
            ..Params::small()
        };
        let points = p.input();
        let reference = kmeans_seq(&points, p.dim, p.k, 30);
        let mut centroids = init_centroids(&points, p.dim, p.k);
        let mut labels = vec![0u32; p.points];
        for _ in 0..p.iterations {
            assign_range(&points, &centroids, p.dim, 0..p.points, &mut labels);
            let partial = partial_sums_range(&points, &labels, p.dim, p.k, 0..p.points);
            centroids = reduce_centroids(&[partial], &centroids, p.dim, p.k);
        }
        assert_eq!(labels, reference.labels);
    }
}

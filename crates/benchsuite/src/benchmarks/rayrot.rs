//! `ray-rot`: the output of the c-ray kernel is the input of the rotate
//! kernel (a fused producer→consumer workload).
//!
//! In the OmpSs variant the rotate tasks simply declare an `input` access on
//! the rendered image and an `output` access on their band of the rotated
//! image; the runtime chains them behind the render tasks without any
//! explicit barrier. The Pthreads variant renders everything, joins, then
//! rotates everything — the fork/join structure manual threading naturally
//! uses.

use std::sync::Arc;

use kernels::cray::{render_scanline, Scene};
use kernels::image::ImageRgb;
use kernels::rotate::rotate_rows;
use ompss::Runtime;
use threadkit::partition::block_range;

/// Parameters of the ray-rot benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of spheres in the rendered scene.
    pub spheres: usize,
    /// Rotation angle in radians.
    pub angle: f64,
    /// Output rows per rotate work unit.
    pub band_rows: usize,
}

impl Params {
    /// Small instance for correctness tests.
    pub fn small() -> Self {
        Params {
            width: 48,
            height: 32,
            spheres: 5,
            angle: 0.6,
            band_rows: 4,
        }
    }

    /// Larger instance for timing runs.
    pub fn large() -> Self {
        Params {
            width: 256,
            height: 192,
            spheres: 20,
            angle: 0.6,
            band_rows: 8,
        }
    }
}

/// Sequential variant.
pub fn run_seq(p: &Params) -> u64 {
    let scene = Scene::demo(p.spheres);
    let rendered = kernels::cray::render(&scene, p.width, p.height);
    let rotated = kernels::rotate::rotate(&rendered, p.angle);
    rotated.checksum()
}

/// Pthreads-style variant: render phase (cyclic scanlines), implicit join,
/// rotate phase (block bands).
pub fn run_pthreads(p: &Params, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    let scene = Scene::demo(p.spheres);
    let (width, height) = (p.width, p.height);
    // Phase 1: render.
    let mut rendered = ImageRgb::new(width, height);
    {
        let rows: Vec<(usize, &mut [u8])> =
            rendered.data.chunks_mut(3 * width).enumerate().collect();
        let mut per_thread: Vec<Vec<(usize, &mut [u8])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (y, row) in rows {
            per_thread[y % threads].push((y, row));
        }
        let scene = &scene;
        std::thread::scope(|scope| {
            for mine in per_thread {
                scope.spawn(move || {
                    for (y, row) in mine {
                        render_scanline(scene, width, height, y, row);
                    }
                });
            }
        });
    }
    // Phase 2: rotate.
    let mut rotated = vec![0u8; 3 * width * height];
    {
        let row_bytes = 3 * width;
        let mut rest: &mut [u8] = &mut rotated;
        let mut bands = Vec::new();
        for t in 0..threads {
            let rows = block_range(height, threads, t);
            let (band, tail) = rest.split_at_mut(rows.len() * row_bytes);
            rest = tail;
            bands.push((rows, band));
        }
        let src = &rendered;
        let angle = p.angle;
        std::thread::scope(|scope| {
            for (rows, band) in bands {
                scope.spawn(move || {
                    if !rows.is_empty() {
                        rotate_rows(src, angle, rows, band);
                    }
                });
            }
        });
    }
    ImageRgb::from_data(width, height, rotated).checksum()
}

/// OmpSs-style variant: render tasks produce the image scanline by scanline;
/// rotate tasks consume the whole rendered image and produce their own band.
/// No barrier separates the two kernels — the dependences do.
pub fn run_ompss(p: &Params, rt: &Runtime) -> u64 {
    let scene = Arc::new(Scene::demo(p.spheres));
    let (width, height) = (p.width, p.height);
    let rendered = rt.partitioned(vec![0u8; 3 * width * height], 3 * width);
    let rotated = rt.partitioned(vec![0u8; 3 * width * height], 3 * width * p.band_rows);

    // Producer tasks: one per scanline.
    for y in 0..height {
        let chunk = rendered.chunk(y);
        let scene = scene.clone();
        rt.task()
            .name("rayrot_render")
            .output(&chunk)
            .spawn(move |ctx| {
                let mut row = ctx.write_chunk(&chunk);
                render_scanline(&scene, width, height, y, &mut row);
            });
    }
    // Consumer tasks: one per output band, reading the whole rendered image.
    let whole_rendered = rendered.whole();
    let band_rows = p.band_rows;
    let angle = p.angle;
    for (i, out_chunk) in rotated.chunk_handles().enumerate() {
        let whole = whole_rendered.clone();
        rt.task()
            .name("rayrot_rotate")
            .input(&whole)
            .output(&out_chunk)
            .spawn(move |ctx| {
                let src_data = ctx.read_whole(&whole);
                let src = ImageRgb {
                    width,
                    height,
                    data: src_data.to_vec(),
                };
                let mut band = ctx.write_chunk(&out_chunk);
                let start = i * band_rows;
                let end = (start + band_rows).min(height);
                rotate_rows(&src, angle, start..end, &mut band);
            });
    }
    rt.taskwait();
    drop(whole_rendered);
    let data = rt.into_vec(rotated);
    ImageRgb::from_data(width, height, data).checksum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss::RuntimeConfig;

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let seq = run_seq(&p);
        assert_eq!(run_pthreads(&p, 1), seq);
        assert_eq!(run_pthreads(&p, 3), seq);
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        assert_eq!(run_ompss(&p, &rt), seq);
    }
}

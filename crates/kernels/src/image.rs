//! Image containers shared by the image-processing benchmarks.

/// An 8-bit interleaved RGB image (3 bytes per pixel, row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageRgb {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Interleaved RGB samples, `3 * width * height` bytes.
    pub data: Vec<u8>,
}

impl ImageRgb {
    /// Create a black image.
    pub fn new(width: usize, height: usize) -> Self {
        ImageRgb {
            width,
            height,
            data: vec![0; 3 * width * height],
        }
    }

    /// Create an image from existing interleaved data.
    ///
    /// # Panics
    /// Panics if `data.len() != 3 * width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), 3 * width * height, "RGB data size mismatch");
        ImageRgb {
            width,
            height,
            data,
        }
    }

    /// Number of pixels.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// The RGB triple at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let i = 3 * (y * self.width + x);
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Set the RGB triple at `(x, y)`.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        let i = 3 * (y * self.width + x);
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Byte range of row `y` within `data` (used to partition by scanline).
    pub fn row_range(&self, y: usize) -> std::ops::Range<usize> {
        let w = 3 * self.width;
        y * w..(y + 1) * w
    }

    /// A simple order-dependent checksum used to compare outputs across
    /// benchmark variants.
    pub fn checksum(&self) -> u64 {
        fletcher64(&self.data)
    }
}

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageGray {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// One byte per pixel, row-major.
    pub data: Vec<u8>,
}

impl ImageGray {
    /// Create a black image.
    pub fn new(width: usize, height: usize) -> Self {
        ImageGray {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// The sample at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Set the sample at `(x, y)`.
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x] = v;
    }

    /// Order-dependent checksum of the samples.
    pub fn checksum(&self) -> u64 {
        fletcher64(&self.data)
    }
}

/// An 8-bit interleaved CMYK image (4 bytes per pixel, row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageCmyk {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Interleaved CMYK samples, `4 * width * height` bytes.
    pub data: Vec<u8>,
}

impl ImageCmyk {
    /// Create an all-zero (white) image.
    pub fn new(width: usize, height: usize) -> Self {
        ImageCmyk {
            width,
            height,
            data: vec![0; 4 * width * height],
        }
    }

    /// The CMYK quadruple at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> [u8; 4] {
        let i = 4 * (y * self.width + x);
        [
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        ]
    }

    /// Byte range of row `y` within `data`.
    pub fn row_range(&self, y: usize) -> std::ops::Range<usize> {
        let w = 4 * self.width;
        y * w..(y + 1) * w
    }

    /// Order-dependent checksum of the samples.
    pub fn checksum(&self) -> u64 {
        fletcher64(&self.data)
    }
}

/// Fletcher-style 64-bit checksum, order dependent, used to compare benchmark
/// outputs for equality without storing whole images.
pub fn fletcher64(data: &[u8]) -> u64 {
    let mut a: u64 = 1;
    let mut b: u64 = 0;
    for &byte in data {
        a = (a + byte as u64) % 0xFFFF_FFFB;
        b = (b + a) % 0xFFFF_FFFB;
    }
    (b << 32) | a
}

/// Peak signal-to-noise ratio between two byte buffers (dB). Returns
/// `f64::INFINITY` for identical buffers.
///
/// # Panics
/// Panics if the buffers differ in length or are empty.
pub fn psnr(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "PSNR requires equal-length buffers");
    assert!(!a.is_empty(), "PSNR of empty buffers is undefined");
    let mse: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rgb_get_set_roundtrip() {
        let mut img = ImageRgb::new(4, 3);
        img.set(2, 1, [10, 20, 30]);
        assert_eq!(img.get(2, 1), [10, 20, 30]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
        assert_eq!(img.pixels(), 12);
    }

    #[test]
    fn rgb_row_range_is_contiguous() {
        let img = ImageRgb::new(5, 4);
        assert_eq!(img.row_range(0), 0..15);
        assert_eq!(img.row_range(3), 45..60);
    }

    #[test]
    #[should_panic(expected = "RGB data size mismatch")]
    fn rgb_from_data_size_mismatch_panics() {
        let _ = ImageRgb::from_data(2, 2, vec![0; 5]);
    }

    #[test]
    fn gray_get_set() {
        let mut img = ImageGray::new(3, 3);
        img.set(1, 2, 200);
        assert_eq!(img.get(1, 2), 200);
    }

    #[test]
    fn cmyk_layout() {
        let img = ImageCmyk::new(3, 2);
        assert_eq!(img.data.len(), 24);
        assert_eq!(img.get(0, 0), [0, 0, 0, 0]);
        assert_eq!(img.row_range(1), 12..24);
    }

    #[test]
    fn checksum_detects_changes() {
        let mut img = ImageRgb::new(8, 8);
        let c0 = img.checksum();
        img.set(3, 3, [1, 0, 0]);
        assert_ne!(c0, img.checksum());
    }

    #[test]
    fn checksum_is_order_dependent() {
        assert_ne!(fletcher64(&[1, 2, 3]), fletcher64(&[3, 2, 1]));
        assert_eq!(fletcher64(&[]), 1);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let a = vec![7u8; 100];
        assert!(psnr(&a, &a).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = vec![100u8; 1000];
        let mut small_noise = a.clone();
        small_noise[0] = 101;
        let mut big_noise = a.clone();
        for v in big_noise.iter_mut() {
            *v = 0;
        }
        assert!(psnr(&a, &small_noise) > psnr(&a, &big_noise));
        assert!(psnr(&a, &big_noise) > 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn psnr_length_mismatch_panics() {
        let _ = psnr(&[1, 2], &[1, 2, 3]);
    }

    proptest! {
        /// Set-then-get returns the written value for every in-bounds pixel.
        #[test]
        fn prop_rgb_set_get(w in 1usize..20, h in 1usize..20, x in 0usize..20, y in 0usize..20,
                            rgb in proptest::array::uniform3(0u8..)) {
            prop_assume!(x < w && y < h);
            let mut img = ImageRgb::new(w, h);
            img.set(x, y, rgb);
            prop_assert_eq!(img.get(x, y), rgb);
        }

        /// PSNR is symmetric.
        #[test]
        fn prop_psnr_symmetric(a in proptest::collection::vec(0u8.., 1..200),
                               b_seed in 0u8..) {
            let b: Vec<u8> = a.iter().map(|v| v.wrapping_add(b_seed)).collect();
            let p1 = psnr(&a, &b);
            let p2 = psnr(&b, &a);
            if p1.is_finite() {
                prop_assert!((p1 - p2).abs() < 1e-9);
            } else {
                prop_assert!(p2.is_infinite());
            }
        }
    }
}

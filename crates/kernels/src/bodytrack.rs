//! `bodytrack`: an annealed particle filter over a synthetic body model.
//!
//! PARSEC's bodytrack tracks a human body across camera frames with an
//! annealed particle filter: per frame, several annealing layers each
//! (1) evaluate the likelihood of every particle against the observation —
//! the expensive, embarrassingly parallel phase — then (2) resample the
//! particle set. The paper's suite parallelises the likelihood evaluation
//! over particle ranges with a barrier before resampling.
//!
//! Here the "body" is a vector of joint angles, the observation is a noisy
//! measurement of those angles, and the likelihood is a Gaussian in the
//! angle error. The structure (layers → weight evaluation over particle
//! ranges → weighted resampling) is identical to the original.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A particle: one hypothesis of the body pose (joint angles).
pub type Particle = Vec<f32>;

/// Configuration of the particle filter.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterConfig {
    /// Number of particles.
    pub particles: usize,
    /// Number of joints in the body model.
    pub joints: usize,
    /// Annealing layers per frame.
    pub layers: usize,
    /// Process-noise standard deviation of the first layer; halved each
    /// subsequent layer (the "annealing").
    pub base_noise: f32,
    /// Likelihood sharpness (inverse variance of the observation model).
    pub beta: f32,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            particles: 128,
            joints: 8,
            layers: 3,
            base_noise: 0.12,
            beta: 40.0,
        }
    }
}

/// Evaluate the (unnormalised) likelihood weights of `particles[range]`
/// against `observation`, writing them into `weights[range]`. This is the
/// parallel work unit.
///
/// # Panics
/// Panics if slice lengths are inconsistent.
pub fn evaluate_weights_range(
    particles: &[Particle],
    observation: &[f32],
    beta: f32,
    range: std::ops::Range<usize>,
    weights: &mut [f32],
) {
    assert_eq!(weights.len(), range.len(), "weights slice must match range");
    for (wi, p) in range.enumerate() {
        let particle = &particles[p];
        assert_eq!(particle.len(), observation.len(), "joint count mismatch");
        let err: f32 = particle
            .iter()
            .zip(observation.iter())
            .map(|(a, o)| {
                let d = a - o;
                d * d
            })
            .sum();
        weights[wi] = (-beta * err / observation.len() as f32).exp();
    }
}

/// Systematic resampling: draw `particles.len()` new particles proportionally
/// to `weights`, then perturb each joint with Gaussian-ish noise of standard
/// deviation `noise`. Deterministic given the RNG state.
pub fn resample(
    particles: &[Particle],
    weights: &[f32],
    noise: f32,
    rng: &mut ChaCha8Rng,
) -> Vec<Particle> {
    assert_eq!(particles.len(), weights.len());
    assert!(!particles.is_empty(), "need at least one particle");
    let total: f64 = weights.iter().map(|&w| w as f64).sum();
    let n = particles.len();
    let mut out = Vec::with_capacity(n);
    if total <= 0.0 || !total.is_finite() {
        // Degenerate weights: keep the particles, just add noise.
        for p in particles {
            out.push(perturb(p, noise, rng));
        }
        return out;
    }
    // Systematic (low-variance) resampling.
    let step = total / n as f64;
    let mut target = rng.gen_range(0.0..step);
    let mut cumulative = weights[0] as f64;
    let mut idx = 0usize;
    for _ in 0..n {
        while cumulative < target && idx + 1 < n {
            idx += 1;
            cumulative += weights[idx] as f64;
        }
        out.push(perturb(&particles[idx], noise, rng));
        target += step;
    }
    out
}

fn perturb(p: &Particle, noise: f32, rng: &mut ChaCha8Rng) -> Particle {
    if noise <= 0.0 {
        return p.clone();
    }
    p.iter()
        .map(|&v| {
            let n: f32 = (0..3).map(|_| rng.gen_range(-noise..noise)).sum::<f32>() / 3.0;
            (v + n).clamp(-2.0, 2.0)
        })
        .collect()
}

/// Weighted mean pose of the particle set.
pub fn estimate_pose(particles: &[Particle], weights: &[f32]) -> Vec<f32> {
    assert_eq!(particles.len(), weights.len());
    assert!(!particles.is_empty());
    let joints = particles[0].len();
    let total: f64 = weights.iter().map(|&w| w as f64).sum();
    let mut pose = vec![0f64; joints];
    if total <= 0.0 {
        for p in particles {
            for j in 0..joints {
                pose[j] += p[j] as f64;
            }
        }
        return pose.iter().map(|&v| (v / particles.len() as f64) as f32).collect();
    }
    for (p, &w) in particles.iter().zip(weights.iter()) {
        for j in 0..joints {
            pose[j] += p[j] as f64 * w as f64;
        }
    }
    pose.iter().map(|&v| (v / total) as f32).collect()
}

/// Result of tracking a sequence of frames.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackResult {
    /// Estimated pose per frame.
    pub poses: Vec<Vec<f32>>,
    /// Mean absolute error against the observations (a tracking-quality
    /// proxy).
    pub mean_error: f32,
}

/// Initialise the particle cloud around zero pose.
pub fn init_particles(config: &FilterConfig, rng: &mut ChaCha8Rng) -> Vec<Particle> {
    (0..config.particles)
        .map(|_| {
            (0..config.joints)
                .map(|_| rng.gen_range(-0.3f32..0.3))
                .collect()
        })
        .collect()
}

/// Sequential reference tracker: full annealed particle filter over all
/// frames.
pub fn track_seq(config: &FilterConfig, observations: &[Vec<f32>], seed: u64) -> TrackResult {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut particles = init_particles(config, &mut rng);
    let mut poses = Vec::with_capacity(observations.len());
    let mut total_err = 0f32;
    for obs in observations {
        let mut weights = vec![0f32; config.particles];
        for layer in 0..config.layers {
            let noise = config.base_noise / (1 << layer) as f32;
            evaluate_weights_range(&particles, obs, config.beta, 0..config.particles, &mut weights);
            particles = resample(&particles, &weights, noise, &mut rng);
        }
        evaluate_weights_range(&particles, obs, config.beta, 0..config.particles, &mut weights);
        let pose = estimate_pose(&particles, &weights);
        total_err += pose
            .iter()
            .zip(obs.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / obs.len() as f32;
        poses.push(pose);
    }
    TrackResult {
        mean_error: total_err / observations.len().max(1) as f32,
        poses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::body_observations;
    use rand::SeedableRng;

    fn small_config() -> FilterConfig {
        FilterConfig {
            particles: 64,
            joints: 4,
            layers: 2,
            base_noise: 0.1,
            beta: 30.0,
        }
    }

    #[test]
    fn weights_prefer_particles_near_observation() {
        let particles = vec![vec![0.0f32, 0.0], vec![1.0, 1.0], vec![0.1, 0.0]];
        let obs = vec![0.0f32, 0.0];
        let mut weights = vec![0f32; 3];
        evaluate_weights_range(&particles, &obs, 10.0, 0..3, &mut weights);
        assert!(weights[0] > weights[1]);
        assert!(weights[0] >= weights[2]);
        assert!(weights[2] > weights[1]);
        assert!((weights[0] - 1.0).abs() < 1e-6, "exact match has weight 1");
    }

    #[test]
    fn weight_range_split_matches_full() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = small_config();
        let particles = init_particles(&cfg, &mut rng);
        let obs = vec![0.1f32; cfg.joints];
        let mut full = vec![0f32; cfg.particles];
        evaluate_weights_range(&particles, &obs, cfg.beta, 0..cfg.particles, &mut full);
        let mut part = vec![0f32; 20];
        evaluate_weights_range(&particles, &obs, cfg.beta, 10..30, &mut part);
        assert_eq!(&part[..], &full[10..30]);
    }

    #[test]
    fn resampling_prefers_heavy_particles() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let particles = vec![vec![0.0f32], vec![1.0f32]];
        // Particle 1 has (almost) all the weight.
        let weights = vec![1e-6f32, 1.0];
        let out = resample(&particles, &weights, 0.0, &mut rng);
        let near_one = out.iter().filter(|p| (p[0] - 1.0).abs() < 0.01).count();
        assert!(near_one >= 1, "heavy particle must survive");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn resampling_handles_degenerate_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let particles = vec![vec![0.5f32; 3]; 8];
        let weights = vec![0f32; 8];
        let out = resample(&particles, &weights, 0.05, &mut rng);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn estimate_pose_weighted_mean() {
        let particles = vec![vec![0.0f32], vec![2.0f32]];
        let pose = estimate_pose(&particles, &[1.0, 3.0]);
        assert!((pose[0] - 1.5).abs() < 1e-6);
        // Zero weights fall back to the unweighted mean.
        let pose = estimate_pose(&particles, &[0.0, 0.0]);
        assert!((pose[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tracker_follows_observations() {
        let cfg = small_config();
        let obs = body_observations(15, cfg.joints, 5);
        // Seed chosen to give the filter a healthy margin under the error
        // bound with the vendored deterministic RNG (see vendor/rand_chacha).
        let result = track_seq(&cfg, &obs, 9);
        assert_eq!(result.poses.len(), 15);
        assert!(
            result.mean_error < 0.25,
            "tracker should stay close to the observations, error = {}",
            result.mean_error
        );
    }

    #[test]
    fn tracker_is_deterministic_in_seed() {
        let cfg = small_config();
        let obs = body_observations(5, cfg.joints, 5);
        let a = track_seq(&cfg, &obs, 7);
        let b = track_seq(&cfg, &obs, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn more_particles_do_not_hurt_much() {
        let obs = body_observations(10, 4, 5);
        let small = track_seq(
            &FilterConfig {
                particles: 16,
                joints: 4,
                ..small_config()
            },
            &obs,
            1,
        );
        let large = track_seq(
            &FilterConfig {
                particles: 256,
                joints: 4,
                ..small_config()
            },
            &obs,
            1,
        );
        assert!(large.mean_error <= small.mean_error + 0.1);
    }
}

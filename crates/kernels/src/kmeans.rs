//! `kmeans`: Lloyd's algorithm over dense points.
//!
//! Each iteration has two phases, exactly as in the benchmark suite:
//!
//! 1. **assign** — every point is labelled with its nearest centroid
//!    (embarrassingly parallel over points: [`assign_range`]);
//! 2. **update** — centroids are recomputed as the mean of their members
//!    (a reduction: [`partial_sums_range`] + [`reduce_centroids`]).
//!
//! Both the Pthreads and OmpSs variants parallelise over point ranges and
//! synchronise between the two phases of every iteration.

/// Squared Euclidean distance between two `dim`-dimensional points.
#[inline]
pub fn distance2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Assign each point in `points[range]` (flattened, `dim` floats per point)
/// to its nearest centroid, writing labels into `labels[range]`.
///
/// # Panics
/// Panics if slices are inconsistent with `dim` or the range.
pub fn assign_range(
    points: &[f32],
    centroids: &[f32],
    dim: usize,
    range: std::ops::Range<usize>,
    labels: &mut [u32],
) {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(points.len() % dim, 0, "points length must be a multiple of dim");
    assert_eq!(centroids.len() % dim, 0, "centroids length must be a multiple of dim");
    assert_eq!(labels.len(), range.len(), "labels slice must match the range");
    let k = centroids.len() / dim;
    assert!(k > 0, "need at least one centroid");
    for (li, p) in range.enumerate() {
        let point = &points[p * dim..(p + 1) * dim];
        let mut best = 0u32;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            let d = distance2(point, &centroids[c * dim..(c + 1) * dim]);
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
        labels[li] = best;
    }
}

/// Per-range partial sums for the update phase: returns `(sums, counts)`
/// where `sums` is `k * dim` floats and `counts` is `k` point counts,
/// accumulated over `points[range]` with the given `labels[range]`.
pub fn partial_sums_range(
    points: &[f32],
    labels: &[u32],
    dim: usize,
    k: usize,
    range: std::ops::Range<usize>,
) -> (Vec<f64>, Vec<u64>) {
    assert_eq!(labels.len(), range.len(), "labels slice must match the range");
    let mut sums = vec![0f64; k * dim];
    let mut counts = vec![0u64; k];
    for (li, p) in range.enumerate() {
        let c = labels[li] as usize;
        assert!(c < k, "label out of range");
        counts[c] += 1;
        let point = &points[p * dim..(p + 1) * dim];
        for d in 0..dim {
            sums[c * dim + d] += point[d] as f64;
        }
    }
    (sums, counts)
}

/// Combine partial sums into new centroids. Clusters that received no points
/// keep their previous centroid.
pub fn reduce_centroids(
    partials: &[(Vec<f64>, Vec<u64>)],
    previous: &[f32],
    dim: usize,
    k: usize,
) -> Vec<f32> {
    let mut sums = vec![0f64; k * dim];
    let mut counts = vec![0u64; k];
    for (ps, pc) in partials {
        for i in 0..k * dim {
            sums[i] += ps[i];
        }
        for c in 0..k {
            counts[c] += pc[c];
        }
    }
    let mut out = vec![0f32; k * dim];
    for c in 0..k {
        for d in 0..dim {
            out[c * dim + d] = if counts[c] > 0 {
                (sums[c * dim + d] / counts[c] as f64) as f32
            } else {
                previous[c * dim + d]
            };
        }
    }
    out
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Final centroids, `k * dim` floats.
    pub centroids: Vec<f32>,
    /// Final label of every point.
    pub labels: Vec<u32>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
}

/// Deterministic initial centroids: evenly strided points.
pub fn init_centroids(points: &[f32], dim: usize, k: usize) -> Vec<f32> {
    let n = points.len() / dim;
    assert!(n >= k, "need at least k points");
    let mut out = Vec::with_capacity(k * dim);
    for c in 0..k {
        let idx = c * n / k;
        out.extend_from_slice(&points[idx * dim..(idx + 1) * dim]);
    }
    out
}

/// Total within-cluster sum of squares.
pub fn inertia(points: &[f32], centroids: &[f32], labels: &[u32], dim: usize) -> f64 {
    let n = points.len() / dim;
    (0..n)
        .map(|p| {
            let c = labels[p] as usize;
            distance2(
                &points[p * dim..(p + 1) * dim],
                &centroids[c * dim..(c + 1) * dim],
            ) as f64
        })
        .sum()
}

/// Sequential reference implementation of Lloyd's algorithm.
pub fn kmeans_seq(points: &[f32], dim: usize, k: usize, max_iters: usize) -> KmeansResult {
    let n = points.len() / dim;
    let mut centroids = init_centroids(points, dim, k);
    let mut labels = vec![0u32; n];
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let old_labels = labels.clone();
        assign_range(points, &centroids, dim, 0..n, &mut labels);
        let partial = partial_sums_range(points, &labels, dim, k, 0..n);
        centroids = reduce_centroids(&[partial], &centroids, dim, k);
        if labels == old_labels && iterations > 1 {
            break;
        }
    }
    let total_inertia = inertia(points, &centroids, &labels, dim);
    KmeansResult {
        centroids,
        labels,
        iterations,
        inertia: total_inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::clustered_points;
    use proptest::prelude::*;

    #[test]
    fn distance2_basic() {
        assert_eq!(distance2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance2(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn assign_picks_nearest_centroid() {
        let points = [0.0f32, 0.0, 10.0, 10.0, 0.2, 0.1];
        let centroids = [0.0f32, 0.0, 10.0, 10.0];
        let mut labels = vec![0u32; 3];
        assign_range(&points, &centroids, 2, 0..3, &mut labels);
        assert_eq!(labels, vec![0, 1, 0]);
    }

    #[test]
    fn assign_subrange_matches_full() {
        let points = clustered_points(50, 3, 4, 9);
        let centroids = init_centroids(&points, 3, 4);
        let mut full = vec![0u32; 50];
        assign_range(&points, &centroids, 3, 0..50, &mut full);
        let mut part = vec![0u32; 20];
        assign_range(&points, &centroids, 3, 10..30, &mut part);
        assert_eq!(&part[..], &full[10..30]);
    }

    #[test]
    fn partial_sums_split_equals_whole() {
        let points = clustered_points(40, 2, 3, 5);
        let centroids = init_centroids(&points, 2, 3);
        let mut labels = vec![0u32; 40];
        assign_range(&points, &centroids, 2, 0..40, &mut labels);
        let whole = partial_sums_range(&points, &labels, 2, 3, 0..40);
        let a = partial_sums_range(&points, &labels[0..25], 2, 3, 0..25);
        let b = partial_sums_range(&points, &labels[25..40], 2, 3, 25..40);
        let merged = reduce_centroids(&[a, b], &centroids, 2, 3);
        let direct = reduce_centroids(&[whole], &centroids, 2, 3);
        for (x, y) in merged.iter().zip(direct.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        let previous = vec![1.0f32, 2.0, 3.0, 4.0];
        let partials = vec![(vec![0.0f64; 4], vec![0u64; 2])];
        let out = reduce_centroids(&partials, &previous, 2, 2);
        assert_eq!(out, previous);
    }

    #[test]
    fn kmeans_converges_and_reduces_inertia() {
        let points = clustered_points(200, 2, 4, 42);
        let initial_centroids = init_centroids(&points, 2, 4);
        let mut initial_labels = vec![0u32; 200];
        assign_range(&points, &initial_centroids, 2, 0..200, &mut initial_labels);
        let initial_inertia = inertia(&points, &initial_centroids, &initial_labels, 2);
        let result = kmeans_seq(&points, 2, 4, 50);
        assert!(result.iterations >= 2);
        assert!(
            result.inertia <= initial_inertia + 1e-6,
            "k-means must not increase inertia: {} -> {}",
            initial_inertia,
            result.inertia
        );
        assert_eq!(result.labels.len(), 200);
        assert_eq!(result.centroids.len(), 8);
    }

    #[test]
    fn kmeans_is_deterministic() {
        let points = clustered_points(100, 3, 3, 7);
        let a = kmeans_seq(&points, 3, 3, 20);
        let b = kmeans_seq(&points, 3, 3, 20);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least k points")]
    fn too_few_points_panics() {
        let _ = init_centroids(&[1.0, 2.0], 2, 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Assignment labels are always valid cluster indices, and every
        /// point is closer (or equal) to its assigned centroid than to any
        /// other.
        #[test]
        fn prop_assignment_is_argmin(n in 4usize..60, k in 1usize..5, seed in 0u64..50) {
            let dim = 2;
            let points = clustered_points(n, dim, k, seed);
            let centroids = init_centroids(&points, dim, k);
            let mut labels = vec![0u32; n];
            assign_range(&points, &centroids, dim, 0..n, &mut labels);
            for p in 0..n {
                let assigned = labels[p] as usize;
                prop_assert!(assigned < k);
                let da = distance2(&points[p*dim..(p+1)*dim], &centroids[assigned*dim..(assigned+1)*dim]);
                for c in 0..k {
                    let dc = distance2(&points[p*dim..(p+1)*dim], &centroids[c*dim..(c+1)*dim]);
                    prop_assert!(da <= dc + 1e-5);
                }
            }
        }

        /// Lloyd iterations never increase inertia (monotone convergence).
        #[test]
        fn prop_inertia_monotone(n in 10usize..80, k in 1usize..4, seed in 0u64..20) {
            let dim = 2;
            let points = clustered_points(n, dim, k + 1, seed);
            let mut centroids = init_centroids(&points, dim, k);
            let mut labels = vec![0u32; n];
            let mut last = f64::INFINITY;
            for _ in 0..6 {
                assign_range(&points, &centroids, dim, 0..n, &mut labels);
                let current = inertia(&points, &centroids, &labels, dim);
                prop_assert!(current <= last + 1e-3, "inertia rose: {last} -> {current}");
                let partial = partial_sums_range(&points, &labels, dim, k, 0..n);
                centroids = reduce_centroids(&[partial], &centroids, dim, k);
                last = current;
            }
        }
    }
}

//! `rgbcmy`: RGB → CMYK colour-space conversion.
//!
//! The benchmark repeatedly converts an RGB image to CMYK (multiple
//! iterations are used to stabilise the measured time, with a barrier between
//! iterations — the property Section 4 uses to discuss barrier costs). The
//! parallel work unit is a band of rows: [`convert_rows`].

use crate::image::{ImageCmyk, ImageRgb};

/// Convert one RGB pixel to CMYK using the standard undercolour-removal
/// formula (all channels 8-bit).
pub fn rgb_to_cmyk_pixel(rgb: [u8; 3]) -> [u8; 4] {
    let r = rgb[0] as f64 / 255.0;
    let g = rgb[1] as f64 / 255.0;
    let b = rgb[2] as f64 / 255.0;
    let k = 1.0 - r.max(g).max(b);
    if (1.0 - k).abs() < 1e-12 {
        return [0, 0, 0, 255];
    }
    let c = (1.0 - r - k) / (1.0 - k);
    let m = (1.0 - g - k) / (1.0 - k);
    let y = (1.0 - b - k) / (1.0 - k);
    [
        (c * 255.0).round() as u8,
        (m * 255.0).round() as u8,
        (y * 255.0).round() as u8,
        (k * 255.0).round() as u8,
    ]
}

/// Convert rows `rows` of `src` into `out_rows` (interleaved CMYK,
/// `4 * src.width * rows.len()` bytes). This is the parallel work unit.
///
/// # Panics
/// Panics if the output buffer size does not match.
pub fn convert_rows(src: &ImageRgb, rows: std::ops::Range<usize>, out_rows: &mut [u8]) {
    assert_eq!(
        out_rows.len(),
        4 * src.width * rows.len(),
        "output buffer size mismatch"
    );
    for (ri, y) in rows.enumerate() {
        for x in 0..src.width {
            let cmyk = rgb_to_cmyk_pixel(src.get(x, y));
            let o = 4 * (ri * src.width + x);
            out_rows[o..o + 4].copy_from_slice(&cmyk);
        }
    }
}

/// Sequential reference: convert the whole image.
pub fn convert(src: &ImageRgb) -> ImageCmyk {
    let mut out = ImageCmyk::new(src.width, src.height);
    convert_rows(src, 0..src.height, &mut out.data);
    out
}

/// Approximate inverse conversion (CMYK → RGB), used only to validate the
/// forward conversion in tests.
pub fn cmyk_to_rgb_pixel(cmyk: [u8; 4]) -> [u8; 3] {
    let c = cmyk[0] as f64 / 255.0;
    let m = cmyk[1] as f64 / 255.0;
    let y = cmyk[2] as f64 / 255.0;
    let k = cmyk[3] as f64 / 255.0;
    [
        (255.0 * (1.0 - c) * (1.0 - k)).round() as u8,
        (255.0 * (1.0 - m) * (1.0 - k)).round() as u8,
        (255.0 * (1.0 - y) * (1.0 - k)).round() as u8,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthetic_rgb_image;
    use proptest::prelude::*;

    #[test]
    fn primary_colors_convert_as_expected() {
        assert_eq!(rgb_to_cmyk_pixel([255, 255, 255]), [0, 0, 0, 0]);
        assert_eq!(rgb_to_cmyk_pixel([0, 0, 0]), [0, 0, 0, 255]);
        assert_eq!(rgb_to_cmyk_pixel([255, 0, 0]), [0, 255, 255, 0]);
        assert_eq!(rgb_to_cmyk_pixel([0, 255, 0]), [255, 0, 255, 0]);
        assert_eq!(rgb_to_cmyk_pixel([0, 0, 255]), [255, 255, 0, 0]);
    }

    #[test]
    fn convert_whole_image_dimensions() {
        let img = synthetic_rgb_image(13, 7, 5);
        let out = convert(&img);
        assert_eq!(out.width, 13);
        assert_eq!(out.height, 7);
        assert_eq!(out.data.len(), 4 * 13 * 7);
    }

    #[test]
    fn row_band_matches_full_conversion() {
        let img = synthetic_rgb_image(21, 11, 9);
        let full = convert(&img);
        let rows = 3..8;
        let mut band = vec![0u8; 4 * img.width * rows.len()];
        convert_rows(&img, rows.clone(), &mut band);
        assert_eq!(
            &band[..],
            &full.data[4 * img.width * rows.start..4 * img.width * rows.end]
        );
    }

    #[test]
    #[should_panic(expected = "output buffer size mismatch")]
    fn wrong_buffer_size_panics() {
        let img = synthetic_rgb_image(4, 4, 0);
        let mut buf = vec![0u8; 3];
        convert_rows(&img, 0..1, &mut buf);
    }

    proptest! {
        /// Round-tripping RGB→CMYK→RGB reproduces the colour to within
        /// rounding error (≤ 2 per channel).
        #[test]
        fn prop_roundtrip_accurate(rgb in proptest::array::uniform3(0u8..)) {
            let back = cmyk_to_rgb_pixel(rgb_to_cmyk_pixel(rgb));
            for c in 0..3 {
                prop_assert!((back[c] as i32 - rgb[c] as i32).abs() <= 2,
                    "channel {c}: {} vs {}", back[c], rgb[c]);
            }
        }

        /// K equals 255 minus the max channel (undercolour removal).
        #[test]
        fn prop_k_complements_max_channel(rgb in proptest::array::uniform3(0u8..)) {
            let k = rgb_to_cmyk_pixel(rgb)[3];
            let max = *rgb.iter().max().unwrap();
            prop_assert!((k as i32 - (255 - max) as i32).abs() <= 1);
        }

        /// Splitting the conversion into two bands reproduces the full image.
        #[test]
        fn prop_bands_compose(w in 1usize..30, h in 2usize..20, split_frac in 0.1f64..0.9, seed in 0u64..100) {
            let img = synthetic_rgb_image(w, h, seed);
            let full = convert(&img);
            let split = (((h as f64) * split_frac) as usize).clamp(1, h - 1);
            let mut top = vec![0u8; 4 * w * split];
            let mut bottom = vec![0u8; 4 * w * (h - split)];
            convert_rows(&img, 0..split, &mut top);
            convert_rows(&img, split..h, &mut bottom);
            let mut combined = top;
            combined.extend_from_slice(&bottom);
            prop_assert_eq!(combined, full.data);
        }
    }
}

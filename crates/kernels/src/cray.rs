//! `c-ray`: a small recursive sphere ray tracer.
//!
//! The original c-ray benchmark renders a scene of spheres with Phong shading
//! and specular reflections, one scanline at a time — which is also its unit
//! of parallelism in both the Pthreads and the OmpSs variants. This module
//! implements the same structure: [`render_scanline`] is the work unit, and
//! [`render`] is the sequential reference that simply loops over scanlines.

/// A 3-component vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Vector addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Vector subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Scalar multiplication.
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction (zero vector stays zero).
    pub fn normalize(self) -> Vec3 {
        let len = self.length();
        if len == 0.0 {
            Vec3::ZERO
        } else {
            self.scale(1.0 / len)
        }
    }

    /// Reflect `self` about the unit normal `n`.
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self.sub(n.scale(2.0 * self.dot(n)))
    }
}

/// A sphere in the scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Centre position.
    pub center: Vec3,
    /// Radius.
    pub radius: f64,
    /// Diffuse colour (components in `[0, 1]`).
    pub color: Vec3,
    /// Specular reflectivity in `[0, 1]`.
    pub reflectivity: f64,
}

/// A point light.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Light {
    /// Position of the light.
    pub position: Vec3,
    /// Intensity in `[0, 1]`.
    pub intensity: f64,
}

/// The scene: spheres, lights and camera parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// Spheres to render.
    pub spheres: Vec<Sphere>,
    /// Point lights.
    pub lights: Vec<Light>,
    /// Camera position (rays start here).
    pub camera: Vec3,
    /// Field-of-view scale factor.
    pub fov: f64,
    /// Maximum reflection recursion depth.
    pub max_depth: u32,
}

impl Scene {
    /// A deterministic demo scene with `n_spheres` spheres arranged on a
    /// spiral, plus a ground sphere and two lights — roughly the flavour of
    /// the `scene` file shipped with c-ray.
    pub fn demo(n_spheres: usize) -> Self {
        let mut spheres = Vec::with_capacity(n_spheres + 1);
        // Large ground sphere.
        spheres.push(Sphere {
            center: Vec3::new(0.0, -1004.0, 20.0),
            radius: 1000.0,
            color: Vec3::new(0.2, 0.2, 0.25),
            reflectivity: 0.05,
        });
        for i in 0..n_spheres {
            let t = i as f64 / n_spheres.max(1) as f64;
            let angle = t * std::f64::consts::TAU * 2.0;
            spheres.push(Sphere {
                center: Vec3::new(
                    angle.cos() * (2.0 + 3.0 * t),
                    -1.5 + 3.0 * t,
                    12.0 + 10.0 * t,
                ),
                radius: 0.5 + 0.7 * ((i * 37 % 11) as f64 / 11.0),
                color: Vec3::new(
                    0.3 + 0.7 * ((i * 13 % 7) as f64 / 7.0),
                    0.3 + 0.7 * ((i * 29 % 5) as f64 / 5.0),
                    0.3 + 0.7 * ((i * 17 % 3) as f64 / 3.0),
                ),
                reflectivity: 0.25 + 0.5 * t,
            });
        }
        Scene {
            spheres,
            lights: vec![
                Light {
                    position: Vec3::new(-20.0, 30.0, -20.0),
                    intensity: 0.9,
                },
                Light {
                    position: Vec3::new(30.0, 20.0, 10.0),
                    intensity: 0.5,
                },
            ],
            camera: Vec3::new(0.0, 0.0, -10.0),
            fov: 1.2,
            max_depth: 3,
        }
    }
}

/// Intersect a ray with a sphere; returns the distance along the ray of the
/// nearest positive hit.
fn intersect(origin: Vec3, dir: Vec3, sphere: &Sphere) -> Option<f64> {
    let oc = origin.sub(sphere.center);
    let b = 2.0 * oc.dot(dir);
    let c = oc.dot(oc) - sphere.radius * sphere.radius;
    let disc = b * b - 4.0 * c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t1 = (-b - sq) / 2.0;
    let t2 = (-b + sq) / 2.0;
    if t1 > 1e-6 {
        Some(t1)
    } else if t2 > 1e-6 {
        Some(t2)
    } else {
        None
    }
}

/// Trace one ray, returning an RGB colour with components in `[0, 1]`.
fn trace(scene: &Scene, origin: Vec3, dir: Vec3, depth: u32) -> Vec3 {
    // Find the nearest hit.
    let mut nearest: Option<(f64, &Sphere)> = None;
    for s in &scene.spheres {
        if let Some(t) = intersect(origin, dir, s) {
            if nearest.is_none_or(|(tn, _)| t < tn) {
                nearest = Some((t, s));
            }
        }
    }
    let Some((t, sphere)) = nearest else {
        // Background: vertical gradient.
        let f = 0.5 * (dir.y + 1.0);
        return Vec3::new(0.05, 0.05, 0.1).scale(1.0 - f).add(Vec3::new(0.1, 0.15, 0.3).scale(f));
    };

    let hit = origin.add(dir.scale(t));
    let normal = hit.sub(sphere.center).normalize();
    let mut color = sphere.color.scale(0.08); // ambient term

    for light in &scene.lights {
        let to_light = light.position.sub(hit);
        let dist = to_light.length();
        let l = to_light.normalize();
        // Shadow test.
        let mut shadowed = false;
        for s in &scene.spheres {
            if std::ptr::eq(s, sphere) {
                continue;
            }
            if let Some(ts) = intersect(hit, l, s) {
                if ts < dist {
                    shadowed = true;
                    break;
                }
            }
        }
        if shadowed {
            continue;
        }
        let diffuse = normal.dot(l).max(0.0);
        let half = l.sub(dir).normalize();
        let specular = normal.dot(half).max(0.0).powi(32);
        color = color.add(
            sphere
                .color
                .scale(diffuse * light.intensity)
                .add(Vec3::new(1.0, 1.0, 1.0).scale(specular * light.intensity * 0.6)),
        );
    }

    if sphere.reflectivity > 0.0 && depth < scene.max_depth {
        let refl_dir = dir.reflect(normal).normalize();
        let refl = trace(scene, hit, refl_dir, depth + 1);
        color = color
            .scale(1.0 - sphere.reflectivity)
            .add(refl.scale(sphere.reflectivity));
    }
    color
}

fn to_byte(v: f64) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Render scanline `y` of a `width`×`height` image into `row`, which must
/// hold `3 * width` bytes (interleaved RGB). This is the parallel work unit
/// of the c-ray benchmark.
///
/// # Panics
/// Panics if `row.len() != 3 * width`.
pub fn render_scanline(scene: &Scene, width: usize, height: usize, y: usize, row: &mut [u8]) {
    assert_eq!(row.len(), 3 * width, "row buffer size mismatch");
    let aspect = width as f64 / height as f64;
    for x in 0..width {
        let ndc_x = ((x as f64 + 0.5) / width as f64 * 2.0 - 1.0) * scene.fov * aspect;
        let ndc_y = (1.0 - (y as f64 + 0.5) / height as f64 * 2.0) * scene.fov;
        let dir = Vec3::new(ndc_x, ndc_y, 1.0).normalize();
        let c = trace(scene, scene.camera, dir, 0);
        row[3 * x] = to_byte(c.x);
        row[3 * x + 1] = to_byte(c.y);
        row[3 * x + 2] = to_byte(c.z);
    }
}

/// Sequential reference renderer: loops over all scanlines.
pub fn render(scene: &Scene, width: usize, height: usize) -> crate::image::ImageRgb {
    let mut img = crate::image::ImageRgb::new(width, height);
    for y in 0..height {
        let range = img.row_range(y);
        render_scanline(scene, width, height, y, &mut img.data[range]);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.add(b), Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b.sub(a), Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a.scale(2.0), Vec3::new(2.0, 4.0, 6.0));
        assert!((a.dot(b) - 32.0).abs() < 1e-12);
        assert!((Vec3::new(3.0, 4.0, 0.0).length() - 5.0).abs() < 1e-12);
        assert!((a.normalize().length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalize(), Vec3::ZERO);
    }

    #[test]
    fn reflection_preserves_length_for_unit_normal() {
        let v = Vec3::new(1.0, -1.0, 0.5);
        let n = Vec3::new(0.0, 1.0, 0.0);
        let r = v.reflect(n);
        assert!((r.length() - v.length()).abs() < 1e-12);
        assert!((r.y + v.y).abs() < 1e-12, "y component flips");
    }

    #[test]
    fn intersect_hits_sphere_in_front() {
        let s = Sphere {
            center: Vec3::new(0.0, 0.0, 10.0),
            radius: 2.0,
            color: Vec3::new(1.0, 0.0, 0.0),
            reflectivity: 0.0,
        };
        let t = intersect(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), &s).unwrap();
        assert!((t - 8.0).abs() < 1e-9);
        // Ray pointing away misses.
        assert!(intersect(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0), &s).is_none());
        // Ray offset beyond the radius misses.
        assert!(intersect(Vec3::new(5.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), &s).is_none());
    }

    #[test]
    fn demo_scene_is_deterministic() {
        assert_eq!(Scene::demo(8), Scene::demo(8));
        assert_eq!(Scene::demo(8).spheres.len(), 9);
    }

    #[test]
    fn render_small_image_is_deterministic_and_nontrivial() {
        let scene = Scene::demo(6);
        let a = render(&scene, 32, 24);
        let b = render(&scene, 32, 24);
        assert_eq!(a.checksum(), b.checksum());
        // The image must not be a constant colour.
        let first = a.get(0, 0);
        assert!(
            (0..24).any(|y| (0..32).any(|x| a.get(x, y) != first)),
            "rendered image is constant"
        );
    }

    #[test]
    fn scanline_rendering_matches_full_render() {
        let scene = Scene::demo(4);
        let (w, h) = (24, 16);
        let full = render(&scene, w, h);
        let mut row = vec![0u8; 3 * w];
        render_scanline(&scene, w, h, 7, &mut row);
        assert_eq!(&full.data[full.row_range(7)], &row[..]);
    }

    #[test]
    #[should_panic(expected = "row buffer size mismatch")]
    fn scanline_wrong_buffer_panics() {
        let scene = Scene::demo(1);
        let mut row = vec![0u8; 10];
        render_scanline(&scene, 8, 8, 0, &mut row);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every scanline render writes the same bytes as the full render.
        #[test]
        fn prop_scanlines_compose_full_image(w in 4usize..32, h in 4usize..24, y_frac in 0.0f64..1.0) {
            let scene = Scene::demo(3);
            let y = ((h as f64 - 1.0) * y_frac) as usize;
            let full = render(&scene, w, h);
            let mut row = vec![0u8; 3 * w];
            render_scanline(&scene, w, h, y, &mut row);
            prop_assert_eq!(&full.data[full.row_range(y)], &row[..]);
        }
    }
}

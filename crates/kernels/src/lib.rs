//! # kernels — computational kernels of the 10 embedded/consumer benchmarks
//!
//! This crate holds the *pure* computational code of every benchmark in the
//! paper's suite (Table 1), with no threading of any kind. The sequential,
//! Pthreads-style and OmpSs-style benchmark variants in the `benchsuite`
//! crate all call into these functions, which guarantees that the three
//! variants of a benchmark perform exactly the same computation — the
//! property the paper relies on when it says "the Pthreads and OmpSs variants
//! exploit the same parallelism".
//!
//! | Module | Benchmark(s) | Computation |
//! |--------|--------------|-------------|
//! | [`cray`] | c-ray, ray-rot | sphere ray tracer |
//! | [`rotate`] | rotate, ray-rot, rot-cc | bilinear image rotation |
//! | [`rgbcmy`] | rgbcmy, rot-cc | RGB → CMYK colour conversion |
//! | [`md5`] | md5 | RFC 1321 message digest over many buffers |
//! | [`kmeans`] | kmeans | Lloyd's k-means clustering |
//! | [`streamcluster`] | streamcluster | online k-median clustering |
//! | [`bodytrack`] | bodytrack | annealed particle filter |
//! | [`h264`] | h264dec | synthetic 5-stage H.264-like decoder |
//! | [`image`] | (shared) | image containers and quality metrics |
//! | [`workload`] | (shared) | deterministic synthetic input generators |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bodytrack;
pub mod cray;
pub mod h264;
pub mod image;
pub mod kmeans;
pub mod md5;
pub mod rgbcmy;
pub mod rotate;
pub mod streamcluster;
pub mod workload;

pub use image::{ImageCmyk, ImageGray, ImageRgb};

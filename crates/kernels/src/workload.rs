//! Deterministic synthetic workload generators.
//!
//! Every benchmark input is generated from a seed with a counter-based or
//! ChaCha PRNG so that all three variants (sequential, Pthreads, OmpSs) of a
//! benchmark — and repeated runs of the harness — operate on bit-identical
//! inputs.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::image::ImageRgb;

/// Deterministic RNG for workload generation.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A synthetic RGB test image: smooth gradients plus pseudo-random texture,
/// deterministic in `(width, height, seed)`.
pub fn synthetic_rgb_image(width: usize, height: usize, seed: u64) -> ImageRgb {
    let mut img = ImageRgb::new(width, height);
    let mut r = rng(seed);
    for y in 0..height {
        for x in 0..width {
            let gx = if width > 1 {
                (255 * x / (width - 1).max(1)) as u8
            } else {
                0
            };
            let gy = if height > 1 {
                (255 * y / (height - 1).max(1)) as u8
            } else {
                0
            };
            let noise: u8 = r.gen_range(0..32);
            img.set(
                x,
                y,
                [
                    gx.wrapping_add(noise),
                    gy.wrapping_add(noise / 2),
                    ((gx as u16 + gy as u16) / 2) as u8,
                ],
            );
        }
    }
    img
}

/// Buffers for the md5 benchmark: `count` buffers of `size` pseudo-random
/// bytes each.
pub fn md5_buffers(count: usize, size: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut r = rng(seed);
    (0..count)
        .map(|_| (0..size).map(|_| r.gen()).collect())
        .collect()
}

/// Points for the k-means / streamcluster benchmarks: `n` points of
/// dimension `dim`, drawn from `k_hint` Gaussian-ish clusters so the
/// clustering problem is well-posed.
pub fn clustered_points(n: usize, dim: usize, k_hint: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    let centers: Vec<Vec<f32>> = (0..k_hint.max(1))
        .map(|_| (0..dim).map(|_| r.gen_range(-10.0..10.0)).collect())
        .collect();
    let mut out = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = &centers[i % centers.len()];
        for &center in c.iter().take(dim) {
            // Sum of three uniforms approximates a Gaussian well enough.
            let noise: f32 = (0..3).map(|_| r.gen_range(-0.5f32..0.5)).sum();
            out.push(center + noise);
        }
    }
    out
}

/// Observation sequence for the bodytrack benchmark: per-frame noisy joint
/// angle observations of a synthetic articulated body.
pub fn body_observations(frames: usize, joints: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut r = rng(seed);
    let mut truth: Vec<f32> = (0..joints).map(|_| r.gen_range(-1.0f32..1.0)).collect();
    let mut out = Vec::with_capacity(frames);
    for _ in 0..frames {
        for t in truth.iter_mut() {
            *t += r.gen_range(-0.08f32..0.08);
            *t = t.clamp(-1.5, 1.5);
        }
        out.push(truth.iter().map(|&t| t + r.gen_range(-0.05f32..0.05)).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_is_deterministic_in_seed() {
        let a = synthetic_rgb_image(17, 9, 3);
        let b = synthetic_rgb_image(17, 9, 3);
        let c = synthetic_rgb_image(17, 9, 4);
        assert_eq!(a.data, b.data);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn image_handles_degenerate_sizes() {
        let img = synthetic_rgb_image(1, 1, 0);
        assert_eq!(img.data.len(), 3);
    }

    #[test]
    fn md5_buffers_shape_and_determinism() {
        let a = md5_buffers(5, 100, 7);
        let b = md5_buffers(5, 100, 7);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|buf| buf.len() == 100));
        assert_eq!(a, b);
        assert_ne!(a, md5_buffers(5, 100, 8));
    }

    #[test]
    fn clustered_points_shape() {
        let pts = clustered_points(100, 3, 4, 1);
        assert_eq!(pts.len(), 300);
        assert_eq!(pts, clustered_points(100, 3, 4, 1));
        // Values stay in a sane range.
        assert!(pts.iter().all(|v| v.abs() < 12.0));
    }

    #[test]
    fn body_observations_shape_and_smoothness() {
        let obs = body_observations(20, 6, 2);
        assert_eq!(obs.len(), 20);
        assert!(obs.iter().all(|frame| frame.len() == 6));
        // Consecutive frames stay close (it is a random walk with small
        // steps).
        for w in obs.windows(2) {
            for (a, b) in w[0].iter().zip(w[1].iter()) {
                assert!((a - b).abs() < 0.5);
            }
        }
    }
}

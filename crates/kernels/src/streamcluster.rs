//! `streamcluster`: online k-median clustering (PARSEC-style).
//!
//! The PARSEC streamcluster kernel processes a stream of points in blocks;
//! for each block it runs a facility-location style local search: every point
//! is a candidate new centre, and opening it is evaluated by the *gain* —
//! the cost reduction obtained if points closer to the candidate than to
//! their current centre were reassigned (minus the facility opening cost).
//! The gain evaluation over all points is the data-parallel phase the paper's
//! suite parallelises, with a barrier between candidates.
//!
//! This module implements the same structure:
//! [`gain_range`] is the parallel work unit, [`local_search_seq`] the
//! sequential driver, and [`stream_cluster_seq`] the block-streaming wrapper.

use crate::kmeans::distance2;

/// Clustering state over a block of points.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterState {
    /// Index (within the block) of the centre each point is assigned to.
    pub assignment: Vec<u32>,
    /// Cost (squared distance) of each point to its centre.
    pub cost: Vec<f32>,
    /// Indices of the currently open centres.
    pub centers: Vec<u32>,
}

impl ClusterState {
    /// Initialise with a single open centre: point 0.
    pub fn singleton(points: &[f32], dim: usize) -> Self {
        let n = points.len() / dim;
        assert!(n > 0, "need at least one point");
        let center = &points[0..dim];
        let mut assignment = vec![0u32; n];
        let mut cost = vec![0f32; n];
        for p in 0..n {
            cost[p] = distance2(&points[p * dim..(p + 1) * dim], center);
            assignment[p] = 0;
        }
        ClusterState {
            assignment,
            cost,
            centers: vec![0],
        }
    }

    /// Total assignment cost.
    pub fn total_cost(&self) -> f64 {
        self.cost.iter().map(|&c| c as f64).sum()
    }
}

/// Evaluate the gain of opening `candidate` as a new centre, restricted to
/// points in `range`: returns `(gain_contribution, switchers)` where
/// `switchers` lists the points in `range` that would switch to the
/// candidate. The full gain of the candidate is the sum of all range
/// contributions minus `facility_cost`.
pub fn gain_range(
    points: &[f32],
    dim: usize,
    state: &ClusterState,
    candidate: usize,
    range: std::ops::Range<usize>,
) -> (f64, Vec<u32>) {
    let cand_point = &points[candidate * dim..(candidate + 1) * dim];
    let mut gain = 0f64;
    let mut switchers = Vec::new();
    for p in range {
        let d = distance2(&points[p * dim..(p + 1) * dim], cand_point);
        if d < state.cost[p] {
            gain += (state.cost[p] - d) as f64;
            switchers.push(p as u32);
        }
    }
    (gain, switchers)
}

/// Apply the opening of `candidate`: reassign all `switchers` to it.
pub fn apply_open(
    points: &[f32],
    dim: usize,
    state: &mut ClusterState,
    candidate: usize,
    switchers: &[u32],
) {
    let cand_point = &points[candidate * dim..(candidate + 1) * dim];
    state.centers.push(candidate as u32);
    for &p in switchers {
        let p = p as usize;
        state.assignment[p] = candidate as u32;
        state.cost[p] = distance2(&points[p * dim..(p + 1) * dim], cand_point);
    }
}

/// Sequential local search over one block: consider every `stride`-th point
/// as a candidate centre and open it when the gain exceeds `facility_cost`.
/// Returns the final state.
pub fn local_search_seq(
    points: &[f32],
    dim: usize,
    facility_cost: f64,
    stride: usize,
    max_centers: usize,
) -> ClusterState {
    let n = points.len() / dim;
    let mut state = ClusterState::singleton(points, dim);
    let stride = stride.max(1);
    for candidate in (0..n).step_by(stride) {
        if state.centers.len() >= max_centers {
            break;
        }
        if state.centers.contains(&(candidate as u32)) {
            continue;
        }
        let (gain, switchers) = gain_range(points, dim, &state, candidate, 0..n);
        if gain > facility_cost {
            apply_open(points, dim, &mut state, candidate, &switchers);
        }
    }
    state
}

/// Result of streaming clustering over several blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// Number of centres opened in each block.
    pub centers_per_block: Vec<usize>,
    /// Final assignment cost of each block.
    pub cost_per_block: Vec<f64>,
}

impl StreamResult {
    /// Total cost over all blocks.
    pub fn total_cost(&self) -> f64 {
        self.cost_per_block.iter().sum()
    }
}

/// Sequential reference: stream the points through `local_search_seq` in
/// blocks of `block_size` points.
pub fn stream_cluster_seq(
    points: &[f32],
    dim: usize,
    block_size: usize,
    facility_cost: f64,
    stride: usize,
    max_centers: usize,
) -> StreamResult {
    assert!(block_size > 0, "block_size must be positive");
    let n = points.len() / dim;
    let mut centers_per_block = Vec::new();
    let mut cost_per_block = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + block_size).min(n);
        let block = &points[start * dim..end * dim];
        let state = local_search_seq(block, dim, facility_cost, stride, max_centers);
        centers_per_block.push(state.centers.len());
        cost_per_block.push(state.total_cost());
        start = end;
    }
    StreamResult {
        centers_per_block,
        cost_per_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::clustered_points;
    use proptest::prelude::*;

    #[test]
    fn singleton_state_assigns_everything_to_point_zero() {
        let points = clustered_points(20, 2, 3, 1);
        let state = ClusterState::singleton(&points, 2);
        assert_eq!(state.centers, vec![0]);
        assert!(state.assignment.iter().all(|&a| a == 0));
        assert_eq!(state.cost[0], 0.0);
        assert!(state.total_cost() > 0.0);
    }

    #[test]
    fn gain_splits_compose() {
        let points = clustered_points(50, 2, 4, 3);
        let state = ClusterState::singleton(&points, 2);
        let candidate = 25;
        let (full_gain, full_switchers) = gain_range(&points, 2, &state, candidate, 0..50);
        let (g1, s1) = gain_range(&points, 2, &state, candidate, 0..20);
        let (g2, s2) = gain_range(&points, 2, &state, candidate, 20..50);
        assert!((full_gain - (g1 + g2)).abs() < 1e-6);
        let mut merged = s1;
        merged.extend(s2);
        assert_eq!(merged, full_switchers);
    }

    #[test]
    fn opening_a_center_reduces_cost() {
        let points = clustered_points(60, 3, 4, 5);
        let mut state = ClusterState::singleton(&points, 3);
        let before = state.total_cost();
        let candidate = 30;
        let (gain, switchers) = gain_range(&points, 3, &state, candidate, 0..60);
        assert!(gain > 0.0, "a far-away candidate must have positive gain");
        apply_open(&points, 3, &mut state, candidate, &switchers);
        let after = state.total_cost();
        assert!(after < before);
        assert!((before - after - gain).abs() < 1e-3);
        assert_eq!(state.centers, vec![0, 30]);
    }

    #[test]
    fn local_search_respects_max_centers() {
        let points = clustered_points(100, 2, 8, 11);
        let state = local_search_seq(&points, 2, 0.5, 3, 4);
        assert!(state.centers.len() <= 4);
        assert!(!state.centers.is_empty());
    }

    #[test]
    fn higher_facility_cost_opens_fewer_centers() {
        let points = clustered_points(120, 2, 6, 13);
        let cheap = local_search_seq(&points, 2, 0.1, 2, 64);
        let expensive = local_search_seq(&points, 2, 1e6, 2, 64);
        assert!(cheap.centers.len() >= expensive.centers.len());
        assert_eq!(expensive.centers.len(), 1, "huge facility cost opens nothing");
    }

    #[test]
    fn stream_processes_all_blocks() {
        let points = clustered_points(90, 2, 5, 17);
        let result = stream_cluster_seq(&points, 2, 40, 1.0, 2, 16);
        assert_eq!(result.centers_per_block.len(), 3);
        assert_eq!(result.cost_per_block.len(), 3);
        assert!(result.total_cost() >= 0.0);
        // Determinism.
        assert_eq!(result, stream_cluster_seq(&points, 2, 40, 1.0, 2, 16));
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_size_panics() {
        let points = clustered_points(10, 2, 2, 0);
        let _ = stream_cluster_seq(&points, 2, 0, 1.0, 1, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The gain of a candidate equals the actual cost reduction obtained
        /// by applying it.
        #[test]
        fn prop_gain_equals_cost_reduction(n in 5usize..60, seed in 0u64..30, cand_frac in 0.0f64..1.0) {
            let points = clustered_points(n, 2, 3, seed);
            let mut state = ClusterState::singleton(&points, 2);
            let candidate = ((n - 1) as f64 * cand_frac) as usize;
            let before = state.total_cost();
            let (gain, switchers) = gain_range(&points, 2, &state, candidate, 0..n);
            apply_open(&points, 2, &mut state, candidate, &switchers);
            let after = state.total_cost();
            prop_assert!((before - after - gain).abs() < 1e-2,
                "gain {gain} vs actual reduction {}", before - after);
            prop_assert!(gain >= 0.0);
        }

        /// Every point's recorded cost matches the distance to its assigned
        /// centre after a local search.
        #[test]
        fn prop_costs_consistent_after_search(n in 5usize..50, seed in 0u64..20) {
            let points = clustered_points(n, 2, 3, seed);
            let state = local_search_seq(&points, 2, 0.5, 2, 8);
            for p in 0..n {
                let c = state.assignment[p] as usize;
                let d = distance2(&points[p*2..p*2+2], &points[c*2..c*2+2]);
                prop_assert!((d - state.cost[p]).abs() < 1e-4);
            }
        }
    }
}

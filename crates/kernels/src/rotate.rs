//! `rotate`: arbitrary-angle image rotation with bilinear interpolation.
//!
//! The benchmark rotates an RGB image about its centre by a given angle.
//! Each output scanline depends only on the (read-only) source image, so the
//! natural work unit — in both the Pthreads and OmpSs variants — is a band of
//! output rows: [`rotate_rows`]. [`rotate`] is the sequential reference.

use crate::image::ImageRgb;

/// Sample the source image at a fractional position with bilinear
/// interpolation; out-of-bounds samples are black.
fn sample_bilinear(src: &ImageRgb, x: f64, y: f64) -> [u8; 3] {
    if x < 0.0 || y < 0.0 {
        return [0, 0, 0];
    }
    let x0 = x.floor() as usize;
    let y0 = y.floor() as usize;
    if x0 + 1 >= src.width || y0 + 1 >= src.height {
        // Clamp exact-edge hits; everything farther out is black.
        if x0 < src.width && y0 < src.height && (x - x0 as f64) < 1e-9 && (y - y0 as f64) < 1e-9 {
            return src.get(x0, y0);
        }
        return [0, 0, 0];
    }
    let fx = x - x0 as f64;
    let fy = y - y0 as f64;
    let p00 = src.get(x0, y0);
    let p10 = src.get(x0 + 1, y0);
    let p01 = src.get(x0, y0 + 1);
    let p11 = src.get(x0 + 1, y0 + 1);
    let mut out = [0u8; 3];
    for c in 0..3 {
        let top = p00[c] as f64 * (1.0 - fx) + p10[c] as f64 * fx;
        let bottom = p01[c] as f64 * (1.0 - fx) + p11[c] as f64 * fx;
        out[c] = (top * (1.0 - fy) + bottom * fy).round().clamp(0.0, 255.0) as u8;
    }
    out
}

/// Rotate rows `rows` of the output image (which has the same dimensions as
/// `src`) by `angle_rad` about the image centre, writing interleaved RGB into
/// `out_rows`. `out_rows` must hold `3 * src.width * rows.len()` bytes.
///
/// # Panics
/// Panics if the output buffer size does not match.
pub fn rotate_rows(
    src: &ImageRgb,
    angle_rad: f64,
    rows: std::ops::Range<usize>,
    out_rows: &mut [u8],
) {
    assert_eq!(
        out_rows.len(),
        3 * src.width * rows.len(),
        "output buffer size mismatch"
    );
    let (sin_a, cos_a) = angle_rad.sin_cos();
    let cx = (src.width as f64 - 1.0) / 2.0;
    let cy = (src.height as f64 - 1.0) / 2.0;
    for (ri, y) in rows.enumerate() {
        for x in 0..src.width {
            // Inverse mapping: rotate the destination pixel back into the
            // source frame.
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            let sx = cos_a * dx + sin_a * dy + cx;
            let sy = -sin_a * dx + cos_a * dy + cy;
            let rgb = sample_bilinear(src, sx, sy);
            let o = 3 * (ri * src.width + x);
            out_rows[o..o + 3].copy_from_slice(&rgb);
        }
    }
}

/// Sequential reference: rotate the whole image.
pub fn rotate(src: &ImageRgb, angle_rad: f64) -> ImageRgb {
    let mut out = ImageRgb::new(src.width, src.height);
    let range = 0..src.height;
    rotate_rows(src, angle_rad, range, &mut out.data);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthetic_rgb_image;
    use proptest::prelude::*;

    #[test]
    fn zero_rotation_is_identity() {
        let img = synthetic_rgb_image(31, 17, 42);
        let out = rotate(&img, 0.0);
        assert_eq!(out.data, img.data);
    }

    #[test]
    fn rotation_preserves_dimensions() {
        let img = synthetic_rgb_image(20, 10, 1);
        let out = rotate(&img, 0.7);
        assert_eq!(out.width, 20);
        assert_eq!(out.height, 10);
        assert_eq!(out.data.len(), img.data.len());
    }

    #[test]
    fn half_turn_twice_is_near_identity_in_center() {
        // Rotating 180° twice should reproduce the original almost exactly
        // away from the borders (bilinear sampling at half-integer centres is
        // exact for 180°).
        let img = synthetic_rgb_image(33, 33, 7);
        let once = rotate(&img, std::f64::consts::PI);
        let twice = rotate(&once, std::f64::consts::PI);
        let mut diffs = 0usize;
        for y in 4..29 {
            for x in 4..29 {
                let a = img.get(x, y);
                let b = twice.get(x, y);
                if (0..3).any(|c| (a[c] as i32 - b[c] as i32).abs() > 2) {
                    diffs += 1;
                }
            }
        }
        assert_eq!(diffs, 0, "centre pixels must survive two half turns");
    }

    #[test]
    fn row_band_matches_full_rotation() {
        let img = synthetic_rgb_image(25, 19, 3);
        let angle = 0.35;
        let full = rotate(&img, angle);
        let rows = 5..9;
        let mut band = vec![0u8; 3 * img.width * rows.len()];
        rotate_rows(&img, angle, rows.clone(), &mut band);
        let expected = &full.data[3 * img.width * rows.start..3 * img.width * rows.end];
        assert_eq!(&band[..], expected);
    }

    #[test]
    #[should_panic(expected = "output buffer size mismatch")]
    fn wrong_output_buffer_panics() {
        let img = synthetic_rgb_image(8, 8, 0);
        let mut buf = vec![0u8; 5];
        rotate_rows(&img, 0.3, 0..2, &mut buf);
    }

    #[test]
    fn out_of_bounds_samples_are_black() {
        // Rotating a bright image by 45° leaves black corners.
        let mut img = ImageRgb::new(16, 16);
        for v in img.data.iter_mut() {
            *v = 255;
        }
        let out = rotate(&img, std::f64::consts::FRAC_PI_4);
        assert_eq!(out.get(0, 0), [0, 0, 0]);
        assert_eq!(out.get(15, 15), [0, 0, 0]);
        // Centre stays bright.
        assert_eq!(out.get(8, 8), [255, 255, 255]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any band of rows reproduces the corresponding slice of the full
        /// rotation (i.e. the parallel decomposition is exact).
        #[test]
        fn prop_bands_compose(w in 4usize..40, h in 4usize..32, angle in -3.2f64..3.2,
                              split_frac in 0.1f64..0.9) {
            let img = synthetic_rgb_image(w, h, 11);
            let full = rotate(&img, angle);
            let split = ((h as f64) * split_frac) as usize;
            let split = split.clamp(1, h - 1);
            let mut top = vec![0u8; 3 * w * split];
            let mut bottom = vec![0u8; 3 * w * (h - split)];
            rotate_rows(&img, angle, 0..split, &mut top);
            rotate_rows(&img, angle, split..h, &mut bottom);
            let mut combined = top;
            combined.extend_from_slice(&bottom);
            prop_assert_eq!(combined, full.data);
        }
    }
}

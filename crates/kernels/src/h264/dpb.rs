//! The Picture Info Buffer (PIB) and Decoded Picture Buffer (DPB).
//!
//! In the paper's decoder these two buffers are deliberately **hidden from
//! the dependence system**: which entry a task will use is only known when
//! the task executes, so the buffers are not named in any `input`/`output`
//! clause. Instead, the fetch and release operations inside the task bodies
//! are protected with `omp critical`. The types here reproduce that
//! structure: `fetch_*` finds and claims a free entry, `release` returns it;
//! callers are responsible for wrapping the calls in a critical section (the
//! OmpSs benchmark variant does exactly that, and the unit tests exercise the
//! unsynchronised single-thread behaviour).

use super::model::{DecodedFrame, FrameHeader};

/// One entry of the Picture Info Buffer: header metadata for an in-flight
/// frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PictureInfo {
    /// Header parsed for this frame.
    pub header: FrameHeader,
    /// Whether this entry is currently claimed.
    pub in_use: bool,
}

/// The Picture Info Buffer: a fixed pool of picture-metadata entries.
#[derive(Debug, Clone)]
pub struct PictureInfoBuffer {
    entries: Vec<Option<PictureInfo>>,
}

impl PictureInfoBuffer {
    /// Create a buffer with `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PIB capacity must be positive");
        PictureInfoBuffer {
            entries: vec![None; capacity],
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of claimed entries.
    pub fn in_use(&self) -> usize {
        self.entries.iter().flatten().filter(|e| e.in_use).count()
    }

    /// Claim a free entry for `header`, returning its index; `None` when the
    /// pool is exhausted.
    pub fn fetch(&mut self, header: FrameHeader) -> Option<usize> {
        for (i, slot) in self.entries.iter_mut().enumerate() {
            let free = slot.as_ref().is_none_or(|e| !e.in_use);
            if free {
                *slot = Some(PictureInfo {
                    header,
                    in_use: true,
                });
                return Some(i);
            }
        }
        None
    }

    /// Read the entry at `index`.
    pub fn get(&self, index: usize) -> Option<&PictureInfo> {
        self.entries.get(index).and_then(|e| e.as_ref())
    }

    /// Release the entry at `index`.
    ///
    /// # Panics
    /// Panics if the entry is not currently claimed.
    pub fn release(&mut self, index: usize) {
        let entry = self.entries[index]
            .as_mut()
            .expect("releasing an empty PIB entry");
        assert!(entry.in_use, "releasing a PIB entry that is not in use");
        entry.in_use = false;
    }
}

/// One entry of the Decoded Picture Buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DpbEntry {
    frame: DecodedFrame,
    /// Claimed by a reconstruction in progress or still needed as a
    /// reference / for output.
    in_use: bool,
}

/// The Decoded Picture Buffer: a fixed pool of frame-sized pixel buffers that
/// reconstruction allocates from and the output stage releases.
#[derive(Debug, Clone)]
pub struct DecodedPictureBuffer {
    entries: Vec<Option<DpbEntry>>,
    width: usize,
    height: usize,
}

impl DecodedPictureBuffer {
    /// Create a DPB of `capacity` frame buffers of the given dimensions.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, width: usize, height: usize) -> Self {
        assert!(capacity > 0, "DPB capacity must be positive");
        DecodedPictureBuffer {
            entries: vec![None; capacity],
            width,
            height,
        }
    }

    /// Number of frame buffers.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of claimed buffers.
    pub fn in_use(&self) -> usize {
        self.entries.iter().flatten().filter(|e| e.in_use).count()
    }

    /// Claim a free buffer for frame `frame_num`, returning its index;
    /// `None` when the pool is exhausted.
    pub fn fetch(&mut self, frame_num: u32) -> Option<usize> {
        for (i, slot) in self.entries.iter_mut().enumerate() {
            let free = slot.as_ref().is_none_or(|e| !e.in_use);
            if free {
                *slot = Some(DpbEntry {
                    frame: DecodedFrame::new(frame_num, self.width, self.height),
                    in_use: true,
                });
                return Some(i);
            }
        }
        None
    }

    /// Store reconstructed pixels into the buffer at `index`.
    ///
    /// # Panics
    /// Panics if the entry is not claimed or the pixel count mismatches.
    pub fn store(&mut self, index: usize, frame: DecodedFrame) {
        let entry = self.entries[index]
            .as_mut()
            .expect("storing into an empty DPB entry");
        assert!(entry.in_use, "storing into a DPB entry that is not in use");
        assert_eq!(
            frame.pixels.len(),
            self.width * self.height,
            "pixel count mismatch"
        );
        entry.frame = frame;
    }

    /// Read the frame stored at `index`.
    pub fn get(&self, index: usize) -> Option<&DecodedFrame> {
        self.entries
            .get(index)
            .and_then(|e| e.as_ref())
            .map(|e| &e.frame)
    }

    /// Find the buffer currently holding frame `frame_num` (used to locate
    /// the reference frame of a P frame).
    pub fn find_frame(&self, frame_num: u32) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.as_ref()
                .is_some_and(|e| e.in_use && e.frame.frame_num == frame_num)
        })
    }

    /// Release the buffer at `index` so it can be reused.
    ///
    /// # Panics
    /// Panics if the entry is not currently claimed.
    pub fn release(&mut self, index: usize) {
        let entry = self.entries[index]
            .as_mut()
            .expect("releasing an empty DPB entry");
        assert!(entry.in_use, "releasing a DPB entry that is not in use");
        entry.in_use = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h264::model::FrameType;

    fn header(n: u32) -> FrameHeader {
        FrameHeader {
            frame_num: n,
            frame_type: FrameType::Intra,
            mb_cols: 2,
            mb_rows: 2,
        }
    }

    #[test]
    #[should_panic(expected = "PIB capacity must be positive")]
    fn zero_capacity_pib_panics() {
        let _ = PictureInfoBuffer::new(0);
    }

    #[test]
    fn pib_fetch_release_cycle() {
        let mut pib = PictureInfoBuffer::new(2);
        let a = pib.fetch(header(0)).unwrap();
        let b = pib.fetch(header(1)).unwrap();
        assert_ne!(a, b);
        assert_eq!(pib.in_use(), 2);
        assert!(pib.fetch(header(2)).is_none(), "pool exhausted");
        pib.release(a);
        assert_eq!(pib.in_use(), 1);
        let c = pib.fetch(header(3)).unwrap();
        assert_eq!(c, a, "released entry is reused");
        assert_eq!(pib.get(c).unwrap().header.frame_num, 3);
    }

    #[test]
    #[should_panic(expected = "not in use")]
    fn pib_double_release_panics() {
        let mut pib = PictureInfoBuffer::new(1);
        let i = pib.fetch(header(0)).unwrap();
        pib.release(i);
        pib.release(i);
    }

    #[test]
    fn dpb_fetch_store_find_release() {
        let mut dpb = DecodedPictureBuffer::new(3, 16, 16);
        assert_eq!(dpb.capacity(), 3);
        let i0 = dpb.fetch(0).unwrap();
        let i1 = dpb.fetch(1).unwrap();
        assert_eq!(dpb.in_use(), 2);
        let mut f = DecodedFrame::new(1, 16, 16);
        f.pixels[0] = 42;
        dpb.store(i1, f);
        assert_eq!(dpb.get(i1).unwrap().pixels[0], 42);
        assert_eq!(dpb.find_frame(1), Some(i1));
        assert_eq!(dpb.find_frame(0), Some(i0));
        assert_eq!(dpb.find_frame(9), None);
        dpb.release(i0);
        assert_eq!(dpb.find_frame(0), None, "released frames are not found");
    }

    #[test]
    fn dpb_exhaustion_and_reuse() {
        let mut dpb = DecodedPictureBuffer::new(2, 16, 16);
        let a = dpb.fetch(0).unwrap();
        let _b = dpb.fetch(1).unwrap();
        assert!(dpb.fetch(2).is_none());
        dpb.release(a);
        let c = dpb.fetch(2).unwrap();
        assert_eq!(c, a);
        assert_eq!(dpb.get(c).unwrap().frame_num, 2);
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn dpb_store_wrong_size_panics() {
        let mut dpb = DecodedPictureBuffer::new(1, 16, 16);
        let i = dpb.fetch(0).unwrap();
        dpb.store(i, DecodedFrame::new(0, 8, 8));
    }
}

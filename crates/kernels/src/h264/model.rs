//! Frame / macroblock model, synthetic video generation, and the encoder.
//!
//! The codec is deliberately lossless: prediction (intra DC or motion
//! compensation) plus exp-Golomb-coded residuals reproduce the source frame
//! exactly, which makes `decode(encode(v)) == v` the correctness oracle for
//! every decoder variant in the benchmark suite.

use rand::Rng;

use super::bitstream::{BitReader, BitWriter};
use crate::workload::rng;

/// Macroblock edge length in pixels.
pub const MB_SIZE: usize = 16;

/// Start-code marker placed before every encoded frame (mimics the H.264
/// Annex-B start code).
pub const START_CODE: u32 = 0x0000_0101;

/// Frame coding type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Intra frame: predicted from a constant, no reference needed.
    Intra,
    /// Predicted frame: motion compensated from the previous decoded frame.
    Predicted,
}

/// Parameters of a synthetic video sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoParams {
    /// Width in pixels (must be a multiple of [`MB_SIZE`]).
    pub width: usize,
    /// Height in pixels (must be a multiple of [`MB_SIZE`]).
    pub height: usize,
    /// Number of frames.
    pub frames: usize,
    /// Distance between intra frames (1 = all intra).
    pub gop: usize,
    /// Seed for the synthetic content.
    pub seed: u64,
}

impl Default for VideoParams {
    fn default() -> Self {
        VideoParams {
            width: 64,
            height: 48,
            frames: 16,
            gop: 8,
            seed: 1,
        }
    }
}

impl VideoParams {
    /// Macroblock columns.
    pub fn mb_cols(&self) -> usize {
        self.width / MB_SIZE
    }

    /// Macroblock rows.
    pub fn mb_rows(&self) -> usize {
        self.height / MB_SIZE
    }

    /// Validate the parameters.
    ///
    /// # Panics
    /// Panics if dimensions are not multiples of [`MB_SIZE`] or zero frames
    /// are requested.
    pub fn validate(&self) {
        assert!(
            self.width.is_multiple_of(MB_SIZE) && self.height.is_multiple_of(MB_SIZE),
            "dimensions must be multiples of {MB_SIZE}"
        );
        assert!(self.width > 0 && self.height > 0, "empty frame");
        assert!(self.frames > 0, "need at least one frame");
        assert!(self.gop > 0, "GOP must be positive");
    }
}

/// A decoded (or source) grayscale frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Display/decode order number.
    pub frame_num: u32,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Luma samples, row-major.
    pub pixels: Vec<u8>,
}

impl DecodedFrame {
    /// Create a mid-gray frame.
    pub fn new(frame_num: u32, width: usize, height: usize) -> Self {
        DecodedFrame {
            frame_num,
            width,
            height,
            pixels: vec![128; width * height],
        }
    }

    /// Sample at `(x, y)`, clamping coordinates to the frame (used by motion
    /// compensation near edges).
    pub fn sample_clamped(&self, x: isize, y: isize) -> u8 {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[yc * self.width + xc]
    }

    /// Order-dependent checksum of the pixels.
    pub fn checksum(&self) -> u64 {
        crate::image::fletcher64(&self.pixels)
    }
}

/// Header of an encoded frame (what the parse stage extracts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Decode-order frame number.
    pub frame_num: u32,
    /// Frame coding type.
    pub frame_type: FrameType,
    /// Macroblock columns.
    pub mb_cols: usize,
    /// Macroblock rows.
    pub mb_rows: usize,
}

/// Syntax elements of one macroblock (what entropy decoding extracts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroblockSyntax {
    /// Motion vector (x, y) in pixels; `(0, 0)` for intra macroblocks.
    pub mv: (i32, i32),
    /// Residual samples, `MB_SIZE * MB_SIZE` values.
    pub residuals: Vec<i32>,
}

/// One encoded frame: header fields plus the entropy-coded macroblock
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Decode-order frame number.
    pub frame_num: u32,
    /// Frame coding type.
    pub frame_type: FrameType,
    /// Macroblock columns.
    pub mb_cols: usize,
    /// Macroblock rows.
    pub mb_rows: usize,
    /// Entropy-coded macroblock data.
    pub payload: Vec<u8>,
}

/// A whole encoded sequence: a single byte stream plus its parameters, the
/// input of the `read` stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedStream {
    /// Sequence parameters.
    pub params: VideoParams,
    /// Concatenated encoded frames, each preceded by a start code and a
    /// 32-bit payload length.
    pub bytes: Vec<u8>,
}

impl EncodedStream {
    /// Total size of the stream in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the stream contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Generate a deterministic synthetic video: a moving bright rectangle and a
/// diagonal gradient over a noisy background, with global panning so that
/// P-frames have real motion to chase.
pub fn generate_video(params: &VideoParams) -> Vec<DecodedFrame> {
    params.validate();
    let mut r = rng(params.seed);
    let noise: Vec<u8> = (0..params.width * params.height)
        .map(|_| r.gen_range(0..24u8))
        .collect();
    let mut frames = Vec::with_capacity(params.frames);
    for f in 0..params.frames {
        let mut frame = DecodedFrame::new(f as u32, params.width, params.height);
        let pan_x = (2 * f) % params.width;
        let rect_x = (params.width / 4 + 3 * f) % params.width;
        let rect_y = (params.height / 4 + f) % params.height;
        for y in 0..params.height {
            for x in 0..params.width {
                let gx = (x + pan_x) % params.width;
                let base = ((gx * 255 / params.width) + (y * 128 / params.height)) as u16;
                let mut v = (base % 256) as u8;
                // Bright moving rectangle.
                let in_rect = (x as isize - rect_x as isize).rem_euclid(params.width as isize)
                    < (params.width / 6) as isize
                    && (y as isize - rect_y as isize).rem_euclid(params.height as isize)
                        < (params.height / 6) as isize;
                if in_rect {
                    v = v.saturating_add(90);
                }
                v = v.wrapping_add(noise[y * params.width + x] / 2);
                frame.pixels[y * params.width + x] = v;
            }
        }
        frames.push(frame);
    }
    frames
}

/// Motion search window radius in pixels (small, keeps encoding cheap).
const SEARCH_RADIUS: i32 = 4;

fn sad_block(
    cur: &DecodedFrame,
    reference: &DecodedFrame,
    mb_x: usize,
    mb_y: usize,
    mv: (i32, i32),
) -> u64 {
    let mut sad = 0u64;
    for dy in 0..MB_SIZE {
        for dx in 0..MB_SIZE {
            let cx = mb_x * MB_SIZE + dx;
            let cy = mb_y * MB_SIZE + dy;
            let cur_pix = cur.pixels[cy * cur.width + cx];
            let ref_pix = reference.sample_clamped(cx as isize + mv.0 as isize, cy as isize + mv.1 as isize);
            sad += (cur_pix as i64 - ref_pix as i64).unsigned_abs();
        }
    }
    sad
}

/// Full-search motion estimation for one macroblock.
fn motion_search(
    cur: &DecodedFrame,
    reference: &DecodedFrame,
    mb_x: usize,
    mb_y: usize,
) -> (i32, i32) {
    let mut best = (0, 0);
    let mut best_sad = sad_block(cur, reference, mb_x, mb_y, (0, 0));
    for my in -SEARCH_RADIUS..=SEARCH_RADIUS {
        for mx in -SEARCH_RADIUS..=SEARCH_RADIUS {
            if (mx, my) == (0, 0) {
                continue;
            }
            let sad = sad_block(cur, reference, mb_x, mb_y, (mx, my));
            if sad < best_sad {
                best_sad = sad;
                best = (mx, my);
            }
        }
    }
    best
}

/// Prediction for one macroblock pixel: intra frames predict the constant
/// 128; predicted frames motion-compensate from the reference.
pub fn predict_pixel(
    frame_type: FrameType,
    reference: Option<&DecodedFrame>,
    x: usize,
    y: usize,
    mv: (i32, i32),
) -> u8 {
    match frame_type {
        FrameType::Intra => 128,
        FrameType::Predicted => {
            let r = reference.expect("P frame needs a reference");
            r.sample_clamped(x as isize + mv.0 as isize, y as isize + mv.1 as isize)
        }
    }
}

/// Encode one frame against an optional reference, producing the macroblock
/// payload (motion vectors + residuals, exp-Golomb coded).
pub fn encode_frame(
    frame: &DecodedFrame,
    reference: Option<&DecodedFrame>,
    frame_type: FrameType,
    mb_cols: usize,
    mb_rows: usize,
) -> EncodedFrame {
    let mut w = BitWriter::new();
    for mb_y in 0..mb_rows {
        for mb_x in 0..mb_cols {
            let mv = match (frame_type, reference) {
                (FrameType::Predicted, Some(r)) => motion_search(frame, r, mb_x, mb_y),
                _ => (0, 0),
            };
            if frame_type == FrameType::Predicted {
                w.put_se(mv.0);
                w.put_se(mv.1);
            }
            for dy in 0..MB_SIZE {
                for dx in 0..MB_SIZE {
                    let x = mb_x * MB_SIZE + dx;
                    let y = mb_y * MB_SIZE + dy;
                    let pred = predict_pixel(frame_type, reference, x, y, mv);
                    let residual = frame.pixels[y * frame.width + x] as i32 - pred as i32;
                    w.put_se(residual);
                }
            }
        }
    }
    EncodedFrame {
        frame_num: frame.frame_num,
        frame_type,
        mb_cols,
        mb_rows,
        payload: w.finish(),
    }
}

/// Encode a whole sequence into a single byte stream (the decoder's input).
pub fn encode_sequence(params: &VideoParams, frames: &[DecodedFrame]) -> EncodedStream {
    params.validate();
    let mut bytes = Vec::new();
    let mut previous: Option<&DecodedFrame> = None;
    for (i, frame) in frames.iter().enumerate() {
        let frame_type = if i % params.gop == 0 {
            FrameType::Intra
        } else {
            FrameType::Predicted
        };
        let reference = if frame_type == FrameType::Predicted {
            previous
        } else {
            None
        };
        let encoded = encode_frame(frame, reference, frame_type, params.mb_cols(), params.mb_rows());
        // Container framing: start code, frame_num, type, payload length,
        // payload.
        bytes.extend_from_slice(&START_CODE.to_be_bytes());
        bytes.extend_from_slice(&encoded.frame_num.to_be_bytes());
        bytes.push(match encoded.frame_type {
            FrameType::Intra => 0,
            FrameType::Predicted => 1,
        });
        bytes.extend_from_slice(&(encoded.payload.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&encoded.payload);
        previous = Some(frame);
    }
    EncodedStream {
        params: *params,
        bytes,
    }
}

/// Decode the macroblock payload of one frame into per-macroblock syntax
/// elements (the entropy-decode stage's computation).
pub fn parse_macroblocks(
    payload: &[u8],
    frame_type: FrameType,
    mb_cols: usize,
    mb_rows: usize,
) -> Vec<MacroblockSyntax> {
    let mut r = BitReader::new(payload);
    let mut out = Vec::with_capacity(mb_cols * mb_rows);
    for _ in 0..mb_cols * mb_rows {
        let mv = if frame_type == FrameType::Predicted {
            (
                r.get_se().expect("truncated motion vector"),
                r.get_se().expect("truncated motion vector"),
            )
        } else {
            (0, 0)
        };
        let residuals: Vec<i32> = (0..MB_SIZE * MB_SIZE)
            .map(|_| r.get_se().expect("truncated residual"))
            .collect();
        out.push(MacroblockSyntax { mv, residuals });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> VideoParams {
        VideoParams {
            width: 32,
            height: 32,
            frames: 5,
            gop: 3,
            seed: 7,
        }
    }

    #[test]
    fn video_generation_is_deterministic_and_moving() {
        let p = tiny_params();
        let a = generate_video(&p);
        let b = generate_video(&p);
        assert_eq!(a.len(), 5);
        assert_eq!(a, b);
        // Consecutive frames differ (there is motion).
        assert_ne!(a[0].pixels, a[1].pixels);
    }

    #[test]
    #[should_panic(expected = "multiples of 16")]
    fn invalid_dimensions_panic() {
        let p = VideoParams {
            width: 20,
            ..tiny_params()
        };
        let _ = generate_video(&p);
    }

    #[test]
    fn sample_clamped_handles_out_of_bounds() {
        let mut f = DecodedFrame::new(0, 16, 16);
        f.pixels[0] = 50;
        f.pixels[16 * 16 - 1] = 200;
        assert_eq!(f.sample_clamped(-5, -5), 50);
        assert_eq!(f.sample_clamped(100, 100), 200);
    }

    #[test]
    fn intra_frame_roundtrip_is_lossless() {
        let p = VideoParams {
            frames: 1,
            gop: 1,
            ..tiny_params()
        };
        let video = generate_video(&p);
        let enc = encode_frame(&video[0], None, FrameType::Intra, p.mb_cols(), p.mb_rows());
        let mbs = parse_macroblocks(&enc.payload, FrameType::Intra, p.mb_cols(), p.mb_rows());
        assert_eq!(mbs.len(), p.mb_cols() * p.mb_rows());
        // Reconstruct manually and compare.
        let mut rec = DecodedFrame::new(0, p.width, p.height);
        for (mb_i, mb) in mbs.iter().enumerate() {
            let mb_x = mb_i % p.mb_cols();
            let mb_y = mb_i / p.mb_cols();
            for dy in 0..MB_SIZE {
                for dx in 0..MB_SIZE {
                    let x = mb_x * MB_SIZE + dx;
                    let y = mb_y * MB_SIZE + dy;
                    let pred = predict_pixel(FrameType::Intra, None, x, y, mb.mv) as i32;
                    rec.pixels[y * p.width + x] =
                        (pred + mb.residuals[dy * MB_SIZE + dx]).clamp(0, 255) as u8;
                }
            }
        }
        assert_eq!(rec.pixels, video[0].pixels);
    }

    #[test]
    fn motion_search_finds_exact_translation() {
        // Reference frame with a pattern; current = reference shifted by
        // (2, 1): the search must find mv = (2, 1) for an interior block.
        let p = VideoParams {
            width: 64,
            height: 64,
            frames: 1,
            gop: 1,
            seed: 3,
        };
        let reference = &generate_video(&p)[0];
        let mut current = reference.clone();
        for y in 0..64usize {
            for x in 0..64usize {
                current.pixels[y * 64 + x] =
                    reference.sample_clamped(x as isize + 2, y as isize + 1);
            }
        }
        let mv = motion_search(&current, reference, 1, 1);
        assert_eq!(mv, (2, 1));
    }

    #[test]
    fn encode_sequence_framing_is_parseable() {
        let p = tiny_params();
        let video = generate_video(&p);
        let stream = encode_sequence(&p, &video);
        assert!(!stream.is_empty());
        // First four bytes are the start code.
        assert_eq!(&stream.bytes[0..4], &START_CODE.to_be_bytes());
        // Frame number of the first frame is zero.
        assert_eq!(&stream.bytes[4..8], &0u32.to_be_bytes());
        // Frame type byte of the first frame is Intra.
        assert_eq!(stream.bytes[8], 0);
    }

    #[test]
    fn p_frames_are_smaller_than_i_frames_for_smooth_motion() {
        let p = VideoParams {
            width: 64,
            height: 48,
            frames: 4,
            gop: 4,
            seed: 2,
        };
        let video = generate_video(&p);
        let i_frame = encode_frame(&video[1], None, FrameType::Intra, p.mb_cols(), p.mb_rows());
        let p_frame = encode_frame(
            &video[1],
            Some(&video[0]),
            FrameType::Predicted,
            p.mb_cols(),
            p.mb_rows(),
        );
        assert!(
            p_frame.payload.len() < i_frame.payload.len(),
            "motion compensation must shrink the payload ({} vs {})",
            p_frame.payload.len(),
            i_frame.payload.len()
        );
    }
}

//! The five decoder stages of Listing 1 and the sequential reference decoder.
//!
//! Every stage is a plain function over an explicit context struct — exactly
//! the `read_frame_task(rc, …)`, `parse_header_task(nc, …)` … functions of
//! the paper's pipelined main loop — so that the benchmark variants can wrap
//! the *same* stage code in OmpSs tasks, Pthreads pipeline stages, or a plain
//! sequential loop.

use std::collections::BTreeMap;

use super::dpb::{DecodedPictureBuffer, PictureInfoBuffer};
use super::model::{
    parse_macroblocks, predict_pixel, DecodedFrame, EncodedFrame, EncodedStream, FrameHeader,
    FrameType, MacroblockSyntax, START_CODE, MB_SIZE,
};

/// Context of the read stage: the raw byte stream plus a cursor.
#[derive(Debug, Clone)]
pub struct ReadContext {
    bytes: Vec<u8>,
    cursor: usize,
    /// Frames read so far.
    pub frames_read: u32,
}

impl ReadContext {
    /// Create a read context over an encoded stream.
    pub fn new(stream: &EncodedStream) -> Self {
        ReadContext {
            bytes: stream.bytes.clone(),
            cursor: 0,
            frames_read: 0,
        }
    }

    /// Whether the whole stream has been consumed.
    pub fn at_eof(&self) -> bool {
        self.cursor >= self.bytes.len()
    }
}

/// Read stage: extract the next encoded frame from the bitstream, or `None`
/// at end of stream. Mirrors `read_frame_task(rc, &frm[k%N])`.
pub fn read_frame(rc: &mut ReadContext) -> Option<EncodedFrame> {
    if rc.at_eof() {
        return None;
    }
    let b = &rc.bytes;
    let mut pos = rc.cursor;
    let take_u32 = |pos: &mut usize| -> u32 {
        let v = u32::from_be_bytes([b[*pos], b[*pos + 1], b[*pos + 2], b[*pos + 3]]);
        *pos += 4;
        v
    };
    let start = take_u32(&mut pos);
    assert_eq!(start, START_CODE, "corrupt stream: missing start code");
    let frame_num = take_u32(&mut pos);
    let type_byte = b[pos];
    pos += 1;
    let frame_type = if type_byte == 0 {
        FrameType::Intra
    } else {
        FrameType::Predicted
    };
    let payload_len = take_u32(&mut pos) as usize;
    let payload = b[pos..pos + payload_len].to_vec();
    pos += payload_len;
    rc.cursor = pos;
    rc.frames_read += 1;
    Some(EncodedFrame {
        frame_num,
        frame_type,
        // Columns/rows are filled in by the parse stage from the sequence
        // parameters; the bitstream itself does not repeat them per frame.
        mb_cols: 0,
        mb_rows: 0,
        payload,
    })
}

/// Context of the parse stage: sequence-level parameters.
#[derive(Debug, Clone)]
pub struct NalContext {
    /// Macroblock columns of the sequence.
    pub mb_cols: usize,
    /// Macroblock rows of the sequence.
    pub mb_rows: usize,
    /// Frames parsed so far.
    pub frames_parsed: u32,
}

impl NalContext {
    /// Create a parse context from the stream parameters.
    pub fn new(stream: &EncodedStream) -> Self {
        NalContext {
            mb_cols: stream.params.mb_cols(),
            mb_rows: stream.params.mb_rows(),
            frames_parsed: 0,
        }
    }
}

/// Parse stage: extract the frame header (and let the caller allocate a
/// Picture Info entry). Mirrors `parse_header_task(nc, &slice, &frm)`.
pub fn parse_header(nc: &mut NalContext, frame: &EncodedFrame) -> FrameHeader {
    nc.frames_parsed += 1;
    FrameHeader {
        frame_num: frame.frame_num,
        frame_type: frame.frame_type,
        mb_cols: nc.mb_cols,
        mb_rows: nc.mb_rows,
    }
}

/// Context of the entropy-decode stage.
#[derive(Debug, Clone, Default)]
pub struct EntropyContext {
    /// Macroblocks decoded so far.
    pub mbs_decoded: u64,
}

/// Entropy-decode stage: turn the frame payload into per-macroblock syntax
/// elements. Mirrors `entropy_decode_task(ec, …)`.
pub fn entropy_decode_frame(
    ec: &mut EntropyContext,
    frame: &EncodedFrame,
    header: &FrameHeader,
) -> Vec<MacroblockSyntax> {
    let mbs = parse_macroblocks(
        &frame.payload,
        header.frame_type,
        header.mb_cols,
        header.mb_rows,
    );
    ec.mbs_decoded += mbs.len() as u64;
    mbs
}

/// Context of the reconstruction stage: remembers the last reconstructed
/// frame so P frames can reference it.
#[derive(Debug, Clone, Default)]
pub struct ReconstructContext {
    /// Frames reconstructed so far.
    pub frames_reconstructed: u32,
}

/// Reconstruct a band of macroblock rows `mb_row_range` of one frame into
/// `pixels` (a full-frame buffer). This is the intra-frame work unit used by
/// the task-granularity experiments.
pub fn reconstruct_mb_rows(
    header: &FrameHeader,
    mbs: &[MacroblockSyntax],
    reference: Option<&DecodedFrame>,
    mb_row_range: std::ops::Range<usize>,
    pixels: &mut [u8],
) {
    let width = header.mb_cols * MB_SIZE;
    for mb_y in mb_row_range {
        for mb_x in 0..header.mb_cols {
            let mb = &mbs[mb_y * header.mb_cols + mb_x];
            for dy in 0..MB_SIZE {
                for dx in 0..MB_SIZE {
                    let x = mb_x * MB_SIZE + dx;
                    let y = mb_y * MB_SIZE + dy;
                    let pred = predict_pixel(header.frame_type, reference, x, y, mb.mv) as i32;
                    pixels[y * width + x] =
                        (pred + mb.residuals[dy * MB_SIZE + dx]).clamp(0, 255) as u8;
                }
            }
        }
    }
}

/// Reconstruction stage: rebuild the whole frame from syntax elements and the
/// reference frame. Mirrors `reconstruct_task(rc, …)`.
pub fn reconstruct_frame(
    ctx: &mut ReconstructContext,
    header: &FrameHeader,
    mbs: &[MacroblockSyntax],
    reference: Option<&DecodedFrame>,
) -> DecodedFrame {
    let width = header.mb_cols * MB_SIZE;
    let height = header.mb_rows * MB_SIZE;
    let mut frame = DecodedFrame::new(header.frame_num, width, height);
    reconstruct_mb_rows(header, mbs, reference, 0..header.mb_rows, &mut frame.pixels);
    ctx.frames_reconstructed += 1;
    frame
}

/// Context of the output stage: a reorder buffer emitting frames in
/// `frame_num` order.
#[derive(Debug, Clone, Default)]
pub struct OutputContext {
    next_expected: u32,
    pending: BTreeMap<u32, DecodedFrame>,
    /// Frames emitted so far, in display order.
    pub emitted: Vec<DecodedFrame>,
}

impl OutputContext {
    /// Create an empty output context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames emitted in order so far.
    pub fn emitted_count(&self) -> usize {
        self.emitted.len()
    }

    /// Number of frames waiting in the reorder buffer.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

/// Output stage: insert the frame into the reorder buffer and emit every
/// frame that is now in order. Mirrors `output_task(oc, &pic)`.
pub fn output_frame(oc: &mut OutputContext, frame: DecodedFrame) {
    oc.pending.insert(frame.frame_num, frame);
    while let Some(f) = oc.pending.remove(&oc.next_expected) {
        oc.emitted.push(f);
        oc.next_expected += 1;
    }
}

/// All five contexts plus the hidden buffers, bundled for convenience.
#[derive(Debug)]
pub struct DecoderContexts {
    /// Read-stage context.
    pub rc: ReadContext,
    /// Parse-stage context.
    pub nc: NalContext,
    /// Entropy-decode context.
    pub ec: EntropyContext,
    /// Reconstruction context.
    pub rec: ReconstructContext,
    /// Output context.
    pub oc: OutputContext,
    /// Picture Info Buffer (hidden from dependence analysis in the parallel
    /// variants, protected by critical sections).
    pub pib: PictureInfoBuffer,
    /// Decoded Picture Buffer (likewise hidden).
    pub dpb: DecodedPictureBuffer,
}

impl DecoderContexts {
    /// Create all contexts for decoding `stream` with the given buffer pool
    /// size (the paper uses small fixed pools; `pool` ≥ pipeline depth).
    pub fn new(stream: &EncodedStream, pool: usize) -> Self {
        DecoderContexts {
            rc: ReadContext::new(stream),
            nc: NalContext::new(stream),
            ec: EntropyContext::default(),
            rec: ReconstructContext::default(),
            oc: OutputContext::new(),
            pib: PictureInfoBuffer::new(pool),
            dpb: DecodedPictureBuffer::new(pool, stream.params.width, stream.params.height),
        }
    }
}

/// Sequential reference decoder: runs the five stages frame by frame,
/// exercising the PIB/DPB exactly like the parallel variants do.
pub fn decode_sequence(stream: &EncodedStream, pool: usize) -> Vec<DecodedFrame> {
    let mut ctx = DecoderContexts::new(stream, pool.max(2));
    let mut last_decoded: Option<DecodedFrame> = None;
    while let Some(frame) = read_frame(&mut ctx.rc) {
        let header = parse_header(&mut ctx.nc, &frame);
        let pib_idx = ctx.pib.fetch(header).expect("PIB exhausted");
        let mbs = entropy_decode_frame(&mut ctx.ec, &frame, &header);
        let dpb_idx = ctx.dpb.fetch(header.frame_num).expect("DPB exhausted");
        let decoded = reconstruct_frame(&mut ctx.rec, &header, &mbs, last_decoded.as_ref());
        ctx.dpb.store(dpb_idx, decoded.clone());
        output_frame(&mut ctx.oc, decoded.clone());
        last_decoded = Some(decoded);
        ctx.pib.release(pib_idx);
        ctx.dpb.release(dpb_idx);
    }
    ctx.oc.emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h264::model::{encode_sequence, generate_video, VideoParams};

    fn params() -> VideoParams {
        VideoParams {
            width: 48,
            height: 32,
            frames: 7,
            gop: 3,
            seed: 5,
        }
    }

    #[test]
    fn read_stage_recovers_every_frame() {
        let p = params();
        let video = generate_video(&p);
        let stream = encode_sequence(&p, &video);
        let mut rc = ReadContext::new(&stream);
        let mut count = 0;
        while let Some(frame) = read_frame(&mut rc) {
            assert_eq!(frame.frame_num, count);
            count += 1;
        }
        assert_eq!(count, 7);
        assert!(rc.at_eof());
        assert_eq!(rc.frames_read, 7);
        assert!(read_frame(&mut rc).is_none());
    }

    #[test]
    fn parse_stage_fills_dimensions_and_counts() {
        let p = params();
        let video = generate_video(&p);
        let stream = encode_sequence(&p, &video);
        let mut rc = ReadContext::new(&stream);
        let mut nc = NalContext::new(&stream);
        let frame = read_frame(&mut rc).unwrap();
        let header = parse_header(&mut nc, &frame);
        assert_eq!(header.mb_cols, 3);
        assert_eq!(header.mb_rows, 2);
        assert_eq!(header.frame_type, FrameType::Intra);
        assert_eq!(nc.frames_parsed, 1);
    }

    #[test]
    fn decode_of_encode_is_lossless() {
        let p = params();
        let video = generate_video(&p);
        let stream = encode_sequence(&p, &video);
        let decoded = decode_sequence(&stream, 4);
        assert_eq!(decoded.len(), video.len());
        for (d, v) in decoded.iter().zip(video.iter()) {
            assert_eq!(d.frame_num, v.frame_num);
            assert_eq!(d.pixels, v.pixels, "frame {} mismatch", v.frame_num);
        }
    }

    #[test]
    fn decode_is_lossless_for_all_intra_and_long_gop() {
        for gop in [1, 100] {
            let p = VideoParams { gop, ..params() };
            let video = generate_video(&p);
            let stream = encode_sequence(&p, &video);
            let decoded = decode_sequence(&stream, 3);
            for (d, v) in decoded.iter().zip(video.iter()) {
                assert_eq!(d.pixels, v.pixels, "gop {gop}, frame {}", v.frame_num);
            }
        }
    }

    #[test]
    fn reconstruct_rows_compose_whole_frame() {
        let p = params();
        let video = generate_video(&p);
        let stream = encode_sequence(&p, &video);
        let mut rc = ReadContext::new(&stream);
        let mut nc = NalContext::new(&stream);
        let mut ec = EntropyContext::default();
        let frame = read_frame(&mut rc).unwrap();
        let header = parse_header(&mut nc, &frame);
        let mbs = entropy_decode_frame(&mut ec, &frame, &header);
        let mut whole = vec![0u8; p.width * p.height];
        reconstruct_mb_rows(&header, &mbs, None, 0..header.mb_rows, &mut whole);
        // Row-by-row reconstruction into a second buffer gives the same
        // pixels.
        let mut by_rows = vec![0u8; p.width * p.height];
        for r in 0..header.mb_rows {
            reconstruct_mb_rows(&header, &mbs, None, r..r + 1, &mut by_rows);
        }
        assert_eq!(whole, by_rows);
        assert_eq!(whole, video[0].pixels);
    }

    #[test]
    fn output_stage_reorders_frames() {
        let mut oc = OutputContext::new();
        let f = |n: u32| DecodedFrame::new(n, 16, 16);
        output_frame(&mut oc, f(1));
        assert_eq!(oc.emitted_count(), 0);
        assert_eq!(oc.pending_count(), 1);
        output_frame(&mut oc, f(0));
        assert_eq!(oc.emitted_count(), 2);
        output_frame(&mut oc, f(3));
        output_frame(&mut oc, f(2));
        assert_eq!(oc.emitted_count(), 4);
        let order: Vec<u32> = oc.emitted.iter().map(|x| x.frame_num).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn entropy_stage_counts_macroblocks() {
        let p = params();
        let video = generate_video(&p);
        let stream = encode_sequence(&p, &video);
        let mut rc = ReadContext::new(&stream);
        let mut nc = NalContext::new(&stream);
        let mut ec = EntropyContext::default();
        let frame = read_frame(&mut rc).unwrap();
        let header = parse_header(&mut nc, &frame);
        let mbs = entropy_decode_frame(&mut ec, &frame, &header);
        assert_eq!(mbs.len(), 6);
        assert_eq!(ec.mbs_decoded, 6);
    }

    #[test]
    fn decoder_contexts_pool_sizes() {
        let p = params();
        let video = generate_video(&p);
        let stream = encode_sequence(&p, &video);
        let ctx = DecoderContexts::new(&stream, 5);
        assert_eq!(ctx.pib.capacity(), 5);
        assert_eq!(ctx.dpb.capacity(), 5);
    }
}

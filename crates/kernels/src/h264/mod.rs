//! `h264dec`: a synthetic H.264-like video decoder with the paper's 5-stage
//! pipeline structure.
//!
//! The paper's case study (Section 3, Listing 1) parallelises an H.264
//! decoder whose main loop has five stages:
//!
//! 1. **read** — read the bitstream and split it into frames,
//! 2. **parse** — parse the frame header, allocate a Picture Info entry,
//! 3. **entropy decode (ED)** — extract the syntax elements of every
//!    macroblock,
//! 4. **reconstruct** — allocate a picture in the Decoded Picture Buffer and
//!    rebuild the pixels from syntax elements and motion vectors,
//! 5. **output** — reorder and emit decoded pictures.
//!
//! We cannot ship copyrighted H.264 conformance streams, so this module
//! implements a *synthetic but faithful* codec with the same dependency
//! structure: 16×16 macroblocks, intra (I) and motion-compensated (P)
//! frames, exp-Golomb entropy coding of motion vectors and residuals, a
//! decoded-picture buffer that reconstruction allocates from and output
//! releases to, and an in-order output stage. Encoding is lossless, so
//! `decode(encode(video)) == video` is the correctness oracle used by every
//! benchmark variant.
//!
//! Submodules:
//!
//! * [`bitstream`] — bit-level reader/writer with exp-Golomb codes,
//! * [`model`] — frame/macroblock types, synthetic video generation, the
//!   encoder,
//! * [`dpb`] — the Picture Info Buffer and Decoded Picture Buffer,
//! * [`decoder`] — the five stage functions and the sequential reference
//!   decoder built from them.

pub mod bitstream;
pub mod decoder;
pub mod dpb;
pub mod model;

pub use bitstream::{BitReader, BitWriter};
pub use decoder::{
    decode_sequence, entropy_decode_frame, output_frame, parse_header, read_frame,
    reconstruct_frame, DecoderContexts, EntropyContext, NalContext, OutputContext, ReadContext,
    ReconstructContext,
};
pub use dpb::{DecodedPictureBuffer, PictureInfoBuffer};
pub use model::{
    encode_sequence, generate_video, DecodedFrame, EncodedFrame, EncodedStream, FrameHeader,
    FrameType, MacroblockSyntax, VideoParams, MB_SIZE,
};

//! Bit-level stream writer/reader with unsigned and signed exp-Golomb codes,
//! the entropy-coding workhorse of H.264's CAVLC mode.

/// Writes bits MSB-first into a byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0..8).
    bit_pos: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of whole bytes written so far (including the partially filled
    /// one).
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Total number of bits written.
    pub fn len_bits(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Append a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= 1 << (7 - self.bit_pos);
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Append the `count` least-significant bits of `value`, MSB first.
    ///
    /// # Panics
    /// Panics if `count > 32`.
    pub fn put_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "at most 32 bits at a time");
        for i in (0..count).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Append an unsigned exp-Golomb code (`ue(v)` in the H.264 spec).
    pub fn put_ue(&mut self, value: u32) {
        let v = value as u64 + 1;
        let bits = 64 - v.leading_zeros() as u8; // position of the MSB
        // (bits - 1) zeros, then the value itself in `bits` bits.
        for _ in 0..bits - 1 {
            self.put_bit(false);
        }
        for i in (0..bits).rev() {
            self.put_bit((v >> i) & 1 == 1);
        }
    }

    /// Append a signed exp-Golomb code (`se(v)`).
    pub fn put_se(&mut self, value: i32) {
        let mapped = if value <= 0 {
            (-(value as i64) * 2) as u32
        } else {
            (value as u32) * 2 - 1
        };
        self.put_ue(mapped);
    }

    /// Pad to a byte boundary with zero bits and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        while self.bit_pos != 0 {
            self.put_bit(false);
        }
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit index.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Bits remaining in the stream.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Read one bit; `None` at end of stream.
    pub fn get_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bytes.len() * 8 {
            return None;
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Read `count` bits MSB-first.
    pub fn get_bits(&mut self, count: u8) -> Option<u32> {
        assert!(count <= 32, "at most 32 bits at a time");
        let mut out = 0u32;
        for _ in 0..count {
            out = (out << 1) | u32::from(self.get_bit()?);
        }
        Some(out)
    }

    /// Read an unsigned exp-Golomb code.
    pub fn get_ue(&mut self) -> Option<u32> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 32 {
                return None;
            }
        }
        let mut v: u64 = 1;
        for _ in 0..zeros {
            v = (v << 1) | u64::from(self.get_bit()?);
        }
        Some((v - 1) as u32)
    }

    /// Read a signed exp-Golomb code.
    pub fn get_se(&mut self) -> Option<i32> {
        let mapped = self.get_ue()?;
        Some(if mapped % 2 == 0 {
            -((mapped / 2) as i32)
        } else {
            mapped.div_ceil(2) as i32
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit(), Some(b));
        }
    }

    #[test]
    fn fixed_width_fields_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(300, 12);
        w.put_bits(0, 3);
        w.put_bits(u32::MAX, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4), Some(0b1011));
        assert_eq!(r.get_bits(12), Some(300));
        assert_eq!(r.get_bits(3), Some(0));
        assert_eq!(r.get_bits(32), Some(u32::MAX));
    }

    #[test]
    fn ue_known_codewords() {
        // The first few exp-Golomb codewords from the H.264 spec:
        // 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100".
        let mut w = BitWriter::new();
        for v in 0..4u32 {
            w.put_ue(v);
        }
        let bytes = w.finish();
        // 1 010 011 00100 -> 1010 0110 0100 0000
        assert_eq!(bytes, vec![0b1010_0110, 0b0100_0000]);
    }

    #[test]
    fn end_of_stream_returns_none() {
        let bytes = [0b1000_0000u8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(8), Some(0b1000_0000));
        assert_eq!(r.get_bit(), None);
        assert_eq!(r.get_bits(4), None);
        assert_eq!(r.get_ue(), None);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn empty_writer_finishes_empty() {
        assert!(BitWriter::new().finish().is_empty());
        assert_eq!(BitWriter::new().len_bits(), 0);
    }

    proptest! {
        /// ue/se round-trip for arbitrary values.
        #[test]
        fn prop_ue_roundtrip(values in proptest::collection::vec(0u32..1_000_000, 0..100)) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.put_ue(v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.get_ue(), Some(v));
            }
        }

        #[test]
        fn prop_se_roundtrip(values in proptest::collection::vec(-500_000i32..500_000, 0..100)) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.put_se(v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.get_se(), Some(v));
            }
        }

        /// Mixed fixed-width and exp-Golomb fields round-trip.
        #[test]
        fn prop_mixed_roundtrip(fields in proptest::collection::vec((0u32..4096, 1u8..16), 0..50)) {
            let mut w = BitWriter::new();
            for &(v, width) in &fields {
                let v = v & ((1u32 << width) - 1);
                w.put_bits(v, width);
                w.put_ue(v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(v, width) in &fields {
                let v = v & ((1u32 << width) - 1);
                prop_assert_eq!(r.get_bits(width), Some(v));
                prop_assert_eq!(r.get_ue(), Some(v));
            }
        }
    }
}

//! `md5`: the RFC 1321 message digest, applied to many independent buffers.
//!
//! The benchmark hashes a large set of buffers; each buffer is an independent
//! work unit ([`md5_digest`]), which is what both the Pthreads and OmpSs
//! variants parallelise over.

/// A 16-byte MD5 digest.
pub type Digest = [u8; 16];

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 state.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Create a fresh MD5 state.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Fill the partial block first.
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        // Whole blocks.
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 56 mod 64, then the length.
        self.update(&[0x80]);
        // update() above also bumped total_len; the length we append was
        // captured before padding, as RFC 1321 requires.
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        self.total_len = 0; // silence further accounting; we finish manually
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.process_block(&block);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let rot = a
                .wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]);
            b = b.wrapping_add(rot);
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// Digest a whole buffer in one call (the benchmark's per-buffer work unit).
pub fn md5_digest(data: &[u8]) -> Digest {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// Render a digest as the conventional 32-character lowercase hex string.
pub fn to_hex(digest: &Digest) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// Digest every buffer sequentially (the sequential reference of the
/// benchmark).
pub fn md5_many(buffers: &[Vec<u8>]) -> Vec<Digest> {
    buffers.iter().map(|b| md5_digest(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// RFC 1321 appendix A.5 test vectors.
    #[test]
    fn rfc1321_vectors() {
        let cases = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(to_hex(&md5_digest(input.as_bytes())), expected, "input {input:?}");
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = md5_digest(&data);
        let mut h = Md5::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths around the 55/56/63/64 padding boundaries are the classic
        // failure cases.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let d1 = md5_digest(&data);
            let mut h = Md5::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), d1, "length {len}");
        }
    }

    #[test]
    fn md5_many_matches_individual() {
        let buffers: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; i * 13 + 1]).collect();
        let all = md5_many(&buffers);
        for (i, buf) in buffers.iter().enumerate() {
            assert_eq!(all[i], md5_digest(buf));
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(md5_digest(b"hello"), md5_digest(b"hellp"));
    }

    proptest! {
        /// Splitting the input at any point gives the same digest as hashing
        /// it in one shot.
        #[test]
        fn prop_incremental_split_invariant(data in proptest::collection::vec(0u8.., 0..300), split_frac in 0.0f64..1.0) {
            let split = ((data.len() as f64) * split_frac) as usize;
            let oneshot = md5_digest(&data);
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), oneshot);
        }
    }
}

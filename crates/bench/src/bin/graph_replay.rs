//! Template replay vs full spawning: the insertion-side payoff of graph
//! capture (`ompss::CaptureScope` / `Runtime::replay`).
//!
//! The workload is the steady-state insertion storm of the spawn-rate
//! ablation: batches of `BATCH` one-`output` tasks over a small set of
//! shared cells, so consecutive writers of one cell chain on WAW hazards
//! and every registration contends on the cell's tracker shard. Two ways to
//! stamp the same stream of batches:
//!
//! 1. **full-spawn** — `SPAWNERS` OS threads hammer `rt.task()` concurrently
//!    (the per-task insertion hot path: one optimistic gate acquisition,
//!    one in-flight/stat update and one wakeup per task).
//! 2. **replay** — the batch is captured once into a `GraphTemplate` and
//!    every subsequent batch is stamped with `Runtime::replay`: clause
//!    re-resolution per task, but one multi-gate acquisition, one batched
//!    bookkeeping update and one batched wakeup per 256 tasks — and zero
//!    heap allocations once warm (`tests/spawn_alloc.rs`).
//!
//! Both sides drain between batches outside the timed window; the timers
//! cover insertion only. The headline claim — warm replay beats the
//! 8-spawner full-spawn insertion throughput by ≥2× — is asserted at the
//! bottom (relaxed when the host has fewer than 4 hardware threads, where
//! the spawner storm cannot actually run concurrently).
//!
//! Run with `cargo run --release -p bench-harness --bin graph_replay
//! [batches]`.

use std::time::{Duration, Instant};

use ompss::{Data, ReplayBindings, Runtime, RuntimeConfig};

/// Tasks per batch (matching the allocation-diet pin in spawn_alloc.rs).
const BATCH: usize = 256;
/// Shared cells the batch writes (WAW chains, 16 tracker-contended regions).
const CELLS: usize = 16;
/// Concurrently spawning threads on the full-spawn side.
const SPAWNERS: usize = 8;

fn runtime() -> Runtime {
    Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_tracker_shards(4)
            .with_tracker_gc_interval(0),
    )
}

/// Busy-wait for the graph to drain without entering `taskwait` (which runs
/// a GC sweep and would disturb the warmed tracker maps).
fn drain(rt: &Runtime) {
    while rt.in_flight_tasks() > 0 {
        std::thread::yield_now();
    }
}

/// Insertion rate of `batches * BATCH` tasks spawned from `SPAWNERS`
/// concurrent threads; the timer covers the spawn phase only.
fn full_spawn_rate(batches: usize) -> f64 {
    let rt = runtime();
    let cells: Vec<Data<u64>> = (0..CELLS).map(|_| rt.data(0u64)).collect();
    let per_spawner = batches * BATCH / SPAWNERS;
    // Warm the slab, queues and tracker maps like the replay side warms its
    // template scratch.
    for i in 0..BATCH {
        let c = cells[i % CELLS].clone();
        rt.task().output(&c).spawn(move |ctx| {
            *ctx.write(&c) = i as u64;
        });
    }
    drain(&rt);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for s in 0..SPAWNERS {
            let rt = &rt;
            let cells = &cells;
            scope.spawn(move || {
                for i in 0..per_spawner {
                    let c = cells[(s + i) % CELLS].clone();
                    rt.task().output(&c).spawn(move |ctx| {
                        *ctx.write(&c) = i as u64;
                    });
                }
            });
        }
    });
    let spawn_time = start.elapsed();
    drain(&rt);
    let stats = rt.stats();
    assert_eq!(
        stats.tasks_spawned as usize,
        BATCH + SPAWNERS * per_spawner,
        "full-spawn run lost tasks"
    );
    rt.shutdown();
    (SPAWNERS * per_spawner) as f64 / spawn_time.as_secs_f64()
}

/// Insertion rate of `batches` warm replays of a captured `BATCH`-task
/// batch; the timer covers the `replay` calls only.
fn replay_rate(batches: usize) -> f64 {
    let rt = runtime();
    let cells: Vec<Data<u64>> = (0..CELLS).map(|_| rt.data(0u64)).collect();
    let mut scope = rt.capture();
    for i in 0..BATCH {
        let c = cells[i % CELLS].clone();
        scope.task().output(&c).spawn(move |ctx| {
            *ctx.write(&c) = i as u64;
        });
    }
    let template = scope.finish();
    drain(&rt);
    let bindings = ReplayBindings::new();
    for _ in 0..4 {
        rt.replay(&template, &bindings);
        drain(&rt);
    }
    let mut stamping = Duration::ZERO;
    for _ in 0..batches {
        let start = Instant::now();
        rt.replay(&template, &bindings);
        stamping += start.elapsed();
        drain(&rt);
    }
    let stats = rt.stats();
    assert_eq!(
        stats.tasks_spawned as usize,
        (5 + batches) * BATCH,
        "replay run lost tasks"
    );
    rt.shutdown();
    (batches * BATCH) as f64 / stamping.as_secs_f64()
}

fn best_of_3(f: impl Fn() -> f64) -> f64 {
    (0..3).map(|_| f()).fold(0.0f64, f64::max)
}

fn main() {
    let batches: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("batches must be a number"))
        .unwrap_or(32);
    assert!(
        (batches * BATCH).is_multiple_of(SPAWNERS),
        "batches * {BATCH} must divide evenly over {SPAWNERS} spawners"
    );

    println!("graph_replay: {batches} batches of {BATCH} one-output tasks over {CELLS} cells");
    println!();

    let spawn = best_of_3(|| full_spawn_rate(batches));
    let replay = best_of_3(|| replay_rate(batches));
    let speedup = replay / spawn;

    println!(
        "  {:<28} {:>14} {:>10}",
        "insertion side", "tasks/sec", "speedup"
    );
    println!(
        "  {:<28} {:>14.0} {:>10}",
        format!("full-spawn ({SPAWNERS} threads)"),
        spawn,
        "1.00x"
    );
    println!(
        "  {:<28} {:>14.0} {:>9.2}x",
        "warm template replay", replay, speedup
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = if cores >= 4 { 2.0 } else { 1.1 };
    println!();
    println!("  {cores} hardware threads -> required speedup >= {floor:.1}x");
    assert!(
        speedup >= floor,
        "warm replay must beat {SPAWNERS}-spawner full-spawn insertion by \
         {floor:.1}x, measured {speedup:.2}x"
    );
    println!("  ok");
}

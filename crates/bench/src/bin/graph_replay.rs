//! Template replay vs full spawning: the insertion-side payoff of graph
//! capture (`ompss::CaptureScope` / `Runtime::replay`).
//!
//! The workload is the steady-state insertion storm of the spawn-rate
//! ablation, thickened to the ≤2-access shape the allocation diet pins:
//! batches of `BATCH` tasks, each writing one of a small set of shared
//! cells and reading the neighbouring one, so consecutive writers chain on
//! WAW hazards, readers hang RAW/WAR edges off every write, and every
//! registration contends on the cells' tracker shards. Four ways to stamp
//! the same stream of batches:
//!
//! 1. **full-spawn** — `SPAWNERS` OS threads hammer `rt.task()` concurrently
//!    (the per-task insertion hot path: one optimistic gate acquisition,
//!    one in-flight/stat update and one wakeup per task).
//! 2. **resolved replay** — the batch is captured once into a
//!    `GraphTemplate` and every subsequent batch is stamped with
//!    `Runtime::replay` under `with_replay_prewiring(false)`: clause
//!    re-resolution and a full `register_batch` history scan per task, but
//!    one multi-gate acquisition and one batched wakeup per 256 tasks.
//! 3. **pre-wired replay** — same call under the default config: the first
//!    pure pass froze the template, so each batch stamps through the
//!    `FrozenPlan` (baked intra-batch edges, frontier-only live scan,
//!    bulk interior publish).
//! 4. **fused replay** — `Runtime::replay_fused(&template, FUSE)` stamps
//!    `FUSE` iterations as one super-batch: carried inter-iteration
//!    dependences, one gate acquisition and one wakeup per `FUSE * 256`
//!    tasks.
//!
//! All sides drain between timed stamps outside the timed window; the
//! timers cover insertion only. Two claims are asserted at the bottom and
//! the rates land in `BENCH_replay.json` so the trajectory is tracked
//! across PRs:
//!
//! * warm replay beats the 8-spawner full-spawn insertion throughput by
//!   ≥2× (relaxed to 1.1× when the host has fewer than 4 hardware
//!   threads, where the spawner storm cannot actually run concurrently);
//! * pre-wired replay beats resolved-per-pass replay by ≥1.5× on the warm
//!   renaming-free 256-task batch.
//!
//! Run with `cargo run --release -p bench-harness --bin graph_replay
//! [batches]`.

use std::time::{Duration, Instant};

use bench_harness::update_bench_json;
use ompss::{Data, ReplayBindings, Runtime, RuntimeConfig};

/// Tasks per batch (matching the allocation-diet pin in spawn_alloc.rs).
const BATCH: usize = 256;
/// Shared cells the batch writes (WAW chains, 16 tracker-contended regions).
const CELLS: usize = 16;
/// Concurrently spawning threads on the full-spawn side.
const SPAWNERS: usize = 8;
/// Iterations folded into one super-batch on the fused side.
const FUSE: usize = 4;

fn runtime(prewiring: bool) -> Runtime {
    Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_tracker_shards(4)
            .with_tracker_gc_interval(0)
            .with_replay_prewiring(prewiring),
    )
}

/// Busy-wait for the graph to drain without entering `taskwait` (which runs
/// a GC sweep and would disturb the warmed tracker maps).
fn drain(rt: &Runtime) {
    while rt.in_flight_tasks() > 0 {
        std::thread::yield_now();
    }
}

/// Insertion rate of `batches * BATCH` tasks spawned from `SPAWNERS`
/// concurrent threads; the timer covers the spawn phase only.
fn full_spawn_rate(batches: usize) -> f64 {
    let rt = runtime(true);
    let cells: Vec<Data<u64>> = (0..CELLS).map(|_| rt.data(0u64)).collect();
    let per_spawner = batches * BATCH / SPAWNERS;
    // Warm the slab, queues and tracker maps like the replay side warms its
    // template scratch.
    for i in 0..BATCH {
        let c = cells[i % CELLS].clone();
        let prev = cells[(i + CELLS - 1) % CELLS].clone();
        rt.task().input(&prev).output(&c).spawn(move |ctx| {
            *ctx.write(&c) = i as u64 + *ctx.read(&prev);
        });
    }
    drain(&rt);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for s in 0..SPAWNERS {
            let rt = &rt;
            let cells = &cells;
            scope.spawn(move || {
                for i in 0..per_spawner {
                    let c = cells[(s + i) % CELLS].clone();
                    let prev = cells[(s + i + CELLS - 1) % CELLS].clone();
                    rt.task().input(&prev).output(&c).spawn(move |ctx| {
                        *ctx.write(&c) = i as u64 + *ctx.read(&prev);
                    });
                }
            });
        }
    });
    let spawn_time = start.elapsed();
    drain(&rt);
    let stats = rt.stats();
    assert_eq!(
        stats.tasks_spawned as usize,
        BATCH + SPAWNERS * per_spawner,
        "full-spawn run lost tasks"
    );
    rt.shutdown();
    (SPAWNERS * per_spawner) as f64 / spawn_time.as_secs_f64()
}

/// Which replay flavour a [`replay_rate`] run measures.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Per-pass clause resolution and history scans (prewiring disabled).
    Resolved,
    /// The frozen fast path: frontier stamp + bulk interior publish.
    Prewired,
    /// `replay_fused`: `FUSE` iterations per gate acquisition.
    Fused,
}

/// Insertion rate of `batches` warm replays of a captured `BATCH`-task
/// batch in the given mode; the timer covers the stamping calls only.
fn replay_rate(batches: usize, mode: Mode) -> f64 {
    let rt = runtime(mode != Mode::Resolved);
    let cells: Vec<Data<u64>> = (0..CELLS).map(|_| rt.data(0u64)).collect();
    let mut scope = rt.capture();
    for i in 0..BATCH {
        let c = cells[i % CELLS].clone();
        let prev = cells[(i + CELLS - 1) % CELLS].clone();
        scope.task().input(&prev).output(&c).spawn(move |ctx| {
            *ctx.write(&c) = i as u64 + *ctx.read(&prev);
        });
    }
    let template = scope.finish();
    drain(&rt);
    let mut spawned = BATCH;

    let bindings = ReplayBindings::new();
    for _ in 0..4 {
        rt.replay(&template, &bindings);
        drain(&rt);
        spawned += BATCH;
    }
    match mode {
        Mode::Resolved => assert!(
            !template.is_frozen(),
            "prewiring is disabled, the template must stay on the resolved path"
        ),
        Mode::Prewired => assert!(
            template.is_frozen(),
            "a warm renaming-free batch must freeze under the default config"
        ),
        Mode::Fused => {
            // One warm fused pass widens the node working set to
            // FUSE * BATCH before the timed window.
            rt.replay_fused(&template, FUSE);
            drain(&rt);
            spawned += FUSE * BATCH;
        }
    }

    let mut stamping = Duration::ZERO;
    let calls = if mode == Mode::Fused { batches / FUSE } else { batches };
    for _ in 0..calls {
        match mode {
            Mode::Fused => {
                let start = Instant::now();
                rt.replay_fused(&template, FUSE);
                stamping += start.elapsed();
                spawned += FUSE * BATCH;
            }
            _ => {
                let start = Instant::now();
                rt.replay(&template, &bindings);
                stamping += start.elapsed();
                spawned += BATCH;
            }
        }
        drain(&rt);
    }
    let stats = rt.stats();
    assert_eq!(stats.tasks_spawned as usize, spawned, "replay run lost tasks");
    rt.shutdown();
    let measured = if mode == Mode::Fused { calls * FUSE * BATCH } else { calls * BATCH };
    measured as f64 / stamping.as_secs_f64()
}

fn best_of_3(f: impl Fn() -> f64) -> f64 {
    (0..3).map(|_| f()).fold(0.0f64, f64::max)
}

fn main() {
    let batches: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("batches must be a number"))
        .unwrap_or(32);
    assert!(
        (batches * BATCH).is_multiple_of(SPAWNERS),
        "batches * {BATCH} must divide evenly over {SPAWNERS} spawners"
    );
    assert!(
        batches.is_multiple_of(FUSE),
        "batches must divide evenly into fused super-batches of {FUSE}"
    );

    println!(
        "graph_replay: {batches} batches of {BATCH} read-write chain tasks over {CELLS} cells"
    );
    println!();

    let spawn = best_of_3(|| full_spawn_rate(batches));
    let resolved = best_of_3(|| replay_rate(batches, Mode::Resolved));
    let prewired = best_of_3(|| replay_rate(batches, Mode::Prewired));
    let fused = best_of_3(|| replay_rate(batches, Mode::Fused));

    println!(
        "  {:<28} {:>14} {:>10}",
        "insertion side", "tasks/sec", "speedup"
    );
    println!(
        "  {:<28} {:>14.0} {:>10}",
        format!("full-spawn ({SPAWNERS} threads)"),
        spawn,
        "1.00x"
    );
    for (label, rate) in [
        ("resolved replay", resolved),
        ("pre-wired replay", prewired),
        (&format!("fused replay (x{FUSE})")[..], fused),
    ] {
        println!("  {:<28} {:>14.0} {:>9.2}x", label, rate, rate / spawn);
    }

    update_bench_json(
        "graph_replay",
        &format!(
            "{{\"batch\": {BATCH}, \"full_spawn_tasks_per_sec\": {spawn:.0}, \
             \"resolved_replay_tasks_per_sec\": {resolved:.0}, \
             \"prewired_replay_tasks_per_sec\": {prewired:.0}, \
             \"fused_replay_tasks_per_sec\": {fused:.0}}}"
        ),
    );
    println!();
    println!("  rates recorded in BENCH_replay.json");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = if cores >= 4 { 2.0 } else { 1.1 };
    let speedup = prewired / spawn;
    println!();
    println!("  {cores} hardware threads -> required replay-vs-spawn speedup >= {floor:.1}x");
    assert!(
        speedup >= floor,
        "warm replay must beat {SPAWNERS}-spawner full-spawn insertion by \
         {floor:.1}x, measured {speedup:.2}x"
    );
    let prewire_gain = prewired / resolved;
    println!("  required pre-wired-vs-resolved speedup >= 1.5x (measured {prewire_gain:.2}x)");
    assert!(
        prewire_gain >= 1.5,
        "pre-wired replay must beat resolved-per-pass replay by 1.5x on the \
         warm renaming-free batch, measured {prewire_gain:.2}x"
    );
    println!("  ok");
}

//! The Section 4 `rgbcmy` claim: at high core counts, the polling task
//! barrier of the OmpSs runtime is cheaper than the blocking thread barrier
//! of the Pthreads version, which matters when iterations are short.
//!
//! Two experiments:
//!
//! 1. **Simulated** (paper scale): the rgbcmy workload on the 32-core
//!    machine model, with the Pthreads model using either its blocking
//!    barrier or (hypothetically) the cheap polling barrier — the speedup
//!    difference isolates the barrier cost.
//! 2. **Measured** (host scale): the raw per-episode cost of the two barrier
//!    flavours from the `ompss` crate, measured directly.

use std::time::Instant;

use ompss::{BarrierKind, TaskBarrier};
use simsched::machine::MachineParams;
use simsched::workloads::{workload, Structure};
use simsched::{ompss as sim_ompss, pthreads as sim_pthreads};

fn main() {
    println!("=== Barrier ablation (rgbcmy, Section 4) ===\n");

    // --- Simulated at paper scale -----------------------------------------
    let machine = MachineParams::default();
    let cheap_barrier_machine = MachineParams {
        // A Pthreads version with an OmpSs-like polling barrier: the blocking
        // barrier cost is replaced by the polling one.
        blocking_barrier_base_ns: machine.polling_barrier_base_ns,
        blocking_barrier_per_core_ns: machine.polling_barrier_per_core_ns,
        ..machine.clone()
    };
    let w = workload("rgbcmy");
    let phases = match &w.structure {
        Structure::Phased(p) => p.clone(),
        _ => unreachable!("rgbcmy is phased"),
    };
    println!("simulated OmpSs-over-Pthreads speedup for rgbcmy:");
    println!(
        "{:<10}{:>22}{:>26}",
        "cores", "blocking barrier", "polling barrier (ablated)"
    );
    for cores in simsched::PAPER_CORE_COUNTS {
        let ompss_t = sim_ompss::phased_time_ns(&phases, cores, &machine, true);
        let pth_blocking = sim_pthreads::phased_time_ns(&phases, cores, &machine);
        let pth_polling = sim_pthreads::phased_time_ns(&phases, cores, &cheap_barrier_machine);
        println!(
            "{:<10}{:>22.2}{:>26.2}",
            cores,
            pth_blocking as f64 / ompss_t as f64,
            pth_polling as f64 / ompss_t as f64,
        );
    }
    println!(
        "\nWith the blocking barrier replaced by a polling one, the Pthreads\n\
         version catches up: the OmpSs advantage on rgbcmy is the barrier."
    );

    // --- Measured on the host ----------------------------------------------
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2);
    let episodes = 2_000;
    println!("\nmeasured barrier cost on this host ({threads} threads, {episodes} episodes):");
    for kind in [BarrierKind::Polling, BarrierKind::Blocking] {
        let barrier = TaskBarrier::new(threads, kind);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let b = barrier.clone();
                scope.spawn(move || {
                    for _ in 0..episodes {
                        b.wait();
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        println!(
            "  {:?}: {:>10.2?} total, {:>8.0} ns per episode",
            kind,
            elapsed,
            elapsed.as_nanos() as f64 / episodes as f64
        );
    }
}

//! The Section 4 `h264dec` claim: OmpSs needs to group macroblock rows into
//! coarse tasks to amortise task overhead, and that grouping caps the
//! exposed parallelism, so the task version stops scaling where the
//! hand-optimised Pthreads line decoder keeps going.
//!
//! The experiment sweeps the `group_rows` granularity knob of the h264dec
//! pipeline workload on the 32-core machine model and reports the
//! OmpSs-over-Pthreads speedup per core count, plus the OmpSs self-speedup
//! (vs its own 1-core time) to show where each granularity saturates.

use simsched::machine::MachineParams;
use simsched::workloads::{workload, Structure};
use simsched::{ompss as sim_ompss, pthreads as sim_pthreads};

fn main() {
    println!("=== Task-granularity ablation (h264dec, Section 4) ===\n");
    let machine = MachineParams::default();
    let base = match workload("h264dec").structure {
        Structure::Pipeline(p) => p,
        _ => unreachable!("h264dec is a pipeline"),
    };

    let groupings = [1usize, 2, 5, 10, 20, base.mb_rows];
    println!("OmpSs-over-Pthreads speedup by reconstruction task granularity (rows per task):");
    print!("{:<10}", "cores");
    for g in groupings {
        print!("{:>10}", format!("{g} rows"));
    }
    println!("{:>12}", "pthreads 1x");
    for cores in simsched::PAPER_CORE_COUNTS {
        print!("{cores:<10}");
        let pth = sim_pthreads::pipeline_time_ns(&base, cores, &machine);
        for g in groupings {
            let mut shape = base;
            shape.group_rows = g;
            let omp = sim_ompss::pipeline_time_ns(&shape, cores, &machine);
            print!("{:>10.2}", pth as f64 / omp as f64);
        }
        let pth1 = sim_pthreads::pipeline_time_ns(&base, 1, &machine);
        println!("{:>12.2}", pth1 as f64 / pth as f64);
    }

    println!("\nOmpSs self-speedup (vs its own single-core time):");
    print!("{:<10}", "cores");
    for g in groupings {
        print!("{:>10}", format!("{g} rows"));
    }
    println!();
    for cores in simsched::PAPER_CORE_COUNTS {
        print!("{cores:<10}");
        for g in groupings {
            let mut shape = base;
            shape.group_rows = g;
            let t1 = sim_ompss::pipeline_time_ns(&shape, 1, &machine);
            let tc = sim_ompss::pipeline_time_ns(&shape, cores, &machine);
            print!("{:>10.2}", t1 as f64 / tc as f64);
        }
        println!();
    }

    println!(
        "\nFine tasks (1-2 rows) pay task-management overhead at low core counts;\n\
         coarse tasks (whole frames) stop scaling early. The default grouping is a\n\
         compromise — and it still saturates well below the Pthreads line decoder\n\
         at 24 and 32 cores, which is exactly the pattern in Table 1."
    );
}

//! Manual vs automatic renaming on the Listing-1 pipeline (Section 3).
//!
//! The paper's OmpSs implementation performs no automatic renaming, so the
//! h264dec main loop only pipelines because the programmer renames the
//! inter-stage buffers by hand with circular buffers of depth `N`
//! (Listing 1). The `ompss` runtime in this repository adds runtime-managed
//! renaming (versioned handles, see `ompss::rename`); this harness measures
//! what that buys on the h264dec-style pipeline workload:
//!
//! 1. **serialised** — versioned buffers with renaming *disabled*: every
//!    iteration's `output` inherits the WAR/WAW hazards and the pipeline
//!    collapses to (near-)sequential execution. This is what plain OmpSs
//!    code without Listing 1's buffers would do.
//! 2. **manual** — Listing 1 verbatim: `RenameRing` circular buffers of
//!    depth `N`, renamed by hand.
//! 3. **automatic** — single versioned handles; the runtime renames each
//!    `output` access to a fresh (or recycled) version.
//!
//! All three decode the same stream and must produce the same checksum; the
//! interesting outputs are the wall-clock times, the dependence-edge
//! classification (the WAR/WAW edges renaming removes) and the rename
//! counters (recycling hit rate, bytes held, fallbacks).
//!
//! Run with `cargo run --release -p bench-harness --bin rename_ablation
//! [workers] [frames]`.

use std::time::{Duration, Instant};

use benchsuite::benchmarks::h264dec::{self, Params};
use kernels::h264::{EncodedStream, VideoParams};
use ompss::{Runtime, RuntimeConfig, RuntimeStats};

struct Row {
    label: &'static str,
    time: Duration,
    checksum: u64,
    stats: RuntimeStats,
}

fn run(
    label: &'static str,
    stream: &EncodedStream,
    p: &Params,
    config: RuntimeConfig,
    auto: bool,
) -> Row {
    let rt = Runtime::new(config);
    // One warm-up pass so allocator effects do not favour whichever variant
    // runs later; then best-of-3 (the stream is pre-built: only decoding is
    // measured, and the minimum suppresses scheduler noise on busy hosts).
    let decode = |rt: &Runtime| {
        if auto {
            h264dec::decode_ompss(stream, p.pool, rt)
        } else {
            h264dec::decode_ompss_manual(stream, p.window, p.pool, rt)
        }
    };
    let _ = decode(&rt);
    let before = rt.stats();
    let mut time = Duration::MAX;
    let mut checksum = 0;
    for _ in 0..3 {
        let start = Instant::now();
        checksum = decode(&rt);
        time = time.min(start.elapsed());
    }
    let after = rt.stats();
    rt.shutdown();
    // Per-run averages of the monotonic counters over the 3 timed runs.
    let stats = RuntimeStats {
        tasks_spawned: (after.tasks_spawned - before.tasks_spawned) / 3,
        edges_added: (after.edges_added - before.edges_added) / 3,
        raw_edges: (after.raw_edges - before.raw_edges) / 3,
        war_edges: (after.war_edges - before.war_edges) / 3,
        waw_edges: (after.waw_edges - before.waw_edges) / 3,
        renames: (after.renames - before.renames) / 3,
        renames_recycled: (after.renames_recycled - before.renames_recycled) / 3,
        rename_fallbacks: (after.rename_fallbacks - before.rename_fallbacks) / 3,
        dependences_seen: (after.dependences_seen - before.dependences_seen) / 3,
        ..after
    };
    Row {
        label,
        time,
        checksum,
        stats,
    }
}

fn main() {
    let workers = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        });
    let frames = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);

    let params = Params {
        video: VideoParams {
            width: 320,
            height: 192,
            frames,
            gop: 8,
            seed: 19,
        },
        window: 6,
        pool: 10,
    };
    println!("=== Renaming ablation (h264dec pipeline, Listing 1) ===\n");
    println!(
        "{}x{} stream, {} frames, {} workers, manual ring depth N = {}\n",
        params.video.width, params.video.height, params.video.frames, workers, params.window
    );

    let stream = params.stream();
    let base = RuntimeConfig::default().with_workers(workers);
    let rows = [
        run(
            "serialised (no renaming)",
            &stream,
            &params,
            base.clone().with_renaming(false),
            true,
        ),
        run("manual RenameRing", &stream, &params, base.clone(), false),
        run("automatic renaming", &stream, &params, base.clone(), true),
    ];

    let seq = h264dec::run_seq(&params);
    println!(
        "{:<28}{:>12}{:>10}{:>10}{:>8}{:>8}{:>8}{:>9}",
        "variant", "time", "speedup", "edges", "RAW", "WAR", "WAW", "renames"
    );
    let serial_time = rows[0].time.as_secs_f64();
    for row in &rows {
        assert_eq!(row.checksum, seq, "{}: wrong decode output", row.label);
        println!(
            "{:<28}{:>12.3?}{:>9.2}x{:>10}{:>8}{:>8}{:>8}{:>9}",
            row.label,
            row.time,
            serial_time / row.time.as_secs_f64(),
            row.stats.edges_added,
            row.stats.raw_edges,
            row.stats.war_edges,
            row.stats.waw_edges,
            row.stats.renames,
        );
    }

    let auto = &rows[2];
    let manual = &rows[1];
    println!(
        "\nautomatic renaming: {} renames, {} recycled ({:.0}% pool hit), {} fallbacks",
        auto.stats.renames,
        auto.stats.renames_recycled,
        100.0 * auto.stats.renames_recycled as f64 / auto.stats.renames.max(1) as f64,
        auto.stats.rename_fallbacks,
    );
    let ratio = auto.time.as_secs_f64() / manual.time.as_secs_f64();
    println!(
        "automatic vs manual: {:.2}x the manual time ({})",
        ratio,
        if ratio <= 1.10 {
            "within the 10% acceptance bound"
        } else {
            "OUTSIDE the 10% acceptance bound"
        }
    );
    // Edge counts only include edges whose predecessor was still in flight
    // at registration time, so they vary with host load. `dependences_seen`
    // counts every conflicting predecessor discovered at registration and
    // is deterministic: renaming must strictly shrink it (the renamed
    // buffers stop conflicting at all).
    println!(
        "dependences discovered at registration: serialised {}, automatic {}",
        rows[0].stats.dependences_seen, auto.stats.dependences_seen,
    );
    assert!(
        auto.stats.dependences_seen < rows[0].stats.dependences_seen,
        "renaming must remove buffer conflicts ({} vs {})",
        auto.stats.dependences_seen,
        rows[0].stats.dependences_seen,
    );
}

//! Manual vs automatic renaming on the Listing-1 pipeline (Section 3).
//!
//! The paper's OmpSs implementation performs no automatic renaming, so the
//! h264dec main loop only pipelines because the programmer renames the
//! inter-stage buffers by hand with circular buffers of depth `N`
//! (Listing 1). The `ompss` runtime in this repository adds runtime-managed
//! renaming (versioned handles, see `ompss::rename`); this harness measures
//! what that buys on the h264dec-style pipeline workload:
//!
//! 1. **serialised** — versioned buffers with renaming *disabled*: every
//!    iteration's `output` inherits the WAR/WAW hazards and the pipeline
//!    collapses to (near-)sequential execution. This is what plain OmpSs
//!    code without Listing 1's buffers would do.
//! 2. **manual** — Listing 1 verbatim: `RenameRing` circular buffers of
//!    depth `N`, renamed by hand.
//! 3. **automatic** — single versioned handles; the runtime renames each
//!    `output` access to a fresh (or recycled) version.
//!
//! All three decode the same stream and must produce the same checksum; the
//! interesting outputs are the wall-clock times, the dependence-edge
//! classification (the WAR/WAW edges renaming removes) and the rename
//! counters (recycling hit rate, bytes held, fallbacks).
//!
//! A second scenario measures renaming at **region granularity**: a chunked
//! two-stage pipeline (per-band producer + per-band consumer, iterated with
//! no barrier) over one partitioned buffer, in the same three flavours —
//! serialised (versioned partition, renaming off), manual (a ring of plain
//! partitions, double-buffered by hand) and automatic (per-chunk version
//! chains, `Runtime::versioned_partitioned`).
//!
//! A third scenario measures the **insertion side** itself: the spawn-rate
//! ablation hammers one runtime from 1–8 concurrently spawning OS threads
//! and reports task insertions per second with the dependence tracker in its
//! single-shard (historical single-lock) and sharded configurations, plus
//! the tracker's shard-hit / lock-contention counters.
//!
//! Run with `cargo run --release -p bench-harness --bin rename_ablation
//! [workers] [frames] [pipeline-iters] [spawn-tasks-per-thread]`.

use std::time::{Duration, Instant};

use benchsuite::benchmarks::h264dec::{self, Params};
use kernels::h264::{EncodedStream, VideoParams};
use ompss::{Data, Runtime, RuntimeConfig, RuntimeStats};

struct Row {
    label: &'static str,
    time: Duration,
    checksum: u64,
    stats: RuntimeStats,
}

fn run(
    label: &'static str,
    stream: &EncodedStream,
    p: &Params,
    config: RuntimeConfig,
    auto: bool,
) -> Row {
    let rt = Runtime::new(config);
    // One warm-up pass so allocator effects do not favour whichever variant
    // runs later; then best-of-3 (the stream is pre-built: only decoding is
    // measured, and the minimum suppresses scheduler noise on busy hosts).
    let decode = |rt: &Runtime| {
        if auto {
            h264dec::decode_ompss(stream, p.pool, rt)
        } else {
            h264dec::decode_ompss_manual(stream, p.window, p.pool, rt)
        }
    };
    let _ = decode(&rt);
    let before = rt.stats();
    let mut time = Duration::MAX;
    let mut checksum = 0;
    for _ in 0..3 {
        let start = Instant::now();
        checksum = decode(&rt);
        time = time.min(start.elapsed());
    }
    let after = rt.stats();
    rt.shutdown();
    // Per-run averages of the monotonic counters over the 3 timed runs.
    let stats = RuntimeStats {
        tasks_spawned: (after.tasks_spawned - before.tasks_spawned) / 3,
        edges_added: (after.edges_added - before.edges_added) / 3,
        raw_edges: (after.raw_edges - before.raw_edges) / 3,
        war_edges: (after.war_edges - before.war_edges) / 3,
        waw_edges: (after.waw_edges - before.waw_edges) / 3,
        renames: (after.renames - before.renames) / 3,
        renames_recycled: (after.renames_recycled - before.renames_recycled) / 3,
        rename_fallbacks: (after.rename_fallbacks - before.rename_fallbacks) / 3,
        renames_elided: (after.renames_elided - before.renames_elided) / 3,
        dependences_seen: (after.dependences_seen - before.dependences_seen) / 3,
        ..after
    };
    Row {
        label,
        time,
        checksum,
        stats,
    }
}

// ---------------------------------------------------------------------------
// Scenario 2: chunked two-stage pipeline (region-granularity renaming)
// ---------------------------------------------------------------------------

/// Bands in the partitioned buffer.
const PIPE_CHUNKS: usize = 8;
/// Elements per band.
const PIPE_CHUNK_ELEMS: usize = 4096;

/// Cheap per-element mixing so the producer stage does real work.
fn mix(iter: u64, chunk: u64, i: u64) -> u64 {
    let mut x = iter
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(chunk << 32)
        .wrapping_add(i);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

/// How the chunked pipeline names its iteration buffers.
enum PipeMode {
    /// One versioned partition; the runtime renames per chunk (or, with
    /// renaming disabled in the config, serialises per chunk chain).
    Versioned,
    /// Listing-1 style: a ring of `depth` plain partitions, renamed by hand.
    ManualRing { depth: usize },
}

struct PipeRow {
    label: &'static str,
    time: Duration,
    checksum: u64,
    stats: RuntimeStats,
}

/// Run `iters` iterations of the two-stage pipeline: per band, a producer
/// task overwrites the band (`output`) and a consumer task folds it into a
/// per-band accumulator (`input` band + `inout` accumulator). No barrier
/// between iterations: whatever serialisation appears comes from the
/// dependence system.
fn run_chunked(label: &'static str, config: RuntimeConfig, mode: PipeMode, iters: usize) -> PipeRow {
    let rt = Runtime::new(config);
    let accumulators: Vec<Data<u64>> = (0..PIPE_CHUNKS).map(|_| rt.data(0u64)).collect();
    let parts: Vec<ompss::PartitionedData<u64>> = match &mode {
        PipeMode::Versioned => vec![
            rt.versioned_partitioned(vec![0u64; PIPE_CHUNKS * PIPE_CHUNK_ELEMS], PIPE_CHUNK_ELEMS),
        ],
        PipeMode::ManualRing { depth } => (0..*depth)
            .map(|_| rt.partitioned(vec![0u64; PIPE_CHUNKS * PIPE_CHUNK_ELEMS], PIPE_CHUNK_ELEMS))
            .collect(),
    };
    let start = Instant::now();
    for iter in 0..iters {
        let part = &parts[iter % parts.len()];
        for (chunk_idx, chunk_acc) in accumulators.iter().enumerate() {
            let produce = part.chunk(chunk_idx);
            let consume = produce.clone();
            let acc = chunk_acc.clone();
            rt.task()
                .name("pipe_produce")
                .output(&produce)
                .spawn(move |ctx| {
                    for (i, v) in ctx.write_chunk(&produce).iter_mut().enumerate() {
                        *v = mix(iter as u64, produce.index() as u64, i as u64);
                    }
                });
            rt.task()
                .name("pipe_consume")
                .input(&consume)
                .inout(&acc)
                .spawn(move |ctx| {
                    let sum = ctx
                        .read_chunk(&consume)
                        .iter()
                        .fold(0u64, |a, &v| a.wrapping_add(v));
                    let mut acc = ctx.write(&acc);
                    *acc = acc.wrapping_add(sum);
                });
        }
    }
    rt.taskwait();
    let time = start.elapsed();
    let checksum = accumulators
        .iter()
        .fold(0u64, |a, acc| a.wrapping_add(rt.fetch(acc)));
    let stats = rt.stats();
    rt.shutdown();
    PipeRow {
        label,
        time,
        checksum,
        stats,
    }
}

fn chunked_pipeline_section(workers: usize, iters: usize) {
    println!("\n=== Region-granularity renaming (chunked 2-stage pipeline) ===\n");
    println!(
        "{PIPE_CHUNKS} bands x {PIPE_CHUNK_ELEMS} elems, {iters} iterations, {workers} workers, no inter-iteration barrier\n"
    );
    // The spawn loop runs `iters` iterations ahead of the workers with no
    // barrier, so the automatic variant needs a version window as deep as
    // the pipeline (the role of Listing 1's ring depth N) — otherwise the
    // per-chunk bound triggers backpressure fallbacks, which *serialise*
    // (correct, but reintroducing the WAR/WAW edges this scenario shows
    // renaming removes).
    let base = RuntimeConfig::default()
        .with_workers(workers)
        .with_rename_max_versions(iters + 1)
        .with_rename_pool_depth(iters + 1);
    let rows = [
        run_chunked(
            "serialised (no renaming)",
            base.clone().with_renaming(false),
            PipeMode::Versioned,
            iters,
        ),
        run_chunked(
            "manual ring (depth 2)",
            base.clone(),
            PipeMode::ManualRing { depth: 2 },
            iters,
        ),
        run_chunked("automatic per-chunk", base.clone(), PipeMode::Versioned, iters),
    ];
    println!(
        "{:<28}{:>12}{:>10}{:>8}{:>8}{:>8}{:>9}{:>9}",
        "variant", "time", "edges", "RAW", "WAR", "WAW", "renames", "deps"
    );
    for row in &rows {
        assert_eq!(
            row.checksum, rows[0].checksum,
            "{}: wrong pipeline output",
            row.label
        );
        println!(
            "{:<28}{:>12.3?}{:>10}{:>8}{:>8}{:>8}{:>9}{:>9}",
            row.label,
            row.time,
            row.stats.edges_added,
            row.stats.raw_edges,
            row.stats.war_edges,
            row.stats.waw_edges,
            row.stats.chunk_renames,
            row.stats.dependences_seen,
        );
    }
    let auto = &rows[2];
    assert_eq!(
        auto.stats.war_edges + auto.stats.waw_edges,
        0,
        "per-chunk renaming must remove every WAR/WAW edge of the chunked pipeline"
    );
    assert!(
        auto.stats.chunk_renames + auto.stats.renames_elided > 0,
        "the automatic variant renames (or elides) at chunk granularity"
    );
    assert!(
        auto.stats.dependences_seen < rows[0].stats.dependences_seen,
        "per-chunk renaming must remove band conflicts ({} vs {})",
        auto.stats.dependences_seen,
        rows[0].stats.dependences_seen,
    );
    println!(
        "\nautomatic per-chunk: {} chunk renames ({} recycled), {} elided, {} fallbacks, WAR+WAW = 0",
        auto.stats.chunk_renames,
        auto.stats.renames_recycled,
        auto.stats.renames_elided,
        auto.stats.rename_fallbacks,
    );
}

// ---------------------------------------------------------------------------
// Scenario 3: tracker-sharding spawn-rate ablation
// ---------------------------------------------------------------------------

/// Spawner-thread counts exercised by the spawn-rate scenario.
const SPAWNER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Shard count of the "sharded" configuration (the acceptance bar is N ≥ 4).
const SHARDED: usize = 8;

/// Spawn `per_spawner` tasks from each of `spawners` OS threads into one
/// runtime and return the insertion rate (tasks/second over the spawn phase
/// only) plus the runtime stats. Every task takes real tracker work: an
/// `inout` chain edge on its spawner's private cell and an `input` on a
/// rotating feed handle.
fn spawn_rate_run(shards: usize, spawners: usize, per_spawner: usize) -> (f64, RuntimeStats) {
    let rt = Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_tracker_shards(shards)
            // This scenario isolates *sharding* of the mutex path. The
            // optimistic fast path would skew the comparison: with 1 shard
            // both accesses always share it (fast-path eligible), while
            // with N shards the two allocations usually span shards (forced
            // fallback) — the single-shard row would be measuring a
            // different code path. The fast-path ablation below compares
            // optimistic vs locked explicitly.
            .with_tracker_fast_path(false),
    );
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..spawners {
            let rt = &rt;
            scope.spawn(move || {
                let chain = rt.data(0u64);
                let feeds: Vec<Data<u64>> = (0..8).map(|_| rt.data(1u64)).collect();
                for i in 0..per_spawner {
                    let c = chain.clone();
                    let f = feeds[i % feeds.len()].clone();
                    rt.task().inout(&c).input(&f).spawn(move |ctx| {
                        let add = *ctx.read(&f);
                        let mut c = ctx.write(&c);
                        *c = c.wrapping_add(add);
                    });
                }
            });
        }
    });
    let spawn_time = start.elapsed();
    rt.taskwait();
    let stats = rt.stats();
    assert_eq!(
        stats.tasks_spawned as usize,
        spawners * per_spawner,
        "spawn-rate run lost tasks"
    );
    assert_eq!(stats.tasks_executed, stats.tasks_spawned);
    let rate = (spawners * per_spawner) as f64 / spawn_time.as_secs_f64();
    rt.shutdown();
    (rate, stats)
}

/// Best-of-3 insertion rate (suppresses scheduler noise on busy hosts).
fn spawn_rate_best(shards: usize, spawners: usize, per_spawner: usize) -> (f64, RuntimeStats) {
    let mut best: Option<(f64, RuntimeStats)> = None;
    for _ in 0..3 {
        let (rate, stats) = spawn_rate_run(shards, spawners, per_spawner);
        if best.as_ref().is_none_or(|(b, _)| rate > *b) {
            best = Some((rate, stats));
        }
    }
    best.expect("three runs happened")
}

/// Single-access insertion rate: every task declares exactly one `output`
/// on one of `CELLS` per-spawner plain cells, so (with the fast path on)
/// nearly every registration is a one-CAS optimistic publication. Returns
/// insertions/sec over the spawn phase and the runtime stats.
fn single_access_rate(
    fast_path: bool,
    recycler: bool,
    spawners: usize,
    per_spawner: usize,
) -> (f64, RuntimeStats) {
    const CELLS: usize = 64;
    let rt = Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_tracker_shards(SHARDED)
            .with_tracker_fast_path(fast_path)
            .with_task_recycler(recycler),
    );
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..spawners {
            let rt = &rt;
            scope.spawn(move || {
                let cells: Vec<Data<u64>> = (0..CELLS).map(|_| rt.data(0u64)).collect();
                for i in 0..per_spawner {
                    let c = cells[i % cells.len()].clone();
                    rt.task().output(&c).spawn(move |ctx| {
                        *ctx.write(&c) = i as u64;
                    });
                }
            });
        }
    });
    let spawn_time = start.elapsed();
    rt.taskwait();
    let stats = rt.stats();
    assert_eq!(stats.tasks_spawned as usize, spawners * per_spawner);
    assert_eq!(stats.tasks_executed, stats.tasks_spawned);
    let rate = (spawners * per_spawner) as f64 / spawn_time.as_secs_f64();
    rt.shutdown();
    (rate, stats)
}

fn single_access_best(
    fast_path: bool,
    recycler: bool,
    spawners: usize,
    per_spawner: usize,
) -> (f64, RuntimeStats) {
    let mut best: Option<(f64, RuntimeStats)> = None;
    for _ in 0..3 {
        let (rate, stats) = single_access_rate(fast_path, recycler, spawners, per_spawner);
        if best.as_ref().is_none_or(|(b, _)| rate > *b) {
            best = Some((rate, stats));
        }
    }
    best.expect("three runs happened")
}

/// In-flight bound of the allocation-diet runs: spawners yield while more
/// tasks than this are outstanding. Keeps the working set inside the node
/// slab so recycling — not first-fill allocation — dominates, exactly the
/// steady state a long-running service sits in. (An unthrottled spawner on
/// a loaded host can run thousands of tasks ahead; every one of those needs
/// a fresh node whatever the recycler does.)
const DIET_IN_FLIGHT: usize = 512;

/// Full-spawn rate with in-flight backpressure (see [`DIET_IN_FLIGHT`]).
fn diet_rate(recycler: bool, spawners: usize, per_spawner: usize) -> (f64, RuntimeStats) {
    const CELLS: usize = 64;
    let rt = Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_tracker_shards(SHARDED)
            .with_task_recycler(recycler),
    );
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..spawners {
            let rt = &rt;
            scope.spawn(move || {
                let cells: Vec<Data<u64>> = (0..CELLS).map(|_| rt.data(0u64)).collect();
                for i in 0..per_spawner {
                    while rt.in_flight_tasks() > DIET_IN_FLIGHT {
                        std::thread::yield_now();
                    }
                    let c = cells[i % cells.len()].clone();
                    rt.task().output(&c).spawn(move |ctx| {
                        *ctx.write(&c) = i as u64;
                    });
                }
            });
        }
    });
    rt.taskwait();
    let rate = (spawners * per_spawner) as f64 / start.elapsed().as_secs_f64();
    let stats = rt.stats();
    assert_eq!(stats.tasks_spawned as usize, spawners * per_spawner);
    rt.shutdown();
    (rate, stats)
}

fn diet_rate_best(recycler: bool, spawners: usize, per_spawner: usize) -> (f64, RuntimeStats) {
    let mut best: Option<(f64, RuntimeStats)> = None;
    for _ in 0..3 {
        let (rate, stats) = diet_rate(recycler, spawners, per_spawner);
        if best.as_ref().is_none_or(|(b, _)| rate > *b) {
            best = Some((rate, stats));
        }
    }
    best.expect("three runs happened")
}

/// The spawn-side allocation diet: full-spawn throughput with the task-node
/// recycler (and inline accesses/bodies) against the PR-4 configuration
/// (fast path on, one fresh node + access list + boxed body per spawn),
/// plus the recycler hit rate the diet lives on.
fn allocation_diet_section(per_spawner: usize) {
    println!("\n=== Spawn-side allocation diet (full-spawn, single-access tasks) ===\n");
    println!(
        "{per_spawner} single-`output` tasks per spawner thread over 64 cells, \
         {SHARDED} shards, ≤{DIET_IN_FLIGHT} in flight, best of 3\n"
    );
    println!(
        "{:<10}{:>16}{:>16}{:>10}{:>14}{:>14}",
        "spawners", "no recycler/s", "recycled/s", "speedup", "recycle rate", "inline rate"
    );
    let mut at_eight = None;
    for spawners in [1usize, 2, 4, 8] {
        let (base, _) = diet_rate_best(false, spawners, per_spawner);
        let (diet, diet_stats) = diet_rate_best(true, spawners, per_spawner);
        let recycle_rate = diet_stats.task_recycle_rate().unwrap_or(0.0);
        let inline_rate = diet_stats.access_inline_hits as f64
            / (diet_stats.access_inline_hits + diet_stats.access_inline_spills).max(1) as f64;
        println!(
            "{:<10}{:>16.0}{:>16.0}{:>9.2}x{:>13.1}%{:>13.1}%",
            spawners,
            base,
            diet,
            diet / base,
            100.0 * recycle_rate,
            100.0 * inline_rate,
        );
        if spawners == 8 {
            at_eight = Some((base, diet, diet_stats));
        }
    }
    let (base, diet, diet_stats) = at_eight.expect("8-spawner row ran");
    println!(
        "\nrecycler @ 8 spawners: {diet:.0} spawns/s vs {base:.0} without ({:.2}x, target 1.15x), \
         {} nodes recycled ({:.1}% hit rate), {} fresh",
        diet / base,
        diet_stats.task_nodes_recycled,
        100.0 * diet_stats.task_recycle_rate().unwrap_or(0.0),
        diet_stats.task_nodes_allocated,
    );
    // CI gates. With the in-flight bound, the slab fills once (≲ the bound
    // plus spawner overshoot) and everything after runs on recycled nodes —
    // a deterministic property as long as the run is long enough to
    // amortise the fill.
    if per_spawner * 8 >= 4 * DIET_IN_FLIGHT {
        assert!(
            diet_stats.task_recycle_rate().unwrap_or(0.0) >= 0.50,
            "the throttled single-access storm must recycle most nodes, got {:.1}%",
            100.0 * diet_stats.task_recycle_rate().unwrap_or(0.0),
        );
    }
    assert_eq!(
        diet_stats.access_inline_spills, 0,
        "single-access tasks never spill their access list"
    );
    // Throughput: the diet must never cost end-to-end spawn rate. On hosts
    // with real parallelism it wins outright (the ≥1.15x acceptance target
    // printed above); without, scheduling noise dominates — same core-aware
    // tolerance as the other end-to-end asserts in this harness.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let tolerance = if cores >= 4 { 0.9 } else { 0.75 };
    assert!(
        diet >= base * tolerance,
        "the recycler must not be slower end to end: {diet:.0}/s vs {base:.0}/s \
         ({cores} hardware threads, tolerance {tolerance})"
    );
}

fn fast_path_section(per_spawner: usize) {
    println!("\n=== Optimistic-fast-path insertion ablation (single-access tasks) ===\n");
    println!(
        "{per_spawner} single-`output` tasks per spawner thread over 64 cells, \
         {SHARDED} shards, best of 3\n"
    );
    println!(
        "{:<10}{:>16}{:>16}{:>10}{:>12}{:>12}",
        "spawners", "locked/s", "optimistic/s", "speedup", "hit rate", "fallbacks"
    );
    let mut at_one = None;
    for spawners in [1usize, 2, 4, 8] {
        // Recycler on in both rows (the default): this section ablates the
        // tracker tier only; the allocation-diet section ablates the
        // recycler.
        let (locked, _) = single_access_best(false, true, spawners, per_spawner);
        let (fast, fast_stats) = single_access_best(true, true, spawners, per_spawner);
        let hit_rate = fast_stats.tracker_fast_path_rate().unwrap_or(0.0);
        println!(
            "{:<10}{:>16.0}{:>16.0}{:>9.2}x{:>11.1}%{:>12}",
            spawners,
            locked,
            fast,
            fast / locked,
            100.0 * hit_rate,
            fast_stats.tracker_fast_path_fallbacks,
        );
        if spawners == 1 {
            at_one = Some((locked, fast, hit_rate));
        }
    }
    let (locked, fast, hit_rate) = at_one.expect("spawner count 1 ran");
    println!(
        "\noptimistic @ 1 spawner (full spawn path): {fast:.0} insertions/s vs {locked:.0} \
         locked ({:.2}x), fast-path hit rate {:.1}%",
        fast / locked,
        100.0 * hit_rate,
    );
    // CI gate: the single-access workload must be fast-path dominated.
    assert!(
        hit_rate >= 0.90,
        "single-access workload must take the fast path >= 90% of the time, got {:.1}%",
        100.0 * hit_rate,
    );
    // The optimistic path must never *cost* end-to-end throughput. The
    // tracker is a modest slice of the full spawn path (builder, node
    // allocation, scheduling), so the end-to-end ratio hovers near 1.0 and
    // is noise-bound on hosts without real parallelism — same core-aware
    // tolerance as the sharding acceptance above.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let tolerance = if cores >= 4 { 0.9 } else { 0.75 };
    assert!(
        fast >= locked * tolerance,
        "optimistic insertion must not be slower than the locked path: \
         {fast:.0}/s vs {locked:.0}/s ({cores} hardware threads, tolerance {tolerance})"
    );

    // The tracker-only comparison: drive register→complete→retire directly
    // (no task bodies, no scheduling), which is the cost the fast path
    // actually attacks. Best of 3 per configuration.
    println!("\ntracker-only register+retire round trip (single-`output` tasks, 64 cells):");
    let tasks = 150_000;
    let rate_best = |fast_path: bool, spawners: usize| {
        (0..3)
            .map(|_| {
                ompss::graph::bench::register_retire_rate(SHARDED, fast_path, spawners, tasks, 64)
            })
            .fold(0.0f64, f64::max)
    };
    let mut at_one_direct = None;
    for spawners in [1usize, 8] {
        let locked = rate_best(false, spawners);
        let fast = rate_best(true, spawners);
        println!(
            "  {spawners} spawner(s): locked {locked:.0}/s, optimistic {fast:.0}/s ({:.2}x, \
             target 1.5x)",
            fast / locked
        );
        if spawners == 1 {
            at_one_direct = Some((locked, fast));
        }
    }
    let (locked, fast) = at_one_direct.expect("1-spawner direct rate ran");
    assert!(
        fast >= locked * 1.05,
        "the optimistic register+retire path must beat the mutex path at 1 spawner: \
         {fast:.0}/s vs {locked:.0}/s"
    );
}

fn spawn_rate_section(per_spawner: usize) {
    println!("\n=== Tracker-sharding spawn-rate ablation ===\n");
    println!(
        "{per_spawner} tasks per spawner thread, inout-chain + input accesses, best of 3\n"
    );
    println!(
        "{:<10}{:>16}{:>16}{:>10}{:>14}{:>14}",
        "spawners", "1 shard/s", format!("{SHARDED} shards/s"), "speedup", "contended(1)", "contended(N)"
    );
    let mut at_max = None;
    for spawners in SPAWNER_COUNTS {
        let (single, single_stats) = spawn_rate_best(1, spawners, per_spawner);
        let (sharded, sharded_stats) = spawn_rate_best(SHARDED, spawners, per_spawner);
        println!(
            "{:<10}{:>16.0}{:>16.0}{:>9.2}x{:>14}{:>14}",
            spawners,
            single,
            sharded,
            sharded / single,
            single_stats.tracker_lock_contention,
            sharded_stats.tracker_lock_contention,
        );
        if spawners == *SPAWNER_COUNTS.last().expect("non-empty") {
            at_max = Some((single, sharded, sharded_stats));
        }
    }
    let (single, sharded, sharded_stats) = at_max.expect("ran the max spawner count");
    let hits = &sharded_stats.tracker_shard_hits;
    let (min_hits, max_hits) = (
        hits.iter().copied().min().unwrap_or(0),
        hits.iter().copied().max().unwrap_or(0),
    );
    println!(
        "\nsharded @ {} spawners: {:.0} insertions/s vs {:.0} single-shard ({:.2}x), \
         shard hits min/max = {}/{}, contention rate {:.4}",
        SPAWNER_COUNTS[SPAWNER_COUNTS.len() - 1],
        sharded,
        single,
        sharded / single,
        min_hits,
        max_hits,
        sharded_stats.tracker_contention_rate().unwrap_or(0.0),
    );
    // Acceptance: sharded insertion throughput at the maximum spawner count
    // must match or beat the single global lock. On hosts with real
    // parallelism a 10% tolerance absorbs timer noise and the sharded
    // variant wins outright; with fewer than 4 hardware threads there is no
    // cross-thread contention for sharding to relieve and pure scheduling
    // noise dominates the ratio (±20% run to run on a 1-core container), so
    // the bound is widened to a sanity floor.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let tolerance = if cores >= 4 { 0.9 } else { 0.7 };
    assert!(
        sharded >= single * tolerance,
        "sharded tracker ({SHARDED} shards) must not insert slower than the \
         single-shard tracker at {} spawner threads: {sharded:.0}/s vs {single:.0}/s \
         ({cores} hardware threads, tolerance {tolerance})",
        SPAWNER_COUNTS[SPAWNER_COUNTS.len() - 1],
    );
}

fn main() {
    let workers = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        });
    let frames = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);
    let pipeline_iters = std::env::args()
        .nth(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let spawn_tasks = std::env::args()
        .nth(4)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);

    let params = Params {
        video: VideoParams {
            width: 320,
            height: 192,
            frames,
            gop: 8,
            seed: 19,
        },
        window: 6,
        pool: 10,
    };
    println!("=== Renaming ablation (h264dec pipeline, Listing 1) ===\n");
    println!(
        "{}x{} stream, {} frames, {} workers, manual ring depth N = {}\n",
        params.video.width, params.video.height, params.video.frames, workers, params.window
    );

    let stream = params.stream();
    let base = RuntimeConfig::default().with_workers(workers);
    let rows = [
        run(
            "serialised (no renaming)",
            &stream,
            &params,
            base.clone().with_renaming(false),
            true,
        ),
        run("manual RenameRing", &stream, &params, base.clone(), false),
        // Elision off: this row isolates the *renaming* effect (every
        // decoupled rebinding allocates), which keeps the conflict-count
        // comparison against the serialised row strict.
        run(
            "automatic renaming",
            &stream,
            &params,
            base.clone().with_rename_elision(false),
            true,
        ),
        // The default configuration: renames elide whenever the previous
        // round has fully retired (this pipeline's `taskwait on (rc)` gives
        // workers time to drain, so most rebindings elide).
        run("automatic + elision", &stream, &params, base.clone(), true),
    ];

    let seq = h264dec::run_seq(&params);
    println!(
        "{:<28}{:>12}{:>10}{:>10}{:>8}{:>8}{:>8}{:>9}",
        "variant", "time", "speedup", "edges", "RAW", "WAR", "WAW", "renames"
    );
    let serial_time = rows[0].time.as_secs_f64();
    for row in &rows {
        assert_eq!(row.checksum, seq, "{}: wrong decode output", row.label);
        println!(
            "{:<28}{:>12.3?}{:>9.2}x{:>10}{:>8}{:>8}{:>8}{:>9}",
            row.label,
            row.time,
            serial_time / row.time.as_secs_f64(),
            row.stats.edges_added,
            row.stats.raw_edges,
            row.stats.war_edges,
            row.stats.waw_edges,
            row.stats.renames,
        );
    }

    let auto = &rows[2];
    let manual = &rows[1];
    let eliding = &rows[3];
    println!(
        "\nautomatic renaming: {} renames, {} recycled ({:.0}% pool hit), {} fallbacks",
        auto.stats.renames,
        auto.stats.renames_recycled,
        100.0 * auto.stats.renames_recycled as f64 / auto.stats.renames.max(1) as f64,
        auto.stats.rename_fallbacks,
    );
    println!(
        "automatic + elision: {} renames, {} elided (in-place first writes), {} fallbacks",
        eliding.stats.renames, eliding.stats.renames_elided, eliding.stats.rename_fallbacks,
    );
    assert!(
        eliding.stats.renames + eliding.stats.renames_elided > 0,
        "the eliding variant still decouples every rebinding"
    );
    let ratio = auto.time.as_secs_f64() / manual.time.as_secs_f64();
    println!(
        "automatic vs manual: {:.2}x the manual time ({})",
        ratio,
        if ratio <= 1.10 {
            "within the 10% acceptance bound"
        } else {
            "OUTSIDE the 10% acceptance bound"
        }
    );
    // Edge counts only include edges whose predecessor was still in flight
    // at registration time, so they vary with host load. `dependences_seen`
    // counts every conflicting predecessor discovered at registration and
    // is deterministic: renaming must strictly shrink it (the renamed
    // buffers stop conflicting at all).
    println!(
        "dependences discovered at registration: serialised {}, automatic {}",
        rows[0].stats.dependences_seen, auto.stats.dependences_seen,
    );
    assert!(
        auto.stats.dependences_seen < rows[0].stats.dependences_seen,
        "renaming must remove buffer conflicts ({} vs {})",
        auto.stats.dependences_seen,
        rows[0].stats.dependences_seen,
    );

    chunked_pipeline_section(workers, pipeline_iters);
    spawn_rate_section(spawn_tasks);
    fast_path_section(spawn_tasks);
    allocation_diet_section(spawn_tasks);
}

//! The Section 4 `ray-rot` claim: the OmpSs scheduler places dependent tasks
//! back to back on the same core, so the fused ray-rot workload speeds up by
//! more than the product of its parts.
//!
//! Two experiments:
//!
//! 1. **Simulated** (paper scale): c-ray, rotate and ray-rot on the 32-core
//!    model, with the OmpSs locality scheduler enabled and disabled.
//! 2. **Measured** (host scale): the locality hit rate the real runtime
//!    achieves on the chained rot-cc benchmark, taken from runtime
//!    statistics.

use benchsuite::benchmarks::rotcc;
use ompss::{Runtime, RuntimeConfig, SchedulerPolicy};
use simsched::machine::MachineParams;
use simsched::workloads::{workload, Structure};
use simsched::{ompss as sim_ompss, pthreads as sim_pthreads};

fn phases_of(name: &str) -> Vec<simsched::workloads::Phase> {
    match workload(name).structure {
        Structure::Phased(p) => p,
        _ => unreachable!("{name} is phased"),
    }
}

fn main() {
    println!("=== Locality ablation (ray-rot, Section 4) ===\n");
    let machine = MachineParams::default();

    println!("simulated OmpSs-over-Pthreads speedups with and without the locality scheduler:");
    println!(
        "{:<8}{:>12}{:>12}{:>14}{:>22}",
        "cores", "c-ray", "rotate", "ray-rot", "ray-rot (no locality)"
    );
    for cores in simsched::PAPER_CORE_COUNTS {
        let speedup = |name: &str, locality: bool| {
            let phases = phases_of(name);
            let o = sim_ompss::phased_time_ns(&phases, cores, &machine, locality);
            let p = sim_pthreads::phased_time_ns(&phases, cores, &machine);
            p as f64 / o as f64
        };
        println!(
            "{:<8}{:>12.2}{:>12.2}{:>14.2}{:>22.2}",
            cores,
            speedup("c-ray", true),
            speedup("rotate", true),
            speedup("ray-rot", true),
            speedup("ray-rot", false),
        );
    }
    println!(
        "\nWithout locality-aware wakeups the fused workload loses most of its\n\
         edge over the two kernels run separately — the paper's explanation."
    );

    // --- Measured on the host ----------------------------------------------
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    println!("\nmeasured locality hit rate of the real runtime on rot-cc ({threads} workers):");
    for (label, policy) in [
        ("locality work stealing", SchedulerPolicy::LocalityWorkStealing),
        ("plain work stealing", SchedulerPolicy::WorkStealing),
        ("global FIFO", SchedulerPolicy::Fifo),
    ] {
        let rt = Runtime::new(
            RuntimeConfig::default()
                .with_workers(threads)
                .with_policy(policy)
                .with_tracing(true),
        );
        let params = rotcc::Params::large();
        let start = std::time::Instant::now();
        let _ = rotcc::run_ompss(&params, &rt);
        let elapsed = start.elapsed();
        let stats = rt.stats();
        println!(
            "  {label:<24} time {elapsed:>10.3?}   local wakeups {:>6}   global wakeups {:>6}   hit rate {}",
            stats.sched_local_wakeups,
            stats.sched_global_wakeups,
            stats
                .locality_hit_rate()
                .map(|r| format!("{:.1} %", 100.0 * r))
                .unwrap_or_else(|| "n/a".to_string()),
        );
    }
}

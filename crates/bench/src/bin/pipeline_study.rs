//! The Section 3 case study: pipelining the H.264 decoder main loop with
//! OmpSs tasks (Listing 1).
//!
//! Runs the sequential, Pthreads-pipeline and OmpSs-task variants of the
//! synthetic decoder on the host, verifies they produce identical output,
//! and reports the task-graph statistics of the OmpSs variant (tasks,
//! dependence edges, locality hit rate) — the quantities that make the
//! expressiveness discussion of Section 3 concrete.

use std::time::Instant;

use benchsuite::benchmarks::h264dec;
use ompss::{Runtime, RuntimeConfig};

fn main() {
    let threads = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        });
    let params = h264dec::Params::large();
    println!("=== H.264 pipeline case study (Listing 1) ===");
    println!(
        "stream: {}x{} pixels, {} frames, GOP {}, ring depth N={}",
        params.video.width, params.video.height, params.video.frames, params.video.gop, params.window
    );

    let t0 = Instant::now();
    let seq = h264dec::run_seq(&params);
    let seq_time = t0.elapsed();
    println!("sequential decode:        {seq_time:>12.3?}  checksum {seq:#018x}");

    let t0 = Instant::now();
    let pth = h264dec::run_pthreads(&params, threads);
    let pth_time = t0.elapsed();
    println!("pthreads pipeline:        {pth_time:>12.3?}  checksum {pth:#018x}");

    let rt = Runtime::new(
        RuntimeConfig::default()
            .with_workers(threads)
            .with_tracing(true),
    );
    let t0 = Instant::now();
    let omp = h264dec::run_ompss(&params, &rt);
    let omp_time = t0.elapsed();
    println!("ompss task pipeline:      {omp_time:>12.3?}  checksum {omp:#018x}");

    assert_eq!(seq, pth, "pthreads output must match the sequential decoder");
    assert_eq!(seq, omp, "ompss output must match the sequential decoder");
    println!("all three variants produce identical decoded video ✔");

    let stats = rt.stats();
    println!("\n--- OmpSs task-graph statistics ---");
    println!("tasks spawned:            {}", stats.tasks_spawned);
    println!("dependence edges:         {}", stats.edges_added);
    println!("edges per task:           {:.2}", stats.mean_edges_per_task());
    println!("immediately ready tasks:  {}", stats.immediately_ready);
    println!("taskwait_on calls (EOF):  {}", stats.taskwait_ons);
    println!(
        "locality hit rate:        {}",
        stats
            .locality_hit_rate()
            .map(|r| format!("{:.1} %", 100.0 * r))
            .unwrap_or_else(|| "n/a".to_string())
    );
    let busy = rt.busy_ns_per_worker();
    println!("busy time per worker:     {busy:?} ns");
    println!(
        "\nspeedup over sequential:  pthreads {:.2}x, ompss {:.2}x (on {} worker threads)",
        seq_time.as_secs_f64() / pth_time.as_secs_f64(),
        seq_time.as_secs_f64() / omp_time.as_secs_f64(),
        threads
    );
}

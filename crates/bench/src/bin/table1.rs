//! Regenerate Table 1 of the paper.
//!
//! Default mode: run both runtime models (OmpSs task runtime, Pthreads SPMD)
//! through the `simsched` simulator on the paper's 32-core machine model and
//! print the speedup table next to the published values.
//!
//! `--real [threads ...]`: additionally run the *real* benchmark
//! implementations (small size unless `--large`) on the host at the given
//! worker counts and print measured speedups. On a small host this exercises
//! the actual runtimes but cannot reach the paper's core counts — that is
//! what the simulator is for.

use benchsuite::WorkloadSize;
use simsched::{paper_table1, simulate_table1, MachineParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let real = args.iter().any(|a| a == "--real");
    let large = args.iter().any(|a| a == "--large");

    let machine = MachineParams::default();
    let simulated = simulate_table1(&machine);
    let paper = paper_table1();

    println!(
        "{}",
        simulated.render("=== Table 1 (simulated on the 32-core machine model) ===")
    );
    println!(
        "{}",
        paper.render("=== Table 1 (values published in the paper) ===")
    );

    println!("=== Shape comparison (simulated vs paper, per-benchmark means) ===");
    println!("{:<16}{:>12}{:>12}", "Benchmark", "simulated", "paper");
    for row in &simulated.rows {
        let paper_mean = paper.row(&row.name).map(|r| r.mean()).unwrap_or(f64::NAN);
        println!("{:<16}{:>12.2}{:>12.2}", row.name, row.mean(), paper_mean);
    }
    println!(
        "{:<16}{:>12.2}{:>12.2}",
        "overall",
        simulated.overall_mean(),
        paper.overall_mean()
    );

    if real {
        let threads: Vec<usize> = args
            .iter()
            .skip_while(|a| *a != "--real")
            .skip(1)
            .take_while(|a| !a.starts_with("--"))
            .filter_map(|a| a.parse().ok())
            .collect();
        let threads = if threads.is_empty() {
            vec![std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)]
        } else {
            threads
        };
        let size = if large {
            WorkloadSize::Large
        } else {
            WorkloadSize::Small
        };
        println!("\n=== Measured on this host (Pthreads time / OmpSs time) ===");
        print!("{:<16}", "Benchmark");
        for t in &threads {
            print!("{:>10}", format!("{t} thr"));
        }
        println!();
        // Captured-replay companion rows print directly under their
        // fresh-spawn rows.
        let captured = benchsuite::captured_benchmark_names();
        let mut names: Vec<&str> = Vec::new();
        for name in benchsuite::benchmark_names() {
            names.push(name);
            if let Some(cap) = captured
                .iter()
                .find(|c| c.strip_suffix("-cap") == Some(name))
            {
                names.push(cap);
            }
        }
        let last_t = *threads.last().expect("at least one thread count");
        let mut all = Vec::new();
        // (name, ompss seconds, speedup) at the last thread count.
        let mut rows: Vec<(&str, f64, f64)> = Vec::new();
        for name in names {
            print!("{name:<16}");
            for &t in &threads {
                let (_p, o, s) = bench_harness::measure_speedup(name, t, size);
                print!("{s:>10.2}");
                all.push(s);
                if t == last_t {
                    rows.push((name, o.as_secs_f64(), s));
                }
            }
            println!();
        }
        println!(
            "geometric mean over all measured cells: {:.2}",
            bench_harness::geometric_mean(&all)
        );
        println!("\n=== Captured vs fresh-spawn rows ({last_t} thr) ===");
        for cap in &captured {
            let base = cap.strip_suffix("-cap").expect("captured names end in -cap");
            let Some(&(_, cap_o, cap_s)) = rows.iter().find(|(n, ..)| n == cap) else {
                continue;
            };
            let Some(&(_, base_o, base_s)) = rows.iter().find(|(n, ..)| *n == base) else {
                continue;
            };
            println!(
                "{cap:<16} speedup {cap_s:.2} vs {base_s:.2} fresh; OmpSs {:.1} ms vs {:.1} ms",
                cap_o * 1e3,
                base_o * 1e3
            );
        }
        let mut body = format!("{{\"threads\": {last_t}, ");
        body.push_str(&format!(
            "\"size\": \"{}\"",
            if large { "large" } else { "small" }
        ));
        for (name, ompss, speedup) in &rows {
            body.push_str(&format!(
                ", \"{name}\": {{\"ompss_ms\": {:.3}, \"speedup\": {speedup:.3}}}",
                ompss * 1e3
            ));
        }
        body.push('}');
        bench_harness::update_bench_json("table1", &body);
        println!("\nmeasured rows recorded in BENCH_replay.json");
    }
}

//! `service_load` — multi-tenant service smoke/load harness.
//!
//! Drives the `service` crate's job frontend the way a saturated deployment
//! would: 8 client threads stream jobs at 4 tenants (mixed lanes, pools and
//! budgets) through 2 dispatchers, with one tenant deliberately plugged so
//! part of the load is guaranteed to hit admission control. Asserts the
//! properties the service promises under overload:
//!
//! * **zero lost jobs** — every accepted ticket resolves, and each job's
//!   side effect is observed exactly once;
//! * **bounded queue depth** — the recorded peak never exceeds the
//!   configured capacity;
//! * **non-zero shed** — the deliberate overload produces typed rejections
//!   (admission control actually engaged);
//! * **ledger balance** — submitted == accepted + rejected at both the
//!   service and tenant level.
//!
//! Records throughput and shed rate into `BENCH_replay.json` under the
//! `service_load` section.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench_harness::update_bench_json;
use service::{
    JobService, JobSpec, Lane, RetryPolicy, ServiceConfig, TenantId, TenantSpec,
};

const CLIENTS: usize = 8;
const JOBS_PER_CLIENT: usize = 40;
const QUEUE_CAPACITY: usize = 16;

fn main() {
    let svc = Arc::new(JobService::new(
        ServiceConfig::default()
            .with_dispatchers(2)
            .with_queue_capacity(QUEUE_CAPACITY),
    ));

    // Four tenants with deliberately different shapes: a latency-lane
    // tenant, two bulk tenants (one with a 2-runtime pool), and a "flood"
    // tenant whose budget of 1 is held by a plug job for the whole
    // submission phase — every job aimed at it sheds on TenantBudget.
    let tenants: Vec<TenantId> = vec![
        svc.register_tenant(
            TenantSpec::new("interactive")
                .with_lane(Lane::Latency)
                .with_in_flight_budget(8),
        )
        .unwrap(),
        svc.register_tenant(TenantSpec::new("batch-a").with_in_flight_budget(8))
            .unwrap(),
        svc.register_tenant(
            TenantSpec::new("batch-b")
                .with_pool_size(2)
                .with_in_flight_budget(8),
        )
        .unwrap(),
        svc.register_tenant(TenantSpec::new("flood").with_in_flight_budget(1))
            .unwrap(),
    ];

    let gate = Arc::new(AtomicBool::new(false));
    let plug = {
        let gate = Arc::clone(&gate);
        svc.submit(
            tenants[3],
            JobSpec::spawn(move |_cx| {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            }),
        )
        .expect("plug job must admit")
    };

    // Per-tenant observed side-effect sum; each job adds its unique weight
    // exactly once if and only if it runs exactly once.
    let effects: Vec<Arc<AtomicU64>> = (0..tenants.len())
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();

    let start = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let tenants = tenants.clone();
            let effects: Vec<_> = effects.iter().map(Arc::clone).collect();
            std::thread::spawn(move || {
                let policy = RetryPolicy::default();
                // (ticket, tenant index, weight) per accepted job.
                let mut accepted = Vec::new();
                let mut rejected = 0u64;
                for j in 0..JOBS_PER_CLIENT {
                    let t = (c + j) % tenants.len();
                    let weight = (c * JOBS_PER_CLIENT + j) as u64 + 1;
                    let sum = Arc::clone(&effects[t]);
                    let job = JobSpec::spawn(move |cx| {
                        let h = cx.runtime.data(0u64);
                        let hh = h.clone();
                        let sum = Arc::clone(&sum);
                        cx.runtime.task().inout(&hh).spawn(move |tc| {
                            let mut acc = 0u64;
                            for k in 0..200u64 {
                                acc = acc.wrapping_add(k);
                            }
                            *tc.write(&hh) = std::hint::black_box(acc);
                            sum.fetch_add(weight, Ordering::SeqCst);
                        });
                    })
                    .with_affinity(j as u32);
                    // Even clients retry soft rejections; odd clients shed
                    // immediately — both paths must keep the ledger exact.
                    let outcome = if c % 2 == 0 {
                        svc.submit_with_retry(tenants[t], job, &policy)
                    } else {
                        svc.submit(tenants[t], job)
                    };
                    match outcome {
                        Ok(ticket) => accepted.push((ticket, t, weight)),
                        Err(r) => {
                            assert!(
                                r.error.is_soft(),
                                "client {c}: unexpected hard rejection {:?}",
                                r.error
                            );
                            rejected += 1;
                        }
                    }
                }
                (accepted, rejected)
            })
        })
        .collect();

    let mut accepted = Vec::new();
    let mut client_rejected = 0u64;
    for client in clients {
        let (a, r) = client.join().expect("client thread");
        accepted.extend(a);
        client_rejected += r;
    }

    // Submission phase over: release the plug and let everything drain.
    gate.store(true, Ordering::SeqCst);
    assert!(plug.wait().is_completed(), "plug job failed");
    svc.drain();
    let elapsed = start.elapsed();

    // Zero lost jobs: every accepted ticket resolved as completed, and the
    // per-tenant side-effect sums match the accepted weights exactly.
    let mut expected = vec![0u64; tenants.len()];
    for (ticket, t, weight) in &accepted {
        assert!(
            ticket.status().is_completed(),
            "accepted job (tenant {t}, weight {weight}) not completed after drain"
        );
        expected[*t] += weight;
    }
    for (t, sum) in effects.iter().enumerate() {
        assert_eq!(
            sum.load(Ordering::SeqCst),
            expected[t],
            "tenant {t}: side effects disagree with accepted jobs (lost or duplicated work)"
        );
    }

    let svc = Arc::into_inner(svc).expect("clients joined");
    let m = svc.shutdown();
    // `submitted`/`rejected` count submission *attempts*: a job retried R
    // times contributes R+1 submissions, R+[finally shed] rejections, and R
    // retries — so the client-side job count reconciles through `retries`.
    let jobs_offered = (CLIENTS * JOBS_PER_CLIENT) as u64 + 1; // + plug
    assert_eq!(m.submitted, jobs_offered + m.retries, "ledger lost submissions");
    assert_eq!(
        m.submitted,
        m.accepted + m.rejected(),
        "submitted != accepted + rejected"
    );
    assert_eq!(m.accepted, accepted.len() as u64 + 1, "accepted mismatch");
    assert_eq!(
        m.rejected(),
        client_rejected + m.retries,
        "rejected mismatch"
    );
    assert_eq!(m.completed, m.accepted, "accepted jobs failed or were lost");
    assert_eq!(m.failed, 0, "no job should fail in this harness");
    assert!(
        m.rejected() > 0,
        "deliberate overload produced no rejections — admission control never engaged"
    );
    assert!(
        m.peak_queue_depth <= m.queue_capacity,
        "queue depth {} exceeded capacity {}",
        m.peak_queue_depth,
        m.queue_capacity
    );
    for tm in &m.tenants {
        assert_eq!(
            tm.submitted,
            tm.accepted + tm.rejected_queue_full + tm.rejected_budget,
            "tenant {} ledger does not balance",
            tm.name
        );
        assert_eq!(tm.in_flight, 0, "tenant {} still has in-flight jobs", tm.name);
    }

    let shed_rate = m.shed_rate().unwrap_or(0.0);
    let throughput = m.completed as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("=== service_load: {CLIENTS} clients x {} tenants ===", tenants.len());
    println!("submitted        {:>8}", m.submitted);
    println!("accepted         {:>8}", m.accepted);
    println!("completed        {:>8}", m.completed);
    println!("rejected         {:>8}  (queue_full {}, budget {})",
        m.rejected(), m.rejected_queue_full, m.rejected_tenant_budget);
    println!("retries          {:>8}", m.retries);
    println!("peak queue depth {:>8}  (capacity {})", m.peak_queue_depth, m.queue_capacity);
    println!("shed rate        {shed_rate:>8.3}");
    println!("throughput       {throughput:>8.0} jobs/s");
    println!("all invariants held: zero lost jobs, bounded depth, non-zero shed");

    update_bench_json(
        "service_load",
        &format!(
            "{{\"clients\": {CLIENTS}, \"tenants\": {}, \"submitted\": {}, \
             \"accepted\": {}, \"completed\": {}, \"rejected\": {}, \
             \"retries\": {}, \"peak_queue_depth\": {}, \"queue_capacity\": {}, \
             \"shed_rate\": {:.4}, \"throughput_jobs_per_s\": {:.0}}}",
            tenants.len(),
            m.submitted,
            m.accepted,
            m.completed,
            m.rejected(),
            m.retries,
            m.peak_queue_depth,
            m.queue_capacity,
            shed_rate,
            throughput
        ),
    );
    println!("service_load section recorded in BENCH_replay.json");
}

//! `service_load` — multi-tenant service smoke/load harness.
//!
//! Drives the `service` crate's job frontend the way a saturated deployment
//! would: 8 client threads stream jobs at 4 tenants (mixed lanes, pools and
//! budgets) through 2 dispatchers, with one tenant deliberately plugged so
//! part of the load is guaranteed to hit admission control. Asserts the
//! properties the service promises under overload:
//!
//! * **zero lost jobs** — every accepted ticket resolves, and each job's
//!   side effect is observed exactly once;
//! * **bounded queue depth** — the recorded peak never exceeds the
//!   configured capacity;
//! * **non-zero shed** — the deliberate overload produces typed rejections
//!   (admission control actually engaged);
//! * **ledger balance** — submitted == accepted + rejected at both the
//!   service and tenant level.
//!
//! Records throughput and shed rate into `BENCH_replay.json` under the
//! `service_load` section.
//!
//! A second **chaos phase** then reruns a stream of jobs against a tenant
//! whose runtimes carry a seeded `FaultPlan` injecting ~1% task panics:
//! every ticket must still resolve (zero lost tickets), the terminal-state
//! ledger must balance, completed jobs' effects must be exactly intact, and
//! the injected failures must actually show up as poisoned-task counters.
//! Recorded under the `service_chaos` section.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench_harness::update_bench_json;
use ompss::{FaultClass, FaultPlan, RuntimeConfig};
use service::{
    JobService, JobSpec, JobStatus, Lane, RetryPolicy, ServiceConfig, TenantId, TenantSpec,
};

const CLIENTS: usize = 8;
const JOBS_PER_CLIENT: usize = 40;
const QUEUE_CAPACITY: usize = 16;

fn main() {
    let svc = Arc::new(JobService::new(
        ServiceConfig::default()
            .with_dispatchers(2)
            .with_queue_capacity(QUEUE_CAPACITY),
    ));

    // Four tenants with deliberately different shapes: a latency-lane
    // tenant, two bulk tenants (one with a 2-runtime pool), and a "flood"
    // tenant whose budget of 1 is held by a plug job for the whole
    // submission phase — every job aimed at it sheds on TenantBudget.
    let tenants: Vec<TenantId> = vec![
        svc.register_tenant(
            TenantSpec::new("interactive")
                .with_lane(Lane::Latency)
                .with_in_flight_budget(8),
        )
        .unwrap(),
        svc.register_tenant(TenantSpec::new("batch-a").with_in_flight_budget(8))
            .unwrap(),
        svc.register_tenant(
            TenantSpec::new("batch-b")
                .with_pool_size(2)
                .with_in_flight_budget(8),
        )
        .unwrap(),
        svc.register_tenant(TenantSpec::new("flood").with_in_flight_budget(1))
            .unwrap(),
    ];

    let gate = Arc::new(AtomicBool::new(false));
    let plug = {
        let gate = Arc::clone(&gate);
        svc.submit(
            tenants[3],
            JobSpec::spawn(move |_cx| {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            }),
        )
        .expect("plug job must admit")
    };

    // Per-tenant observed side-effect sum; each job adds its unique weight
    // exactly once if and only if it runs exactly once.
    let effects: Vec<Arc<AtomicU64>> = (0..tenants.len())
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();

    let start = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let tenants = tenants.clone();
            let effects: Vec<_> = effects.iter().map(Arc::clone).collect();
            std::thread::spawn(move || {
                let policy = RetryPolicy::default();
                // (ticket, tenant index, weight) per accepted job.
                let mut accepted = Vec::new();
                let mut rejected = 0u64;
                for j in 0..JOBS_PER_CLIENT {
                    let t = (c + j) % tenants.len();
                    let weight = (c * JOBS_PER_CLIENT + j) as u64 + 1;
                    let sum = Arc::clone(&effects[t]);
                    let job = JobSpec::spawn(move |cx| {
                        let h = cx.runtime.data(0u64);
                        let hh = h.clone();
                        let sum = Arc::clone(&sum);
                        cx.runtime.task().inout(&hh).spawn(move |tc| {
                            let mut acc = 0u64;
                            for k in 0..200u64 {
                                acc = acc.wrapping_add(k);
                            }
                            *tc.write(&hh) = std::hint::black_box(acc);
                            sum.fetch_add(weight, Ordering::SeqCst);
                        });
                    })
                    .with_affinity(j as u32);
                    // Even clients retry soft rejections; odd clients shed
                    // immediately — both paths must keep the ledger exact.
                    let outcome = if c % 2 == 0 {
                        svc.submit_with_retry(tenants[t], job, &policy)
                    } else {
                        svc.submit(tenants[t], job)
                    };
                    match outcome {
                        Ok(ticket) => accepted.push((ticket, t, weight)),
                        Err(r) => {
                            assert!(
                                r.error.is_soft(),
                                "client {c}: unexpected hard rejection {:?}",
                                r.error
                            );
                            rejected += 1;
                        }
                    }
                }
                (accepted, rejected)
            })
        })
        .collect();

    let mut accepted = Vec::new();
    let mut client_rejected = 0u64;
    for client in clients {
        let (a, r) = client.join().expect("client thread");
        accepted.extend(a);
        client_rejected += r;
    }

    // Submission phase over: release the plug and let everything drain.
    gate.store(true, Ordering::SeqCst);
    assert!(plug.wait().is_completed(), "plug job failed");
    svc.drain();
    let elapsed = start.elapsed();

    // Zero lost jobs: every accepted ticket resolved as completed, and the
    // per-tenant side-effect sums match the accepted weights exactly.
    let mut expected = vec![0u64; tenants.len()];
    for (ticket, t, weight) in &accepted {
        assert!(
            ticket.status().is_completed(),
            "accepted job (tenant {t}, weight {weight}) not completed after drain"
        );
        expected[*t] += weight;
    }
    for (t, sum) in effects.iter().enumerate() {
        assert_eq!(
            sum.load(Ordering::SeqCst),
            expected[t],
            "tenant {t}: side effects disagree with accepted jobs (lost or duplicated work)"
        );
    }

    let svc = Arc::into_inner(svc).expect("clients joined");
    let m = svc.shutdown();
    // `submitted`/`rejected` count submission *attempts*: a job retried R
    // times contributes R+1 submissions, R+[finally shed] rejections, and R
    // retries — so the client-side job count reconciles through `retries`.
    let jobs_offered = (CLIENTS * JOBS_PER_CLIENT) as u64 + 1; // + plug
    assert_eq!(m.submitted, jobs_offered + m.retries, "ledger lost submissions");
    assert_eq!(
        m.submitted,
        m.accepted + m.rejected(),
        "submitted != accepted + rejected"
    );
    assert_eq!(m.accepted, accepted.len() as u64 + 1, "accepted mismatch");
    assert_eq!(
        m.rejected(),
        client_rejected + m.retries,
        "rejected mismatch"
    );
    assert_eq!(m.completed, m.accepted, "accepted jobs failed or were lost");
    assert_eq!(m.failed, 0, "no job should fail in this harness");
    assert!(
        m.rejected() > 0,
        "deliberate overload produced no rejections — admission control never engaged"
    );
    assert!(
        m.peak_queue_depth <= m.queue_capacity,
        "queue depth {} exceeded capacity {}",
        m.peak_queue_depth,
        m.queue_capacity
    );
    for tm in &m.tenants {
        assert_eq!(
            tm.submitted,
            tm.accepted + tm.rejected_queue_full + tm.rejected_budget,
            "tenant {} ledger does not balance",
            tm.name
        );
        assert_eq!(tm.in_flight, 0, "tenant {} still has in-flight jobs", tm.name);
    }

    let shed_rate = m.shed_rate().unwrap_or(0.0);
    let throughput = m.completed as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("=== service_load: {CLIENTS} clients x {} tenants ===", tenants.len());
    println!("submitted        {:>8}", m.submitted);
    println!("accepted         {:>8}", m.accepted);
    println!("completed        {:>8}", m.completed);
    println!("rejected         {:>8}  (queue_full {}, budget {})",
        m.rejected(), m.rejected_queue_full, m.rejected_tenant_budget);
    println!("retries          {:>8}", m.retries);
    println!("peak queue depth {:>8}  (capacity {})", m.peak_queue_depth, m.queue_capacity);
    println!("shed rate        {shed_rate:>8.3}");
    println!("throughput       {throughput:>8.0} jobs/s");
    println!("all invariants held: zero lost jobs, bounded depth, non-zero shed");

    update_bench_json(
        "service_load",
        &format!(
            "{{\"clients\": {CLIENTS}, \"tenants\": {}, \"submitted\": {}, \
             \"accepted\": {}, \"completed\": {}, \"rejected\": {}, \
             \"retries\": {}, \"peak_queue_depth\": {}, \"queue_capacity\": {}, \
             \"shed_rate\": {:.4}, \"throughput_jobs_per_s\": {:.0}}}",
            tenants.len(),
            m.submitted,
            m.accepted,
            m.completed,
            m.rejected(),
            m.retries,
            m.peak_queue_depth,
            m.queue_capacity,
            shed_rate,
            throughput
        ),
    );
    println!("service_load section recorded in BENCH_replay.json");

    chaos_phase();
}

const CHAOS_JOBS: usize = 300;
const CHAOS_TASKS_PER_JOB: u64 = 8;
/// ~1% of tasks panic (rate per million executions).
const CHAOS_PANIC_PPM: u32 = 10_000;

/// Drive a seeded ~1%-task-panic fault plan through the full service stack
/// and assert the failure-semantics invariants hold under injected faults.
fn chaos_phase() {
    // Injected panics are the point of this phase; keep them off stderr so
    // a real failure stands out. Anything else still prints normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected fault"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let plan = FaultPlan::seeded(0xC4405).rate_per_million(FaultClass::TaskPanic, CHAOS_PANIC_PPM);
    let svc = JobService::new(
        ServiceConfig::default()
            .with_dispatchers(2)
            .with_queue_capacity(512),
    );
    let tenant = svc
        .register_tenant(
            TenantSpec::new("chaos")
                .with_pool_size(2)
                .with_in_flight_budget(512)
                .with_runtime_config(
                    RuntimeConfig::default()
                        .with_workers(2)
                        .with_fault_plan(plan.clone()),
                ),
        )
        .unwrap();

    let start = Instant::now();
    let mut jobs = Vec::with_capacity(CHAOS_JOBS);
    for j in 0..CHAOS_JOBS {
        let effect = Arc::new(AtomicU64::new(0));
        let ticket = {
            let effect = Arc::clone(&effect);
            svc.submit(
                tenant,
                JobSpec::spawn(move |cx| {
                    let h = cx.runtime.data(0u64);
                    for _ in 0..CHAOS_TASKS_PER_JOB {
                        let hh = h.clone();
                        let effect = Arc::clone(&effect);
                        cx.runtime.task().inout(&hh).spawn(move |tc| {
                            effect.fetch_add(1, Ordering::SeqCst);
                            *tc.write(&hh) += 1;
                        });
                    }
                })
                .with_affinity(j as u32),
            )
            .expect("chaos queue sized for the whole stream")
        };
        jobs.push((ticket, effect));
    }

    // Zero lost tickets: every submission resolves to a terminal state.
    let mut completed = 0u64;
    let mut failed = 0u64;
    for (ticket, effect) in &jobs {
        match ticket.wait() {
            JobStatus::Completed => {
                completed += 1;
                assert_eq!(
                    effect.load(Ordering::SeqCst),
                    CHAOS_TASKS_PER_JOB,
                    "a completed chaos job lost some of its effects"
                );
            }
            JobStatus::Failed(_) => failed += 1,
            other => panic!("chaos job resolved {other:?}"),
        }
    }
    let elapsed = start.elapsed();

    let m = svc.shutdown();
    assert_eq!(m.accepted, CHAOS_JOBS as u64, "chaos phase shed unexpectedly");
    assert_eq!(
        m.completed + m.failed + m.cancelled + m.expired,
        m.accepted,
        "chaos ledger does not balance"
    );
    assert_eq!(m.completed, completed);
    assert_eq!(m.failed, failed);

    let injected = plan.injected(FaultClass::TaskPanic);
    let tm = &m.tenants[0];
    assert!(
        injected > 0 && tm.runtime.tasks_poisoned > 0,
        "the fault plan injected nothing ({injected} panics, {} poisoned) — \
         raise CHAOS_JOBS or the rate",
        tm.runtime.tasks_poisoned
    );
    assert_eq!(
        tm.runtime.tasks_panicked, injected,
        "every injected panic must surface as a panicked task"
    );
    assert_eq!(tm.tracked_regions, 0, "chaos pools must drain their trackers");
    assert_eq!(tm.in_flight, 0);

    println!("=== service_chaos: {CHAOS_JOBS} jobs @ {CHAOS_PANIC_PPM} ppm task panics ===");
    println!("completed        {:>8}", m.completed);
    println!("failed           {:>8}", m.failed);
    println!("injected panics  {:>8}", injected);
    println!("tasks poisoned   {:>8}", tm.runtime.tasks_poisoned);
    println!("all invariants held: zero lost tickets, exact effects, clean drain");

    update_bench_json(
        "service_chaos",
        &format!(
            "{{\"jobs\": {CHAOS_JOBS}, \"tasks_per_job\": {CHAOS_TASKS_PER_JOB}, \
             \"panic_ppm\": {CHAOS_PANIC_PPM}, \"completed\": {}, \"failed\": {}, \
             \"injected_panics\": {}, \"tasks_poisoned\": {}, \"tasks_cancelled\": {}, \
             \"throughput_jobs_per_s\": {:.0}}}",
            m.completed,
            m.failed,
            injected,
            tm.runtime.tasks_poisoned,
            tm.runtime.tasks_cancelled,
            m.completed as f64 / elapsed.as_secs_f64().max(1e-9)
        ),
    );
    println!("service_chaos section recorded in BENCH_replay.json");
}

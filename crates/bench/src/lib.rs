//! # bench-harness — regenerating the paper's table and claims
//!
//! Shared helpers for the harness binaries:
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 (OmpSs-over-Pthreads speedups per benchmark and core count), simulated on the 32-core machine model and optionally measured on the host |
//! | `pipeline_study` | the Section 3 case study: the Listing-1 pipelined decoder, its task graph statistics and its output correctness |
//! | `barrier_ablation` | the Section 4 `rgbcmy` claim: polling task barrier vs blocking thread barrier |
//! | `locality_ablation` | the Section 4 `ray-rot` claim: locality-aware scheduling of dependent tasks |
//! | `granularity_ablation` | the Section 4 `h264dec` claim: task-grouping granularity vs exposed parallelism |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Duration;

use benchsuite::{run_benchmark, Variant, WorkloadSize};

/// Geometric mean of positive values (0 for an empty slice).
pub fn geometric_mean(values: &[f64]) -> f64 {
    simsched::table1::geometric_mean(values)
}

/// Measured OmpSs-over-Pthreads speedup of one benchmark on the host, with
/// the given worker count and problem size. Returns
/// `(pthreads_time, ompss_time, speedup)`.
pub fn measure_speedup(
    name: &str,
    threads: usize,
    size: WorkloadSize,
) -> (Duration, Duration, f64) {
    let pthreads = run_benchmark(name, Variant::Pthreads, threads, size);
    let ompss = run_benchmark(name, Variant::Ompss, threads, size);
    let speedup = pthreads.duration.as_secs_f64() / ompss.duration.as_secs_f64().max(1e-9);
    (pthreads.duration, ompss.duration, speedup)
}

/// Merge one named section into `BENCH_replay.json` in the current
/// directory, preserving the sections other harness binaries wrote.
///
/// The file is a flat JSON object with one section per line, and this
/// function is its only writer, so a line-based merge is exact: each line
/// between the braces is `  "<section>": <one-line JSON value>,?`. `body`
/// must be a complete one-line JSON value (the harnesses hand-format it —
/// the workspace deliberately carries no serde dependency).
pub fn update_bench_json(section: &str, body: &str) {
    let path = "BENCH_replay.json";
    let existing = std::fs::read_to_string(path).ok();
    let merged = merge_bench_json(existing.as_deref(), section, body);
    std::fs::write(path, merged).expect("writing BENCH_replay.json");
}

/// Pure merge behind [`update_bench_json`]: replace (or append) `section`
/// in the one-section-per-line JSON object `existing` and re-render it.
pub fn merge_bench_json(existing: Option<&str>, section: &str, body: &str) -> String {
    assert!(!body.contains('\n'), "section body must be a single line");
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in existing.unwrap_or("").lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, value)) = rest.split_once("\": ") else {
            continue;
        };
        sections.push((name.to_string(), value.to_string()));
    }
    match sections.iter_mut().find(|(name, _)| name == section) {
        Some(slot) => slot.1 = body.to_string(),
        None => sections.push((section.to_string(), body.to_string())),
    }
    let mut out = String::from("{\n");
    for (i, (name, value)) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        out.push_str(&format!("  \"{name}\": {value}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

/// Render a simple aligned table of (label, values-per-column).
pub fn render_rows(header: &[String], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<16}", ""));
    for h in header {
        out.push_str(&format!("{h:>10}"));
    }
    out.push('\n');
    for (label, values) in rows {
        out.push_str(&format!("{label:<16}"));
        for v in values {
            out.push_str(&format!("{v:>10.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_rows_formats_all_cells() {
        let s = render_rows(
            &["a".into(), "b".into()],
            &[
                ("row1".into(), vec![1.0, 2.5]),
                ("row2".into(), vec![0.5, 3.0]),
            ],
        );
        assert!(s.contains("row1"));
        assert!(s.contains("2.500"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn merge_bench_json_round_trips_and_replaces() {
        let first = merge_bench_json(None, "graph_replay", "{\"a\": 1}");
        assert_eq!(first, "{\n  \"graph_replay\": {\"a\": 1}\n}\n");
        let second = merge_bench_json(Some(&first), "table1", "{\"b\": 2}");
        assert_eq!(
            second,
            "{\n  \"graph_replay\": {\"a\": 1},\n  \"table1\": {\"b\": 2}\n}\n"
        );
        let third = merge_bench_json(Some(&second), "graph_replay", "{\"a\": 3}");
        assert_eq!(
            third,
            "{\n  \"graph_replay\": {\"a\": 3},\n  \"table1\": {\"b\": 2}\n}\n"
        );
    }

    #[test]
    fn measure_speedup_runs_a_small_benchmark() {
        let (p, o, s) = measure_speedup("md5", 2, WorkloadSize::Small);
        assert!(p > Duration::ZERO);
        assert!(o > Duration::ZERO);
        assert!(s > 0.0);
    }
}

//! # bench-harness — regenerating the paper's table and claims
//!
//! Shared helpers for the harness binaries:
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 (OmpSs-over-Pthreads speedups per benchmark and core count), simulated on the 32-core machine model and optionally measured on the host |
//! | `pipeline_study` | the Section 3 case study: the Listing-1 pipelined decoder, its task graph statistics and its output correctness |
//! | `barrier_ablation` | the Section 4 `rgbcmy` claim: polling task barrier vs blocking thread barrier |
//! | `locality_ablation` | the Section 4 `ray-rot` claim: locality-aware scheduling of dependent tasks |
//! | `granularity_ablation` | the Section 4 `h264dec` claim: task-grouping granularity vs exposed parallelism |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Duration;

use benchsuite::{run_benchmark, Variant, WorkloadSize};

/// Geometric mean of positive values (0 for an empty slice).
pub fn geometric_mean(values: &[f64]) -> f64 {
    simsched::table1::geometric_mean(values)
}

/// Measured OmpSs-over-Pthreads speedup of one benchmark on the host, with
/// the given worker count and problem size. Returns
/// `(pthreads_time, ompss_time, speedup)`.
pub fn measure_speedup(
    name: &str,
    threads: usize,
    size: WorkloadSize,
) -> (Duration, Duration, f64) {
    let pthreads = run_benchmark(name, Variant::Pthreads, threads, size);
    let ompss = run_benchmark(name, Variant::Ompss, threads, size);
    let speedup = pthreads.duration.as_secs_f64() / ompss.duration.as_secs_f64().max(1e-9);
    (pthreads.duration, ompss.duration, speedup)
}

/// Render a simple aligned table of (label, values-per-column).
pub fn render_rows(header: &[String], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<16}", ""));
    for h in header {
        out.push_str(&format!("{h:>10}"));
    }
    out.push('\n');
    for (label, values) in rows {
        out.push_str(&format!("{label:<16}"));
        for v in values {
            out.push_str(&format!("{v:>10.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_rows_formats_all_cells() {
        let s = render_rows(
            &["a".into(), "b".into()],
            &[
                ("row1".into(), vec![1.0, 2.5]),
                ("row2".into(), vec![0.5, 3.0]),
            ],
        );
        assert!(s.contains("row1"));
        assert!(s.contains("2.500"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn measure_speedup_runs_a_small_benchmark() {
        let (p, o, s) = measure_speedup("md5", 2, WorkloadSize::Small);
        assert!(p > Duration::ZERO);
        assert!(o > Duration::ZERO);
        assert!(s > 0.0);
    }
}

//! Criterion microbenchmark of the task-insertion hot path: **full-spawn**
//! throughput (builder, node, registration, scheduling, execution,
//! retirement) for single-access tasks, at 1 and 8 concurrently spawning
//! threads, across three runtime configurations:
//!
//! * `locked` — tracker mutex path, node recycler off: the historical
//!   baseline.
//! * `optimistic` — the gate-CAS tracker fast path, recycler still off: the
//!   PR-4 configuration, which moved the tracker-only number but left ~6
//!   heap allocations on every spawn.
//! * `recycled` — fast path plus the task-node slab and inline accesses/
//!   bodies: the steady-state spawn is allocation-free end to end (pinned by
//!   `tests/spawn_alloc.rs`).
//!
//! Each measured iteration spawns a batch of tiny-bodied tasks, every task
//! declaring exactly one `output` access on one of a small pool of plain
//! cells (so registration does real history work — the previous writer
//! generation is found, superseded and eventually retired — while the shard
//! routing stays spread). The `taskwait` at the end of a batch also drains
//! the retire path, so the numbers cover the full round trip that bounds
//! fine-grained workloads like the h264dec macroblock loop.

use criterion::{criterion_group, criterion_main, Criterion};

use ompss::{Data, Runtime, RuntimeConfig};

/// Cells per spawner: enough to spread over every shard and keep
/// register/retire collisions (fast-path fallbacks) rare.
const CELLS: usize = 64;
/// Tasks per measured batch, per spawner thread.
const TASKS: usize = 500;

/// The three insertion-path configurations compared.
const CONFIGS: [(&str, bool, bool); 3] = [
    ("locked", false, false),
    ("optimistic", true, false),
    ("recycled", true, true),
];

fn runtime(fast_path: bool, recycler: bool) -> Runtime {
    Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_tracker_shards(8)
            .with_tracker_fast_path(fast_path)
            .with_task_recycler(recycler),
    )
}

fn spawn_batch(rt: &Runtime, cells: &[Data<u64>]) {
    for i in 0..TASKS {
        let c = cells[i % cells.len()].clone();
        rt.task().output(&c).spawn(move |ctx| {
            *ctx.write(&c) = i as u64;
        });
    }
}

fn bench_single_spawner(c: &mut Criterion) {
    let mut group = c.benchmark_group("insertion/1thread");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    for (label, fast, recycler) in CONFIGS {
        let rt = runtime(fast, recycler);
        let cells: Vec<Data<u64>> = (0..CELLS).map(|_| rt.data(0u64)).collect();
        group.bench_function(format!("full_spawn_x{TASKS}/{label}"), |b| {
            b.iter(|| {
                spawn_batch(&rt, &cells);
                rt.taskwait();
            })
        });
        rt.shutdown();
    }
    group.finish();
}

fn bench_eight_spawners(c: &mut Criterion) {
    let mut group = c.benchmark_group("insertion/8threads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (label, fast, recycler) in CONFIGS {
        let rt = runtime(fast, recycler);
        let per_thread: Vec<Vec<Data<u64>>> = (0..8)
            .map(|_| (0..CELLS).map(|_| rt.data(0u64)).collect())
            .collect();
        group.bench_function(format!("full_spawn_x{}/{label}", TASKS * 8), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for cells in &per_thread {
                        let rt = &rt;
                        scope.spawn(move || spawn_batch(rt, cells));
                    }
                });
                rt.taskwait();
            })
        });
        rt.shutdown();
    }
    group.finish();
}

criterion_group!(insertion_benches, bench_single_spawner, bench_eight_spawners);
criterion_main!(insertion_benches);

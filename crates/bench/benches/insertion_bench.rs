//! Criterion microbenchmark of the task-insertion hot path: register+retire
//! throughput for single-access tasks, with the dependence tracker's
//! optimistic (gate-CAS) fast path against the forced-locked mutex path, at
//! 1 and 8 concurrently spawning threads.
//!
//! Each measured iteration spawns a batch of empty-bodied tasks, every task
//! declaring exactly one `output` access on one of a small pool of plain
//! cells (so registration does real history work — the previous writer
//! generation is found, superseded and eventually retired — while the shard
//! routing stays spread). The `taskwait` at the end of a batch also drains
//! the retire path, so the numbers cover the full register→execute→retire
//! round trip that bounds fine-grained workloads like the h264dec
//! macroblock loop.

use criterion::{criterion_group, criterion_main, Criterion};

use ompss::{Data, Runtime, RuntimeConfig};

/// Cells per spawner: enough to spread over every shard and keep
/// register/retire collisions (fast-path fallbacks) rare.
const CELLS: usize = 64;
/// Tasks per measured batch, per spawner thread.
const TASKS: usize = 500;

fn runtime(fast_path: bool) -> Runtime {
    Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_tracker_shards(8)
            .with_tracker_fast_path(fast_path),
    )
}

fn spawn_batch(rt: &Runtime, cells: &[Data<u64>]) {
    for i in 0..TASKS {
        let c = cells[i % cells.len()].clone();
        rt.task().output(&c).spawn(move |ctx| {
            *ctx.write(&c) = i as u64;
        });
    }
}

fn bench_single_spawner(c: &mut Criterion) {
    let mut group = c.benchmark_group("insertion/1thread");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    for (label, fast) in [("locked", false), ("optimistic", true)] {
        let rt = runtime(fast);
        let cells: Vec<Data<u64>> = (0..CELLS).map(|_| rt.data(0u64)).collect();
        group.bench_function(format!("register_retire_x{TASKS}/{label}"), |b| {
            b.iter(|| {
                spawn_batch(&rt, &cells);
                rt.taskwait();
            })
        });
        rt.shutdown();
    }
    group.finish();
}

fn bench_eight_spawners(c: &mut Criterion) {
    let mut group = c.benchmark_group("insertion/8threads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (label, fast) in [("locked", false), ("optimistic", true)] {
        let rt = runtime(fast);
        let per_thread: Vec<Vec<Data<u64>>> = (0..8)
            .map(|_| (0..CELLS).map(|_| rt.data(0u64)).collect())
            .collect();
        group.bench_function(format!("register_retire_x{}/{label}", TASKS * 8), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for cells in &per_thread {
                        let rt = &rt;
                        scope.spawn(move || spawn_batch(rt, cells));
                    }
                });
                rt.taskwait();
            })
        });
        rt.shutdown();
    }
    group.finish();
}

criterion_group!(insertion_benches, bench_single_spawner, bench_eight_spawners);
criterion_main!(insertion_benches);

//! Criterion micro-benchmarks of the computational kernels (supporting data
//! for the per-benchmark discussion: how expensive is one work unit of each
//! benchmark).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kernels::cray::{render_scanline, Scene};
use kernels::h264::{encode_sequence, generate_video, VideoParams};
use kernels::image::ImageRgb;
use kernels::kmeans::{assign_range, init_centroids};
use kernels::md5::md5_digest;
use kernels::rgbcmy::convert_rows;
use kernels::rotate::rotate_rows;
use kernels::workload::{clustered_points, md5_buffers, synthetic_rgb_image};

fn bench_cray_scanline(c: &mut Criterion) {
    let scene = Scene::demo(12);
    let (w, h) = (128usize, 96usize);
    let mut row = vec![0u8; 3 * w];
    c.bench_function("kernel/cray_scanline_128px", |b| {
        b.iter(|| render_scanline(black_box(&scene), w, h, black_box(48), &mut row))
    });
}

fn bench_rotate_band(c: &mut Criterion) {
    let img = synthetic_rgb_image(256, 192, 1);
    let mut band = vec![0u8; 3 * 256 * 16];
    c.bench_function("kernel/rotate_band_256x16", |b| {
        b.iter(|| rotate_rows(black_box(&img), 0.37, 80..96, &mut band))
    });
}

fn bench_rgbcmy_band(c: &mut Criterion) {
    let img = synthetic_rgb_image(256, 192, 2);
    let mut band = vec![0u8; 4 * 256 * 16];
    c.bench_function("kernel/rgbcmy_band_256x16", |b| {
        b.iter(|| convert_rows(black_box(&img), 80..96, &mut band))
    });
}

fn bench_md5_buffer(c: &mut Criterion) {
    let buffers = md5_buffers(1, 16 * 1024, 3);
    c.bench_function("kernel/md5_16KiB", |b| {
        b.iter(|| md5_digest(black_box(&buffers[0])))
    });
}

fn bench_kmeans_assign(c: &mut Criterion) {
    let points = clustered_points(4_096, 8, 8, 4);
    let centroids = init_centroids(&points, 8, 8);
    let mut labels = vec![0u32; 4_096];
    c.bench_function("kernel/kmeans_assign_4096x8d", |b| {
        b.iter(|| {
            assign_range(
                black_box(&points),
                black_box(&centroids),
                8,
                0..4_096,
                &mut labels,
            )
        })
    });
}

fn bench_h264_encode_decode(c: &mut Criterion) {
    let params = VideoParams {
        width: 64,
        height: 48,
        frames: 4,
        gop: 2,
        seed: 5,
    };
    let video = generate_video(&params);
    c.bench_function("kernel/h264_encode_4frames_64x48", |b| {
        b.iter(|| encode_sequence(black_box(&params), black_box(&video)))
    });
    let stream = encode_sequence(&params, &video);
    c.bench_function("kernel/h264_decode_4frames_64x48", |b| {
        b.iter(|| kernels::h264::decode_sequence(black_box(&stream), 4))
    });
}

fn bench_image_checksum(c: &mut Criterion) {
    let img: ImageRgb = synthetic_rgb_image(256, 192, 9);
    c.bench_function("kernel/fletcher64_256x192rgb", |b| {
        b.iter(|| black_box(&img).checksum())
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = kernels_benches;
    config = configured();
    targets = bench_cray_scanline, bench_rotate_band, bench_rgbcmy_band, bench_md5_buffer,
              bench_kmeans_assign, bench_h264_encode_decode, bench_image_checksum
}
criterion_main!(kernels_benches);

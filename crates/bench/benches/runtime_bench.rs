//! Criterion benchmarks of the runtime primitives themselves: task spawn +
//! dependence-resolution overhead, barrier episode cost (polling vs
//! blocking), and critical-section cost. These are the overheads the
//! simulator's machine model parameterises, so measuring them closes the
//! loop between the real runtime and the scaling model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ompss::{BarrierKind, Runtime, RuntimeConfig, TaskBarrier};
use threadkit::BlockingBarrier;

fn bench_task_spawn_overhead(c: &mut Criterion) {
    let rt = Runtime::new(RuntimeConfig::default().with_workers(1));
    let mut group = c.benchmark_group("runtime/spawn");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));

    group.bench_function("independent_empty_tasks_x100", |b| {
        b.iter(|| {
            for _ in 0..100 {
                let d = rt.data(0u64);
                rt.task().output(&d).spawn(move |ctx| {
                    *ctx.write(&d) = 1;
                });
            }
            rt.taskwait();
        })
    });

    group.bench_function("dependent_chain_x100", |b| {
        b.iter(|| {
            let d = rt.data(0u64);
            for _ in 0..100 {
                let d = d.clone();
                rt.task().inout(&d).spawn(move |ctx| {
                    *ctx.write(&d) += 1;
                });
            }
            rt.taskwait();
            black_box(rt.into_inner(d))
        })
    });
    group.finish();
}

fn bench_barriers(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2);
    let mut group = c.benchmark_group("runtime/barrier");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));

    group.bench_function(format!("polling_x100_{threads}thr"), |b| {
        b.iter(|| {
            let barrier = TaskBarrier::new(threads, BarrierKind::Polling);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let b = barrier.clone();
                    scope.spawn(move || {
                        for _ in 0..100 {
                            b.wait();
                        }
                    });
                }
            });
        })
    });

    group.bench_function(format!("blocking_x100_{threads}thr"), |b| {
        b.iter(|| {
            let barrier = BlockingBarrier::new(threads);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let b = barrier.clone();
                    scope.spawn(move || {
                        for _ in 0..100 {
                            b.wait();
                        }
                    });
                }
            });
        })
    });
    group.finish();
}

fn bench_critical_sections(c: &mut Criterion) {
    let rt = Runtime::new(RuntimeConfig::default().with_workers(1));
    let mut group = c.benchmark_group("runtime/critical");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(500));
    group.bench_function("uncontended_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc += rt.critical("bench", || black_box(i));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    runtime_benches,
    bench_task_spawn_overhead,
    bench_barriers,
    bench_critical_sections
);
criterion_main!(runtime_benches);

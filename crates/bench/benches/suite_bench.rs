//! Criterion benchmarks of the full benchmark suite: sequential vs Pthreads
//! vs OmpSs variant of every Table 1 benchmark, on the host (small inputs).
//!
//! These are the host-scale counterparts of Table 1's columns: one group per
//! benchmark, one function per variant. Absolute numbers depend on the host;
//! the harness exists so that `cargo bench` regenerates the comparison on
//! any machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use benchsuite::{run_benchmark, Variant, WorkloadSize};
use ompss::{Runtime, RuntimeConfig};

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn bench_suite(c: &mut Criterion) {
    let threads = host_threads();
    for name in benchsuite::benchmark_names() {
        let mut group = c.benchmark_group(format!("suite/{name}"));
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(1));
        group.warm_up_time(std::time::Duration::from_millis(200));
        group.bench_function(BenchmarkId::new("seq", 1), |b| {
            b.iter(|| {
                black_box(run_benchmark(
                    name,
                    Variant::Sequential,
                    1,
                    WorkloadSize::Small,
                ))
            })
        });
        group.bench_function(BenchmarkId::new("pthreads", threads), |b| {
            b.iter(|| {
                black_box(run_benchmark(
                    name,
                    Variant::Pthreads,
                    threads,
                    WorkloadSize::Small,
                ))
            })
        });
        group.bench_function(BenchmarkId::new("ompss", threads), |b| {
            b.iter(|| {
                black_box(run_benchmark(
                    name,
                    Variant::Ompss,
                    threads,
                    WorkloadSize::Small,
                ))
            })
        });
        group.finish();
    }
}

fn bench_ompss_runtime_reuse(c: &mut Criterion) {
    // The runner creates a fresh runtime per run (as `run_benchmark` does);
    // this group shows the steady-state cost with a reused runtime, which is
    // how a real application would use it.
    let threads = host_threads();
    let rt = Runtime::new(RuntimeConfig::default().with_workers(threads));
    let mut group = c.benchmark_group("suite/reused_runtime");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    let cray_params = benchsuite::benchmarks::cray::Params::small();
    group.bench_function("c-ray_ompss", |b| {
        b.iter(|| black_box(benchsuite::benchmarks::cray::run_ompss(&cray_params, &rt)))
    });
    let md5_params = benchsuite::benchmarks::md5::Params::small();
    group.bench_function("md5_ompss", |b| {
        b.iter(|| black_box(benchsuite::benchmarks::md5::run_ompss(&md5_params, &rt)))
    });
    group.finish();
}

criterion_group!(suite_benches, bench_suite, bench_ompss_runtime_reuse);
criterion_main!(suite_benches);

//! # threadkit — a Pthreads-equivalent manual threading substrate
//!
//! The paper compares OmpSs against hand-written POSIX-threads
//! implementations of every benchmark. This crate provides, in Rust, the
//! primitives those hand-written versions are built from, so that the
//! `benchsuite` crate can express its "Pthreads variant" of each benchmark
//! the same way the original C code does:
//!
//! * [`ThreadTeam`] — a persistent SPMD team of worker threads: every call to
//!   [`ThreadTeam::run`] executes the same closure on all members
//!   (fork-join, like `pthread_create` once + per-phase barriers).
//! * [`BlockingBarrier`] / [`SpinBarrier`] — the classic
//!   `pthread_barrier_t`-style blocking barrier and a busy-waiting
//!   alternative (the distinction Section 4 of the paper uses to explain the
//!   `rgbcmy` results).
//! * [`BoundedQueue`] — a mutex/condvar bounded MPMC queue, the building
//!   block of hand-rolled pipelines.
//! * [`Pipeline`] — a thread-per-stage pipeline connected by bounded queues
//!   (what the Pthreads `h264dec` uses instead of task annotations).
//! * [`partition`] — static work-partitioning helpers (block and cyclic).
//! * [`parallel_for`] — one-shot statically-chunked data-parallel loop over
//!   scoped threads.
//!
//! ## Workspace role
//!
//! `threadkit` is the *baseline* side of the paper's comparison: it contains
//! no task graph, no dependence analysis and no renaming — concurrency is
//! expressed structurally (teams, barriers, queues) exactly as in the
//! hand-written Pthreads benchmarks. The task-dataflow counterpart lives in
//! the `ompss` crate; the `benchsuite` crate implements every benchmark
//! against both, and the `bench-harness` binaries compare them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod barrier;
pub mod partition;
pub mod pipeline;
pub mod pool;
pub mod queue;
pub mod team;

pub use barrier::{BlockingBarrier, SpinBarrier};
pub use pipeline::{Pipeline, PipelineStats};
pub use pool::JobPool;
pub use queue::{BoundedQueue, QueueClosed};
pub use team::{parallel_for, TeamCtx, ThreadTeam};

//! A bounded blocking MPMC queue (mutex + condition variables), the
//! communication channel of hand-rolled Pthreads pipelines.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Error returned when pushing to or popping from a closed queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueClosed;

impl std::fmt::Display for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue is closed")
    }
}

impl std::error::Error for QueueClosed {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct QueueInner<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// A bounded blocking queue shared by cloning.
pub struct BoundedQueue<T> {
    inner: Arc<QueueInner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            inner: self.inner.clone(),
        }
    }
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Arc::new(QueueInner {
                capacity,
                state: Mutex::new(QueueState {
                    items: VecDeque::with_capacity(capacity),
                    closed: false,
                }),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
            }),
        }
    }

    /// Maximum number of items the queue holds.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.state.lock().items.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// Push an item, blocking while the queue is full. Fails once the queue
    /// has been closed.
    pub fn push(&self, item: T) -> Result<(), QueueClosed> {
        let inner = &self.inner;
        let mut state = inner.state.lock();
        loop {
            if state.closed {
                return Err(QueueClosed);
            }
            if state.items.len() < inner.capacity {
                state.items.push_back(item);
                inner.not_empty.notify_one();
                return Ok(());
            }
            inner.not_full.wait(&mut state);
        }
    }

    /// Pop an item, blocking while the queue is empty. Returns `Err` once the
    /// queue is closed *and* drained.
    pub fn pop(&self) -> Result<T, QueueClosed> {
        let inner = &self.inner;
        let mut state = inner.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                inner.not_full.notify_one();
                return Ok(item);
            }
            if state.closed {
                return Err(QueueClosed);
            }
            inner.not_empty.wait(&mut state);
        }
    }

    /// Try to pop without blocking. `Ok(None)` means the queue is currently
    /// empty but still open.
    pub fn try_pop(&self) -> Result<Option<T>, QueueClosed> {
        let inner = &self.inner;
        let mut state = inner.state.lock();
        if let Some(item) = state.items.pop_front() {
            inner.not_full.notify_one();
            return Ok(Some(item));
        }
        if state.closed {
            return Err(QueueClosed);
        }
        Ok(None)
    }

    /// Close the queue: producers can no longer push; consumers drain the
    /// remaining items and then receive [`QueueClosed`].
    pub fn close(&self) {
        let inner = &self.inner;
        let mut state = inner.state.lock();
        state.closed = true;
        inner.not_empty.notify_all();
        inner.not_full.notify_all();
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BoundedQueue(len {}/{}, closed: {})",
            self.len(),
            self.capacity(),
            self.is_closed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn fifo_order_single_thread() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap(), 1);
        assert_eq!(q.pop().unwrap(), 2);
        assert_eq!(q.pop().unwrap(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn try_pop_distinguishes_empty_and_closed() {
        let q = BoundedQueue::<u32>::new(2);
        assert_eq!(q.try_pop(), Ok(None));
        q.push(7).unwrap();
        assert_eq!(q.try_pop(), Ok(Some(7)));
        q.close();
        assert_eq!(q.try_pop(), Err(QueueClosed));
        assert!(q.is_closed());
    }

    #[test]
    fn close_drains_then_errors() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(QueueClosed));
        assert_eq!(q.pop().unwrap(), 1);
        assert_eq!(q.pop().unwrap(), 2);
        assert_eq!(q.pop(), Err(QueueClosed));
    }

    #[test]
    fn blocking_push_unblocks_on_pop() {
        let q = BoundedQueue::new(1);
        q.push(0).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(q.pop().unwrap(), 0);
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop().unwrap(), 1);
    }

    #[test]
    fn producer_consumer_transfers_everything_in_order() {
        let q = BoundedQueue::new(8);
        let q_prod = q.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..1000u32 {
                q_prod.push(i).unwrap();
            }
            q_prod.close();
        });
        let mut received = Vec::new();
        while let Ok(v) = q.pop() {
            received.push(v);
        }
        producer.join().unwrap();
        assert_eq!(received, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_producers_multiple_consumers() {
        let q = BoundedQueue::new(4);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..3)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn debug_format() {
        let q = BoundedQueue::<u8>::new(2);
        assert!(format!("{q:?}").contains("0/2"));
    }
}

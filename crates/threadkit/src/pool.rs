//! A job-queue thread pool: the "worker threads pulling work items off a
//! shared queue" pattern that Pthreads codes use when static partitioning
//! would load-imbalance.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<std::collections::VecDeque<Job>>,
    available: Condvar,
    idle: Condvar,
    idle_lock: Mutex<()>,
    outstanding: AtomicUsize,
    stop: std::sync::atomic::AtomicBool,
}

/// A fixed-size pool of worker threads executing submitted jobs.
pub struct JobPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl JobPool {
    /// Create a pool with `num_threads` workers.
    ///
    /// # Panics
    /// Panics if `num_threads == 0`.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(std::collections::VecDeque::new()),
            available: Condvar::new(),
            idle: Condvar::new(),
            idle_lock: Mutex::new(()),
            outstanding: AtomicUsize::new(0),
            stop: std::sync::atomic::AtomicBool::new(false),
        });
        let threads = (0..num_threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("threadkit-pool-{i}"))
                    .spawn(move || pool_worker(shared))
                    .expect("failed to spawn pool thread")
            })
            .collect();
        JobPool { shared, threads }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Submit a job for execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.outstanding.fetch_add(1, Ordering::SeqCst);
        self.shared.queue.lock().push_back(Box::new(job));
        self.shared.available.notify_one();
    }

    /// Number of jobs submitted but not yet finished.
    pub fn outstanding(&self) -> usize {
        self.shared.outstanding.load(Ordering::SeqCst)
    }

    /// Block until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.outstanding.load(Ordering::SeqCst) > 0 {
            self.shared.idle.wait(&mut guard);
        }
    }

    /// Shut the pool down after draining the queue (also happens on drop).
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.wait_idle();
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl std::fmt::Debug for JobPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JobPool({} threads, {} outstanding)",
            self.num_threads(),
            self.outstanding()
        )
    }
}

fn pool_worker(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                shared.available.wait(&mut queue);
            }
        };
        job();
        let left = shared.outstanding.fetch_sub(1, Ordering::SeqCst) - 1;
        if left == 0 {
            let _g = shared.idle_lock.lock();
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = JobPool::new(0);
    }

    #[test]
    fn executes_all_jobs() {
        let pool = JobPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns_immediately() {
        let pool = JobPool::new(1);
        pool.wait_idle();
        assert_eq!(pool.num_threads(), 1);
    }

    #[test]
    fn jobs_submitted_after_wait_idle_still_run() {
        let pool = JobPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        pool.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_idle();
        let c = counter.clone();
        pool.submit(move || {
            c.fetch_add(10, Ordering::SeqCst);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 11);
        pool.shutdown();
    }

    #[test]
    fn drop_drains_queue() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = JobPool::new(2);
            for _ in 0..50 {
                let c = counter.clone();
                pool.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // pool dropped here
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn debug_format() {
        let pool = JobPool::new(2);
        assert!(format!("{pool:?}").contains("2 threads"));
    }
}

//! Persistent SPMD thread teams and a one-shot `parallel_for`.
//!
//! Hand-written Pthreads benchmarks typically create their threads once and
//! then run every parallel phase SPMD-style: each thread executes the same
//! function, works on its static partition, and meets the others at a
//! barrier. [`ThreadTeam`] reproduces that structure with a persistent pool;
//! [`parallel_for`] is the convenience wrapper for one-off data-parallel
//! loops.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::barrier::{BlockingBarrier, SpinBarrier};
use crate::partition::block_range;

/// Which barrier the team members use for [`TeamCtx::barrier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TeamBarrierKind {
    /// Blocking, condition-variable barrier (`pthread_barrier_t`).
    #[default]
    Blocking,
    /// Busy-waiting barrier.
    Spinning,
}

enum TeamBarrier {
    Blocking(BlockingBarrier),
    Spinning(SpinBarrier),
}

impl TeamBarrier {
    fn wait(&self) {
        match self {
            TeamBarrier::Blocking(b) => {
                b.wait();
            }
            TeamBarrier::Spinning(b) => {
                b.wait();
            }
        }
    }
}

/// Per-thread context handed to the SPMD closure.
pub struct TeamCtx<'a> {
    /// This thread's index in `0..num_threads`.
    pub thread_id: usize,
    /// Total number of threads in the team.
    pub num_threads: usize,
    barrier: &'a TeamBarrier,
}

impl TeamCtx<'_> {
    /// Wait for every team member to reach this point.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// This thread's contiguous share of `0..total` under static block
    /// partitioning.
    pub fn block_range(&self, total: usize) -> Range<usize> {
        block_range(total, self.num_threads, self.thread_id)
    }

    /// Whether this is thread 0 (often the one doing sequential sections).
    pub fn is_main(&self) -> bool {
        self.thread_id == 0
    }
}

type Job = Arc<dyn Fn(&TeamCtx<'_>) + Send + Sync>;

struct TeamShared {
    num_threads: usize,
    barrier: TeamBarrier,
    /// Broadcast slot: (generation, job). Workers run the job once per
    /// generation bump.
    job: Mutex<(u64, Option<Job>)>,
    job_cv: Condvar,
    /// Count of workers that finished the current generation.
    done_count: AtomicU64,
    done_lock: Mutex<()>,
    done_cv: Condvar,
    stop: AtomicBool,
}

/// A persistent team of worker threads executing SPMD phases.
///
/// The team is created once (like `pthread_create` at program start); every
/// call to [`ThreadTeam::run`] broadcasts a closure that all members execute
/// with their own [`TeamCtx`], and returns when all members have finished.
pub struct ThreadTeam {
    shared: Arc<TeamShared>,
    threads: Vec<JoinHandle<()>>,
    generation: u64,
}

impl ThreadTeam {
    /// Create a team of `num_threads` workers with the default (blocking)
    /// barrier.
    pub fn new(num_threads: usize) -> Self {
        Self::with_barrier(num_threads, TeamBarrierKind::Blocking)
    }

    /// Create a team choosing the barrier flavour.
    ///
    /// # Panics
    /// Panics if `num_threads == 0`.
    pub fn with_barrier(num_threads: usize, kind: TeamBarrierKind) -> Self {
        assert!(num_threads > 0, "team needs at least one thread");
        let barrier = match kind {
            TeamBarrierKind::Blocking => TeamBarrier::Blocking(BlockingBarrier::new(num_threads)),
            TeamBarrierKind::Spinning => TeamBarrier::Spinning(SpinBarrier::new(num_threads)),
        };
        let shared = Arc::new(TeamShared {
            num_threads,
            barrier,
            job: Mutex::new((0, None)),
            job_cv: Condvar::new(),
            done_count: AtomicU64::new(0),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let threads = (0..num_threads)
            .map(|tid| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("threadkit-worker-{tid}"))
                    .spawn(move || team_member_loop(shared, tid))
                    .expect("failed to spawn team thread")
            })
            .collect();
        ThreadTeam {
            shared,
            threads,
            generation: 0,
        }
    }

    /// Number of threads in the team.
    pub fn num_threads(&self) -> usize {
        self.shared.num_threads
    }

    /// Execute `f` on every team member and wait for all of them to finish.
    pub fn run(&mut self, f: impl Fn(&TeamCtx<'_>) + Send + Sync + 'static) {
        self.generation += 1;
        self.shared.done_count.store(0, Ordering::SeqCst);
        {
            let mut job = self.shared.job.lock();
            *job = (self.generation, Some(Arc::new(f)));
            self.shared.job_cv.notify_all();
        }
        // Wait for all members to report completion.
        let mut guard = self.shared.done_lock.lock();
        while self.shared.done_count.load(Ordering::SeqCst) < self.shared.num_threads as u64 {
            self.shared.done_cv.wait(&mut guard);
        }
    }

    /// Shut the team down (also happens on drop).
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.job_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ThreadTeam {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl std::fmt::Debug for ThreadTeam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadTeam({} threads)", self.shared.num_threads)
    }
}

fn team_member_loop(shared: Arc<TeamShared>, thread_id: usize) {
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut slot = shared.job.lock();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let (generation, job) = &*slot;
                if *generation > last_gen {
                    last_gen = *generation;
                    break job.clone().expect("job set with generation bump");
                }
                shared.job_cv.wait(&mut slot);
            }
        };
        let ctx = TeamCtx {
            thread_id,
            num_threads: shared.num_threads,
            barrier: &shared.barrier,
        };
        job(&ctx);
        let done = shared.done_count.fetch_add(1, Ordering::SeqCst) + 1;
        if done == shared.num_threads as u64 {
            let _g = shared.done_lock.lock();
            shared.done_cv.notify_all();
        }
    }
}

/// One-shot statically partitioned parallel loop: splits `range` into
/// `num_threads` blocks and runs `body(index)` for every index, using scoped
/// threads. `body` must be `Sync` because all threads share it.
pub fn parallel_for<F>(num_threads: usize, range: Range<usize>, body: F)
where
    F: Fn(usize) + Send + Sync,
{
    assert!(num_threads > 0, "num_threads must be positive");
    let total = range.end.saturating_sub(range.start);
    if total == 0 {
        return;
    }
    if num_threads == 1 {
        for i in range {
            body(i);
        }
        return;
    }
    let body = &body;
    std::thread::scope(|scope| {
        for t in 0..num_threads {
            let r = block_range(total, num_threads, t);
            let start = range.start;
            scope.spawn(move || {
                for i in r {
                    body(start + i);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = ThreadTeam::new(0);
    }

    #[test]
    fn team_runs_closure_on_every_member() {
        let mut team = ThreadTeam::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let seen_ids = Arc::new(Mutex::new(Vec::new()));
        {
            let hits = hits.clone();
            let seen_ids = seen_ids.clone();
            team.run(move |ctx| {
                hits.fetch_add(1, Ordering::SeqCst);
                seen_ids.lock().push(ctx.thread_id);
                assert_eq!(ctx.num_threads, 3);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        let mut ids = seen_ids.lock().clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn team_is_reusable_across_phases() {
        let mut team = ThreadTeam::new(2);
        let sum = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let sum = sum.clone();
            team.run(move |_| {
                sum.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(sum.load(Ordering::SeqCst), 20);
        team.shutdown();
    }

    #[test]
    fn team_barrier_separates_phases() {
        let mut team = ThreadTeam::with_barrier(4, TeamBarrierKind::Spinning);
        let phase1 = Arc::new(AtomicUsize::new(0));
        let ok = Arc::new(AtomicBool::new(true));
        {
            let phase1 = phase1.clone();
            let ok = ok.clone();
            team.run(move |ctx| {
                phase1.fetch_add(1, Ordering::SeqCst);
                ctx.barrier();
                if phase1.load(Ordering::SeqCst) != ctx.num_threads {
                    ok.store(false, Ordering::SeqCst);
                }
            });
        }
        assert!(ok.load(Ordering::SeqCst));
    }

    #[test]
    fn block_range_through_ctx_partitions_work() {
        let mut team = ThreadTeam::new(3);
        let data = Arc::new(Mutex::new(vec![0u32; 100]));
        {
            let data = data.clone();
            team.run(move |ctx| {
                let r = ctx.block_range(100);
                let mut d = data.lock();
                for i in r {
                    d[i] += 1;
                }
            });
        }
        assert!(data.lock().iter().all(|&v| v == 1));
    }

    #[test]
    fn is_main_flags_exactly_one_thread() {
        let mut team = ThreadTeam::new(4);
        let mains = Arc::new(AtomicUsize::new(0));
        {
            let mains = mains.clone();
            team.run(move |ctx| {
                if ctx.is_main() {
                    mains.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        assert_eq!(mains.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let counts: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(4, 0..500, |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_for_handles_empty_and_single_thread() {
        parallel_for(3, 10..10, |_| panic!("must not be called"));
        let count = AtomicUsize::new(0);
        parallel_for(1, 5..15, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn parallel_for_respects_range_offset() {
        let seen = Mutex::new(Vec::new());
        parallel_for(2, 100..110, |i| {
            seen.lock().push(i);
        });
        let mut v = seen.lock().clone();
        v.sort_unstable();
        assert_eq!(v, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn debug_format() {
        let team = ThreadTeam::new(2);
        assert!(format!("{team:?}").contains("2 threads"));
    }
}

//! Hand-rolled thread-per-stage pipelines.
//!
//! This is the structure the Pthreads variant of `h264dec` uses instead of
//! task annotations: one dedicated thread per pipeline stage, connected by
//! bounded blocking queues. Items flow through every stage in order (each
//! stage is a single thread reading from a FIFO), so output order equals
//! input order.

use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::queue::BoundedQueue;

/// Per-stage throughput counters, reported by [`Pipeline::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Stage names in pipeline order.
    pub stage_names: Vec<String>,
    /// Items processed by each stage.
    pub items_per_stage: Vec<u64>,
}

type StageFn<T> = Box<dyn FnMut(T) -> T + Send + 'static>;

struct Stage<T> {
    name: String,
    f: StageFn<T>,
}

/// A linear pipeline over items of type `T` with one thread per stage.
pub struct Pipeline<T> {
    stages: Vec<Stage<T>>,
    queue_capacity: usize,
}

impl<T: Send + 'static> Pipeline<T> {
    /// Create an empty pipeline whose inter-stage queues hold at most
    /// `queue_capacity` items (the "in-flight window", analogous to the
    /// circular-buffer depth N of the OmpSs version).
    ///
    /// # Panics
    /// Panics if `queue_capacity == 0`.
    pub fn new(queue_capacity: usize) -> Self {
        assert!(queue_capacity > 0, "queue capacity must be positive");
        Pipeline {
            stages: Vec::new(),
            queue_capacity,
        }
    }

    /// Append a stage executing `f` on every item.
    pub fn stage(mut self, name: &str, f: impl FnMut(T) -> T + Send + 'static) -> Self {
        self.stages.push(Stage {
            name: name.to_string(),
            f: Box::new(f),
        });
        self
    }

    /// Number of stages added so far.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Feed `items` through the pipeline, returning the processed items in
    /// input order together with per-stage statistics.
    ///
    /// The source is fed from a dedicated thread while this thread drains the
    /// sink, so the bounded inter-stage queues provide backpressure without
    /// ever deadlocking, regardless of how many items flow through.
    ///
    /// # Panics
    /// Panics if the pipeline has no stages or if a stage panics.
    pub fn run<I>(self, items: I) -> (Vec<T>, PipelineStats)
    where
        I: IntoIterator<Item = T>,
        I::IntoIter: Send,
    {
        assert!(!self.stages.is_empty(), "pipeline needs at least one stage");
        let n_stages = self.stages.len();
        let capacity = self.queue_capacity;

        // queues[0] feeds stage 0, queues[i] connects stage i-1 to stage i,
        // queues[n] collects the output.
        let queues: Vec<BoundedQueue<T>> =
            (0..=n_stages).map(|_| BoundedQueue::new(capacity)).collect();
        let counters: Vec<Arc<Mutex<u64>>> =
            (0..n_stages).map(|_| Arc::new(Mutex::new(0))).collect();
        let stage_names: Vec<String> = self.stages.iter().map(|s| s.name.clone()).collect();

        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(n_stages);
        for (i, stage) in self.stages.into_iter().enumerate() {
            let input = queues[i].clone();
            let output = queues[i + 1].clone();
            let counter = counters[i].clone();
            let mut f = stage.f;
            let name = stage.name.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pipeline-{name}"))
                    .spawn(move || {
                        while let Ok(item) = input.pop() {
                            let out = f(item);
                            *counter.lock() += 1;
                            if output.push(out).is_err() {
                                break;
                            }
                        }
                        output.close();
                    })
                    .expect("failed to spawn pipeline stage thread"),
            );
        }

        // Feed the source from a helper thread while this thread drains the
        // sink; with both ends active the bounded queues can never wedge.
        let mut out = Vec::new();
        let source = queues[0].clone();
        let sink = queues[n_stages].clone();
        let iter = items.into_iter();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for item in iter {
                    if source.push(item).is_err() {
                        break;
                    }
                }
                source.close();
            });
            while let Ok(item) = sink.pop() {
                out.push(item);
            }
        });
        for h in handles {
            h.join().expect("pipeline stage panicked");
        }

        let stats = PipelineStats {
            stage_names,
            items_per_stage: counters.iter().map(|c| *c.lock()).collect(),
        };
        (out, stats)
    }
}

impl<T> std::fmt::Debug for Pipeline<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pipeline({} stages, window {})",
            self.stages.len(),
            self.queue_capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "queue capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Pipeline::<u32>::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let _ = Pipeline::<u32>::new(1).run(vec![1]);
    }

    #[test]
    fn single_stage_maps_items_in_order() {
        let p = Pipeline::new(2).stage("double", |x: u32| x * 2);
        let (out, stats) = p.run(0..10u32);
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.items_per_stage, vec![10]);
        assert_eq!(stats.stage_names, vec!["double".to_string()]);
    }

    #[test]
    fn multi_stage_composes_in_order() {
        let p = Pipeline::new(4)
            .stage("add1", |x: u64| x + 1)
            .stage("times3", |x: u64| x * 3)
            .stage("sub2", |x: u64| x - 2);
        assert_eq!(p.num_stages(), 3);
        let (out, stats) = p.run(0..100u64);
        let expected: Vec<u64> = (0..100).map(|x| (x + 1) * 3 - 2).collect();
        assert_eq!(out, expected);
        assert_eq!(stats.items_per_stage, vec![100, 100, 100]);
    }

    #[test]
    fn stateful_stages_see_items_in_input_order() {
        // A stage with internal state (like a decoder context) relies on
        // in-order delivery.
        let p = Pipeline::new(3).stage("running-sum", {
            let mut acc = 0u64;
            move |x: u64| {
                acc += x;
                acc
            }
        });
        let (out, _) = p.run(1..=5u64);
        assert_eq!(out, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let p = Pipeline::new(2).stage("id", |x: u8| x);
        let (out, stats) = p.run(Vec::new());
        assert!(out.is_empty());
        assert_eq!(stats.items_per_stage, vec![0]);
    }

    #[test]
    fn small_window_still_processes_everything() {
        let p = Pipeline::new(1)
            .stage("a", |x: u32| x + 1)
            .stage("b", |x: u32| x + 1)
            .stage("c", |x: u32| x + 1)
            .stage("d", |x: u32| x + 1)
            .stage("e", |x: u32| x + 1);
        let (out, _) = p.run(0..200u32);
        assert_eq!(out, (5..205).collect::<Vec<_>>());
    }

    #[test]
    fn debug_format() {
        let p = Pipeline::<u8>::new(4).stage("x", |v| v);
        assert!(format!("{p:?}").contains("1 stages"));
    }
}

//! Static work partitioning, the way hand-written Pthreads codes split loops.

use std::ops::Range;

/// The contiguous block of `0..total` assigned to `thread_id` out of
/// `num_threads` under block (a.k.a. static) partitioning. Remainder items go
/// to the first `total % num_threads` threads, so block sizes differ by at
/// most one.
///
/// # Panics
/// Panics if `num_threads == 0` or `thread_id >= num_threads`.
pub fn block_range(total: usize, num_threads: usize, thread_id: usize) -> Range<usize> {
    assert!(num_threads > 0, "num_threads must be positive");
    assert!(thread_id < num_threads, "thread_id out of range");
    let base = total / num_threads;
    let extra = total % num_threads;
    let start = thread_id * base + thread_id.min(extra);
    let len = base + usize::from(thread_id < extra);
    start..(start + len)
}

/// The indices of `0..total` assigned to `thread_id` under cyclic (round
/// robin) partitioning: `thread_id, thread_id + num_threads, …`.
///
/// # Panics
/// Panics if `num_threads == 0` or `thread_id >= num_threads`.
pub fn cyclic_indices(
    total: usize,
    num_threads: usize,
    thread_id: usize,
) -> impl Iterator<Item = usize> {
    assert!(num_threads > 0, "num_threads must be positive");
    assert!(thread_id < num_threads, "thread_id out of range");
    (thread_id..total).step_by(num_threads)
}

/// Split `0..total` into chunks of at most `chunk` items (the work units a
/// dynamic scheduler or a task-based runtime would hand out).
///
/// # Panics
/// Panics if `chunk == 0`.
pub fn chunk_ranges(total: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk must be positive");
    let mut out = Vec::with_capacity(total.div_ceil(chunk));
    let mut start = 0;
    while start < total {
        let end = (start + chunk).min(total);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_even_split() {
        assert_eq!(block_range(12, 4, 0), 0..3);
        assert_eq!(block_range(12, 4, 3), 9..12);
    }

    #[test]
    fn block_remainder_goes_to_first_threads() {
        // 10 items over 4 threads: sizes 3,3,2,2.
        assert_eq!(block_range(10, 4, 0), 0..3);
        assert_eq!(block_range(10, 4, 1), 3..6);
        assert_eq!(block_range(10, 4, 2), 6..8);
        assert_eq!(block_range(10, 4, 3), 8..10);
    }

    #[test]
    fn block_more_threads_than_items() {
        assert_eq!(block_range(2, 4, 0), 0..1);
        assert_eq!(block_range(2, 4, 1), 1..2);
        assert_eq!(block_range(2, 4, 2), 2..2);
        assert_eq!(block_range(2, 4, 3), 2..2);
    }

    #[test]
    #[should_panic(expected = "thread_id out of range")]
    fn block_thread_out_of_range_panics() {
        let _ = block_range(10, 2, 2);
    }

    #[test]
    fn cyclic_covers_expected_indices() {
        let idx: Vec<_> = cyclic_indices(10, 3, 1).collect();
        assert_eq!(idx, vec![1, 4, 7]);
        assert_eq!(cyclic_indices(0, 3, 0).count(), 0);
    }

    #[test]
    fn chunk_ranges_cover_total() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert!(chunk_ranges(0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn chunk_zero_panics() {
        let _ = chunk_ranges(5, 0);
    }

    proptest! {
        /// Block partitioning tiles 0..total exactly: disjoint, contiguous,
        /// covering, with sizes differing by at most one.
        #[test]
        fn prop_block_partition_tiles(total in 0usize..10_000, threads in 1usize..64) {
            let mut covered = 0usize;
            let mut sizes = Vec::new();
            for t in 0..threads {
                let r = block_range(total, threads, t);
                prop_assert_eq!(r.start, covered);
                covered = r.end;
                sizes.push(r.len());
            }
            prop_assert_eq!(covered, total);
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
        }

        /// Cyclic partitioning assigns every index to exactly one thread.
        #[test]
        fn prop_cyclic_partition_exact(total in 0usize..2_000, threads in 1usize..32) {
            let mut seen = vec![0u8; total];
            for t in 0..threads {
                for i in cyclic_indices(total, threads, t) {
                    seen[i] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }

        /// Chunking covers the range in order without gaps or overlaps.
        #[test]
        fn prop_chunks_tile(total in 0usize..5_000, chunk in 1usize..128) {
            let ranges = chunk_ranges(total, chunk);
            let mut covered = 0usize;
            for r in &ranges {
                prop_assert_eq!(r.start, covered);
                prop_assert!(r.len() <= chunk);
                prop_assert!(!r.is_empty());
                covered = r.end;
            }
            prop_assert_eq!(covered, total);
        }
    }
}

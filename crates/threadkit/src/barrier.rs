//! Thread barriers: blocking (pthread-style) and spinning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A `pthread_barrier_t`-style blocking barrier: arriving threads sleep on a
/// condition variable until the last participant arrives.
#[derive(Clone)]
pub struct BlockingBarrier {
    state: Arc<BlockingState>,
}

struct BlockingState {
    participants: usize,
    lock: Mutex<BarrierPhase>,
    cv: Condvar,
}

struct BarrierPhase {
    arrived: usize,
    generation: u64,
}

/// Result of a barrier wait: `true` for exactly one participant per episode
/// (the "serial thread", like `PTHREAD_BARRIER_SERIAL_THREAD`).
pub type IsLeader = bool;

impl BlockingBarrier {
    /// Create a barrier for `participants` threads.
    ///
    /// # Panics
    /// Panics if `participants == 0`.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        BlockingBarrier {
            state: Arc::new(BlockingState {
                participants,
                lock: Mutex::new(BarrierPhase {
                    arrived: 0,
                    generation: 0,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.state.participants
    }

    /// Block until all participants have arrived.
    pub fn wait(&self) -> IsLeader {
        let s = &self.state;
        let mut phase = s.lock.lock();
        phase.arrived += 1;
        if phase.arrived == s.participants {
            phase.arrived = 0;
            phase.generation += 1;
            s.cv.notify_all();
            true
        } else {
            let my_gen = phase.generation;
            while phase.generation == my_gen {
                s.cv.wait(&mut phase);
            }
            false
        }
    }

    /// Like [`BlockingBarrier::wait`] but gives up after `timeout`,
    /// returning `None`. Useful in tests guarding against lost wakeups.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<IsLeader> {
        let s = &self.state;
        let mut phase = s.lock.lock();
        phase.arrived += 1;
        if phase.arrived == s.participants {
            phase.arrived = 0;
            phase.generation += 1;
            s.cv.notify_all();
            return Some(true);
        }
        let my_gen = phase.generation;
        let deadline = std::time::Instant::now() + timeout;
        while phase.generation == my_gen {
            let now = std::time::Instant::now();
            if now >= deadline {
                // Withdraw our arrival so the barrier stays consistent.
                phase.arrived -= 1;
                return None;
            }
            s.cv.wait_for(&mut phase, deadline - now);
        }
        Some(false)
    }
}

impl std::fmt::Debug for BlockingBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlockingBarrier({} participants)", self.participants())
    }
}

/// A centralised sense-reversing spin barrier: arriving threads busy-wait
/// (with `yield`) on a generation counter.
#[derive(Clone)]
pub struct SpinBarrier {
    state: Arc<SpinState>,
}

struct SpinState {
    participants: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Create a spin barrier for `participants` threads.
    ///
    /// # Panics
    /// Panics if `participants == 0`.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        SpinBarrier {
            state: Arc::new(SpinState {
                participants,
                arrived: AtomicUsize::new(0),
                generation: AtomicUsize::new(0),
            }),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.state.participants
    }

    /// Spin until all participants have arrived.
    pub fn wait(&self) -> IsLeader {
        let s = &self.state;
        let my_gen = s.generation.load(Ordering::SeqCst);
        if s.arrived.fetch_add(1, Ordering::SeqCst) + 1 == s.participants {
            s.arrived.store(0, Ordering::SeqCst);
            s.generation.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            let mut spins = 0u32;
            while s.generation.load(Ordering::SeqCst) == my_gen {
                if spins < 128 {
                    std::hint::spin_loop();
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

impl std::fmt::Debug for SpinBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpinBarrier({} participants)", self.participants())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn blocking_zero_participants_panics() {
        let _ = BlockingBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn spin_zero_participants_panics() {
        let _ = SpinBarrier::new(0);
    }

    #[test]
    fn single_thread_is_leader() {
        assert!(BlockingBarrier::new(1).wait());
        assert!(SpinBarrier::new(1).wait());
    }

    fn exercise_phases(wait: impl Fn() -> bool + Send + Sync, threads: usize, phases: usize) {
        let counter = Arc::new(AtomicU64::new(0));
        let wait = &wait;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let counter = counter.clone();
                scope.spawn(move || {
                    for phase in 0..phases {
                        counter.fetch_add(1, Ordering::SeqCst);
                        wait();
                        assert!(counter.load(Ordering::SeqCst) >= ((phase + 1) * threads) as u64);
                        wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), (threads * phases) as u64);
    }

    #[test]
    fn blocking_barrier_phases() {
        let b = BlockingBarrier::new(4);
        exercise_phases(|| b.wait(), 4, 20);
    }

    #[test]
    fn spin_barrier_phases() {
        let b = SpinBarrier::new(4);
        exercise_phases(|| b.wait(), 4, 20);
    }

    #[test]
    fn exactly_one_leader_per_episode_blocking() {
        let b = BlockingBarrier::new(3);
        let leaders = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let b = b.clone();
                let leaders = leaders.clone();
                scope.spawn(move || {
                    for _ in 0..30 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn wait_timeout_expires_without_other_threads() {
        let b = BlockingBarrier::new(2);
        assert_eq!(b.wait_timeout(Duration::from_millis(10)), None);
        // The withdrawn arrival must not corrupt the next episode.
        let b2 = b.clone();
        let t = std::thread::spawn(move || b2.wait());
        assert!(b.wait_timeout(Duration::from_secs(5)).is_some());
        t.join().unwrap();
    }

    #[test]
    fn debug_formats() {
        assert!(format!("{:?}", BlockingBarrier::new(2)).contains("2 participants"));
        assert!(format!("{:?}", SpinBarrier::new(3)).contains("3 participants"));
    }
}

//! `cargo xtask` — workspace automation (std-only, no dependencies).
//!
//! The one subcommand, `lint`, is the source-level audit gating CI:
//!
//! 1. **SAFETY comments** — every `unsafe` block and `unsafe impl` in
//!    first-party crates (`crates/**`) must be preceded (or accompanied on
//!    the same line) by a `// SAFETY:` comment justifying it. Together with
//!    `#![deny(unsafe_op_in_unsafe_fn)]` in `ompss` this means every unsafe
//!    operation in the tree carries a written argument.
//! 2. **No panicking calls on the hot path** — `unwrap()` / `expect(` /
//!    `panic!` / `unreachable!` / `todo!` / `unimplemented!` are banned in
//!    the per-task execution path: all of `worker.rs` and `task.rs`, and the
//!    `// lint: hot-path-begin` … `// lint: hot-path-end` regions of
//!    `graph.rs`. `#[cfg(test)]` modules are exempt; a deliberate site can
//!    carry `// lint: allow(panic)` on the line itself or the line above
//!    (used exactly once, for the injected-fault panic in `worker.rs`).
//! 3. **No wall-clock reads in deterministic modules** — `Instant::now` /
//!    `SystemTime::now` are banned in `failpoint.rs` (seed-deterministic
//!    fault rolls) and the vendored `proptest` (reproducible shrinking).
//!
//! Run as `cargo xtask lint` (see `.cargo/config.toml`). Exit code 0 when
//! clean, 1 with one line per violation otherwise. `cargo xtask lint
//! <file>...` lints just the named files with every rule armed — used by the
//! fixture tests to prove each lint actually fires.

use std::fmt;
use std::path::{Path, PathBuf};

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let paths: Vec<PathBuf> = args.map(PathBuf::from).collect();
            let violations = if paths.is_empty() {
                lint_workspace(&workspace_root())
            } else {
                let mut v = Vec::new();
                for p in &paths {
                    let src = match std::fs::read_to_string(p) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("xtask: cannot read {}: {e}", p.display());
                            std::process::exit(2);
                        }
                    };
                    v.extend(lint_file(p, &src, FileRules::all()));
                }
                v
            };
            if violations.is_empty() {
                println!("xtask lint: clean");
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                std::process::exit(1);
            }
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}` (expected `lint`)");
            std::process::exit(2);
        }
        None => {
            eprintln!("usage: cargo xtask lint [file...]");
            std::process::exit(2);
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// One lint finding, printed `path:line: [rule] message`.
#[derive(Debug)]
pub struct Violation {
    pub path: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to one file.
#[derive(Clone, Copy)]
pub struct FileRules {
    /// `unsafe` blocks/impls need `// SAFETY:`.
    pub safety: bool,
    /// Panicking calls banned: `Everywhere`, or only inside
    /// `lint: hot-path-begin/end` markers.
    pub panic: PanicScope,
    /// Wall-clock reads banned.
    pub wallclock: bool,
}

#[derive(Clone, Copy, PartialEq)]
pub enum PanicScope {
    Off,
    Everywhere,
    MarkedRegions,
}

impl FileRules {
    pub fn all() -> Self {
        FileRules {
            safety: true,
            panic: PanicScope::Everywhere,
            wallclock: true,
        }
    }
}

/// Walk the workspace and apply the per-file policy.
pub fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    // First-party source only: vendored stand-ins mirror external crates'
    // APIs and keep their upstream idiom — except `vendor/proptest`, whose
    // *determinism* the test suites rely on, so it gets the wall-clock rule.
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("src"), &mut files);
    collect_rs(&root.join("tests"), &mut files);
    collect_rs(&root.join("vendor/proptest/src"), &mut files);
    files.sort();

    let mut violations = Vec::new();
    for path in files {
        let Some(rules) = rules_for(root, &path) else {
            continue;
        };
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        violations.extend(lint_file(&path, &src, rules));
    }
    violations
}

/// The workspace lint policy, per file. `None` = skip entirely.
fn rules_for(root: &Path, path: &Path) -> Option<FileRules> {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    // Lint fixtures are deliberately dirty.
    if rel_str.contains("/fixtures/") {
        return None;
    }
    let file = rel.file_name()?.to_string_lossy().into_owned();
    let in_core = rel_str.starts_with("crates/core/src/");
    let panic = if in_core && (file == "worker.rs" || file == "task.rs") {
        PanicScope::Everywhere
    } else if in_core && file == "graph.rs" {
        PanicScope::MarkedRegions
    } else {
        PanicScope::Off
    };
    let wallclock =
        (in_core && file == "failpoint.rs") || rel_str.starts_with("vendor/proptest/");
    Some(FileRules {
        safety: !rel_str.starts_with("vendor/"),
        panic,
        wallclock,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Minimal per-line source classification shared by the three rules.
struct Line<'a> {
    /// Code portion: the raw line with any `//` comment tail removed, blank
    /// if the whole line is a comment or sits inside a `/* */` block.
    code: &'a str,
    /// Comment portion (everything from `//`, or the whole line inside a
    /// block comment).
    comment: &'a str,
}

/// Split source into lines, separating code from comments. String literals
/// are not tracked (no lint pattern appears in any first-party literal);
/// block comments are tracked across lines.
fn classify(src: &str) -> Vec<Line<'_>> {
    let mut out = Vec::new();
    let mut in_block = false;
    for raw in src.lines() {
        if in_block {
            if let Some(end) = raw.find("*/") {
                in_block = false;
                // Code may resume after the terminator; comment nesting and
                // same-line reopen are not used in this tree.
                out.push(Line {
                    code: &raw[end + 2..],
                    comment: &raw[..end],
                });
            } else {
                out.push(Line {
                    code: "",
                    comment: raw,
                });
            }
            continue;
        }
        let line_comment = raw.find("//");
        let block_open = raw.find("/*");
        match (line_comment, block_open) {
            (Some(lc), bo) if bo.is_none_or(|b| lc < b) => out.push(Line {
                code: &raw[..lc],
                comment: &raw[lc..],
            }),
            (Some(lc), None) => out.push(Line {
                code: &raw[..lc],
                comment: &raw[lc..],
            }),
            (_, Some(bo)) => {
                if let Some(rel_end) = raw[bo..].find("*/") {
                    out.push(Line {
                        code: &raw[..bo],
                        comment: &raw[bo..bo + rel_end + 2],
                    });
                } else {
                    in_block = true;
                    out.push(Line {
                        code: &raw[..bo],
                        comment: &raw[bo..],
                    });
                }
            }
            (None, None) => out.push(Line {
                code: raw,
                comment: "",
            }),
        }
    }
    out
}

/// Track `#[cfg(test)] mod … { … }` spans so test code is exempt from the
/// panic rule: when a `#[cfg(test)]` attribute is followed by a `mod` item,
/// every line until its closing brace is flagged as test code.
fn test_lines(lines: &[Line<'_>]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim();
        if code.starts_with("#[cfg(test)]") {
            // Find the following item; only `mod` opens an exempt span.
            let mut j = i + 1;
            while j < lines.len() {
                let next = lines[j].code.trim();
                if next.is_empty() || next.starts_with("#[") {
                    j += 1;
                    continue;
                }
                break;
            }
            if j < lines.len()
                && (lines[j].code.trim().starts_with("mod ")
                    || lines[j].code.trim().starts_with("pub mod "))
            {
                let mut depth = 0i64;
                let mut opened = false;
                while j < lines.len() {
                    flags[j] = true;
                    for c in lines[j].code.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    if opened && depth <= 0 {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    flags
}

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const WALLCLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime::now"];

/// Apply `rules` to one file.
pub fn lint_file(path: &Path, src: &str, rules: FileRules) -> Vec<Violation> {
    let lines = classify(src);
    let tests = test_lines(&lines);
    let mut violations = Vec::new();
    let mut in_hot = rules.panic == PanicScope::Everywhere;

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        if rules.panic == PanicScope::MarkedRegions {
            if line.comment.contains("lint: hot-path-begin") {
                in_hot = true;
            } else if line.comment.contains("lint: hot-path-end") {
                in_hot = false;
            }
        }

        if rules.safety {
            let code = line.code;
            let has_unsafe = find_word(code, "unsafe").is_some_and(|rest| {
                let rest = rest.trim_start();
                // Blocks and impls need justification; `unsafe fn` signatures
                // document their contract in `# Safety` rustdoc instead, and
                // `deny(unsafe_op_in_unsafe_fn)` forces their bodies to use
                // commented inner blocks.
                rest.starts_with('{') || rest.starts_with("impl")
            });
            if has_unsafe && !has_safety_comment(&lines, i) {
                violations.push(Violation {
                    path: path.to_path_buf(),
                    line: lineno,
                    rule: "safety-comment",
                    message: "`unsafe` without a preceding `// SAFETY:` comment".into(),
                });
            }
        }

        if rules.panic != PanicScope::Off && in_hot && !tests[i] {
            if let Some(pat) = PANIC_PATTERNS.iter().find(|p| line.code.contains(**p)) {
                let allowed = line.comment.contains("lint: allow(panic)")
                    || (i > 0 && lines[i - 1].comment.contains("lint: allow(panic)"))
                    || (i > 1 && lines[i - 2].comment.contains("lint: allow(panic)"));
                if !allowed {
                    violations.push(Violation {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "hot-path-panic",
                        message: format!("`{pat}` on the hot path"),
                    });
                }
            }
        }

        if rules.wallclock {
            if let Some(pat) = WALLCLOCK_PATTERNS.iter().find(|p| line.code.contains(**p)) {
                violations.push(Violation {
                    path: path.to_path_buf(),
                    line: lineno,
                    rule: "wall-clock",
                    message: format!("`{pat}` in a deterministic module"),
                });
            }
        }
    }
    violations
}

/// `word` present in `code` with no identifier character on either side;
/// returns the text after the match.
fn find_word<'a>(code: &'a str, word: &str) -> Option<&'a str> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &code[abs + word.len()..];
        let after_ok = !after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(after);
        }
        start = abs + word.len();
    }
    None
}

/// A `SAFETY:` comment counts when it appears on the `unsafe` line itself or
/// in the contiguous comment/attribute block directly above it. Consecutive
/// `unsafe impl` lines (the `Send` + `Sync` pair idiom) share one comment.
fn has_safety_comment(lines: &[Line<'_>], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        let code = line.code.trim();
        // (Split literal so the linter does not match its own source.)
        let unsafe_impl = concat!("unsafe", " impl");
        let is_annotation =
            code.is_empty() || code.starts_with("#[") || code.starts_with(unsafe_impl);
        if line.comment.contains("SAFETY:") {
            return true;
        }
        if !is_annotation || (code.is_empty() && line.comment.is_empty()) {
            // A code line (or a fully blank line) ends the comment block.
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name)
    }

    fn lint_fixture(name: &str) -> Vec<Violation> {
        let path = fixture(name);
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        lint_file(&path, &src, FileRules::all())
    }

    #[test]
    fn fixture_trips_every_rule() {
        let violations = lint_fixture("dirty.rs");
        let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
        assert!(
            rules.contains(&"safety-comment"),
            "uncommented unsafe must be reported: {violations:?}"
        );
        assert!(
            rules.contains(&"hot-path-panic"),
            "unwrap/expect/panic must be reported: {violations:?}"
        );
        assert!(
            rules.contains(&"wall-clock"),
            "Instant::now must be reported: {violations:?}"
        );
        // And the commented unsafe / allowlisted panic / test-module panic in
        // the same fixture must NOT be reported.
        assert_eq!(
            violations.len(),
            5,
            "exactly the marked violations fire: {violations:?}"
        );
    }

    #[test]
    fn workspace_tree_is_clean() {
        let root = super::workspace_root();
        // Only meaningful when run in the source tree.
        assert!(root.join("Cargo.toml").exists());
        let violations = lint_workspace(&root);
        assert!(
            violations.is_empty(),
            "workspace lint must pass:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn safety_comment_window_ends_at_code() {
        let src = "// SAFETY: ok\nlet x = 1;\nunsafe { y() };\n";
        let v = lint_file(Path::new("t.rs"), src, FileRules::all());
        assert_eq!(v.len(), 1, "comment above unrelated code must not count");
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_panic_rule() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        let v = lint_file(Path::new("t.rs"), src, FileRules::all());
        assert!(v.is_empty(), "{v:?}");
    }
}

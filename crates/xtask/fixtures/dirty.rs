//! Lint fixture: deliberately dirty source proving each rule fires (and the
//! exemptions hold). Never compiled; `cargo xtask lint` must FAIL on it with
//! exactly the violations marked `BAD` below.

struct Raw(*mut u8);

// BAD(1): unsafe impl without a SAFETY comment.
unsafe impl Send for Raw {}

// SAFETY: fine — justified unsafe impls are accepted.
unsafe impl Sync for Raw {}

fn uncommented_block(p: *const u8) -> u8 {
    // BAD(2): unsafe block without a SAFETY comment.
    unsafe { *p }
}

fn commented_block(p: *const u8) -> u8 {
    // SAFETY: fine — the caller guarantees `p` is valid.
    unsafe { *p }
}

fn hot(v: Option<u8>) -> u8 {
    // BAD(3): unwrap on the hot path.
    let x = v.unwrap();
    if x == 255 {
        // BAD(4): panic! on the hot path.
        panic!("overflow");
    }
    x
}

fn allowlisted(v: Option<u8>) -> u8 {
    // lint: allow(panic) — deliberate, exercised by the fixture test.
    v.unwrap()
}

fn timing() -> std::time::Instant {
    // BAD(5): wall-clock read in a deterministic module.
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1); // fine: cfg(test) module is exempt
    }
}

//! Data handles: the objects named in `input` / `output` / `inout` clauses.
//!
//! OmpSs clauses name C pointers; here, tasks declare accesses on *handles*:
//!
//! * [`Data<T>`] — a single shared object (one region covering the whole
//!   allocation).
//! * [`PartitionedData<T>`] — a `Vec<T>` split into fixed, disjoint chunks;
//!   every chunk is its own region so that one task per chunk (scanline,
//!   block, macroblock row, …) runs in parallel, while whole-array accesses
//!   still conflict with every chunk.
//!
//! The handles themselves never hand out references. Inside a task body,
//! [`TaskContext::read`](crate::runtime::TaskContext::read) /
//! [`TaskContext::write`](crate::runtime::TaskContext::write) (and the chunk
//! equivalents) validate the requested access against the task's declared
//! access list and only then produce a guard. Conflicting declared accesses
//! are serialised by the dependence graph, which is what makes handing out
//! `&mut` sound.
//!
//! A [`Data<T>`] handle can additionally be **versioned**
//! ([`Data::versioned`] / [`Runtime::versioned_data`]): it is then backed by
//! a chain of storage versions, and an `output` access allocates a fresh
//! version instead of inheriting WAR/WAW dependences — the automatic
//! renaming of [`crate::rename`].
//!
//! A [`PartitionedData<T>`] can likewise be versioned
//! ([`PartitionedData::versioned`] / [`Runtime::versioned_partitioned`]), at
//! **chunk granularity**: every chunk owns its own version chain, an
//! `output` access to chunk *i* renames just that chunk, and whole-array
//! accesses bind (for `output`: rename) the current version of every chunk.
//! The backing `Vec<T>` is reassembled from the chunks' final versions when
//! the partition is unwrapped ([`PartitionedData::try_into_vec`] /
//! [`Runtime::into_vec`]).
//!
//! [`Runtime::versioned_data`]: crate::Runtime::versioned_data
//! [`Runtime::versioned_partitioned`]: crate::Runtime::versioned_partitioned
//! [`Runtime::into_vec`]: crate::Runtime::into_vec

use std::cell::UnsafeCell;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::access::{Access, AccessKind};
use crate::region::{AllocId, Region, RegionId};
use crate::rename::{
    RenameCommit, RenameCx, RenameEvent, Reservation, ResolvedAccess, VersionTicket,
};

/// Trait of everything that can appear in an access clause.
pub trait Accessible {
    /// The memory region this handle stands for. For a versioned handle this
    /// is the region of the *current* version.
    fn region(&self) -> Region;

    /// Every region a synchronisation on this handle must cover. Plain
    /// handles have exactly one; a versioned handle reports the region of
    /// every version still referenced by in-flight tasks, so that
    /// `taskwait_on` waits for tasks bound to superseded versions too.
    fn sync_regions(&self) -> Vec<Region> {
        vec![self.region()]
    }

    /// Resolve a declared access to a concrete region (and, for versioned
    /// handles, a concrete data version) at task-insertion time. The default
    /// implementation performs no renaming.
    fn resolve(&self, kind: AccessKind, cx: &RenameCx<'_>) -> ResolvedAccess {
        let _ = cx;
        ResolvedAccess::plain(Access::new(self.region(), kind))
    }

    /// Stable identity of this handle for
    /// [`ReplayBindings`](crate::ReplayBindings) lookups: the **canonical**
    /// region id, unchanged by version renaming. Two clones naming the same
    /// logical object report the same key whatever concrete version either
    /// currently points at, so a binding installed against the handle used
    /// at capture time matches every recorded clause on that handle.
    fn replay_key(&self) -> RegionId {
        self.region().id
    }
}

// ---------------------------------------------------------------------------
// Data<T>
// ---------------------------------------------------------------------------

pub(crate) struct DataInner<T> {
    /// Canonical region: its allocation id is the stable identity ("root")
    /// of the handle, and — for plain storage — the region used in clauses.
    pub(crate) region: Region,
    storage: Storage<T>,
}

enum Storage<T> {
    /// A single cell; accesses always resolve to the canonical region.
    Plain(UnsafeCell<T>),
    /// A chain of versions; `output` accesses may rename (see
    /// [`crate::rename`]).
    Versioned(Chain<T>),
}

struct Chain<T> {
    /// Produces the value a freshly allocated version starts from.
    make: Box<dyn Fn() -> T + Send + Sync>,
    /// Bytes one version is accounted for against the rename budget. Defaults
    /// to the shallow `size_of::<T>()`; [`Data::versioned_with_size`] lets
    /// heap-backed types declare their deep payload.
    bytes_per_version: usize,
    state: Mutex<ChainState<T>>,
}

struct ChainState<T> {
    /// Live versions. Slot cells are boxed so their addresses survive the
    /// vector reallocating.
    slots: Vec<Slot<T>>,
    /// Recycled storage (bounded by the runtime's rename pool depth).
    free: Vec<FreeSlot<T>>,
    /// Index into `slots` of the current (program-order latest) version.
    current: usize,
}

struct Slot<T> {
    alloc: AllocId,
    cell: Box<UnsafeCell<T>>,
    /// In-flight tasks bound to this version.
    refs: usize,
    /// Budget share of this version; `None` for the canonical first slot
    /// (which exists whether or not renaming ever happens).
    reservation: Option<Reservation>,
}

struct FreeSlot<T> {
    cell: Box<UnsafeCell<T>>,
    reservation: Option<Reservation>,
}

impl<T> ChainState<T> {
    fn slot_index(&self, alloc: AllocId) -> Option<usize> {
        self.slots.iter().position(|s| s.alloc == alloc)
    }

    /// Recycle slot `idx` if it is superseded and unreferenced. The storage
    /// goes back to the free pool when there is room, otherwise it is
    /// dropped (returning its bytes to the rename budget).
    fn reclaim(&mut self, idx: usize, pool_depth: usize) {
        if idx == self.current || self.slots[idx].refs != 0 {
            return;
        }
        let slot = self.slots.swap_remove(idx);
        if self.current == self.slots.len() {
            // `current` pointed at the slot that was swapped into `idx`.
            self.current = idx;
        }
        if self.free.len() < pool_depth {
            self.free.push(FreeSlot {
                cell: slot.cell,
                reservation: slot.reservation,
            });
        }
    }
}

// SAFETY: access to the cells is mediated by the runtime: a mutable guard is
// only produced for a task that declared a write access, tasks with
// conflicting declared accesses on the same version are ordered by the
// dependence graph, and distinct versions are distinct storage. All other
// chain state is behind a mutex.
unsafe impl<T: Send> Send for DataInner<T> {}
unsafe impl<T: Send> Sync for DataInner<T> {}

/// Release hook for one (task, version) binding of a versioned handle;
/// doubles as the commit hook for renames (same slot identity).
struct SlotTicket<T> {
    inner: Arc<DataInner<T>>,
    alloc: AllocId,
    pool_depth: usize,
}

impl<T> Clone for SlotTicket<T> {
    fn clone(&self) -> Self {
        SlotTicket {
            inner: self.inner.clone(),
            alloc: self.alloc,
            pool_depth: self.pool_depth,
        }
    }
}

impl<T: Send + 'static> VersionTicket for SlotTicket<T> {
    fn release(&self) {
        if let Storage::Versioned(chain) = &self.inner.storage {
            let mut st = chain.state.lock();
            if let Some(idx) = st.slot_index(self.alloc) {
                debug_assert!(st.slots[idx].refs > 0, "ticket released twice");
                st.slots[idx].refs -= 1;
                st.reclaim(idx, self.pool_depth);
            }
        }
    }

    fn unelide(&self, cx: &RenameCx<'_>) -> Option<ResolvedAccess> {
        let Storage::Versioned(chain) = &self.inner.storage else {
            return None;
        };
        let mut st = chain.state.lock();
        let idx = st.slot_index(self.alloc)?;
        if idx != st.current {
            // Not an in-place binding on the current version: nothing to
            // un-elide (the write already targets its own version).
            return None;
        }
        let resolved = rename_data_version(&self.inner, chain, &mut st, AccessKind::Output, cx)?;
        // The binding moves to the fresh version (held by the replacement
        // ticket); release the in-place reference this ticket held. The old
        // version stays current — and readable — until the commit at spawn.
        debug_assert!(st.slots[idx].refs > 0, "elided binding already released");
        st.slots[idx].refs -= 1;
        cx.pool().note_unelision();
        Some(resolved)
    }
}

impl<T: Send> RenameCommit for SlotTicket<T> {
    fn commit(&self) {
        if let Storage::Versioned(chain) = &self.inner.storage {
            let mut st = chain.state.lock();
            if let Some(idx) = st.slot_index(self.alloc) {
                if idx != st.current {
                    let superseded = st.current;
                    st.current = idx;
                    st.reclaim(superseded, self.pool_depth);
                }
            }
        }
    }
}

/// A handle to a single shared object managed by the runtime.
///
/// Cloning the handle is cheap (it is reference counted); all clones refer to
/// the same object and the same dependence region.
pub struct Data<T> {
    pub(crate) inner: Arc<DataInner<T>>,
}

impl<T> Clone for Data<T> {
    fn clone(&self) -> Self {
        Data {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> Data<T> {
    /// Wrap `value` in a new handle with its own fresh region.
    ///
    /// Normally constructed through [`Runtime::data`](crate::Runtime::data);
    /// exposed for tests and for building handles before a runtime exists.
    pub fn new(value: T) -> Self {
        let alloc = AllocId::fresh();
        let size = std::mem::size_of::<T>().max(1);
        Data {
            inner: Arc::new(DataInner {
                region: Region::new(alloc, 0, 0..size),
                storage: Storage::Plain(UnsafeCell::new(value)),
            }),
        }
    }

    /// Wrap `value` in a *versioned* handle: `output` accesses rename to a
    /// fresh version (initialised with `T::default()`) instead of inheriting
    /// WAR/WAW dependences. See [`crate::rename`] for the full model.
    ///
    /// Normally constructed through
    /// [`Runtime::versioned_data`](crate::Runtime::versioned_data).
    pub fn versioned(value: T) -> Self
    where
        T: Default,
    {
        Self::versioned_with(value, T::default)
    }

    /// Like [`Data::versioned`], but fresh versions are initialised with
    /// `make()` instead of `T::default()`.
    pub fn versioned_with(value: T, make: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Self::versioned_with_size(value, make, std::mem::size_of::<T>())
    }

    /// Like [`Data::versioned_with`], additionally declaring how many bytes
    /// one version of this handle really occupies (**deep** size, including
    /// heap payloads such as a `Vec<T>`'s buffer). Renamed versions draw
    /// `bytes_per_version` from the global rename budget instead of the
    /// shallow `size_of::<T>()`, which makes
    /// [`RuntimeConfig::rename_memory_cap`](crate::RuntimeConfig) meaningful
    /// for heap-backed types.
    pub fn versioned_with_size(
        value: T,
        make: impl Fn() -> T + Send + Sync + 'static,
        bytes_per_version: usize,
    ) -> Self {
        let alloc = AllocId::fresh();
        let size = std::mem::size_of::<T>().max(1);
        Data {
            inner: Arc::new(DataInner {
                region: Region::new(alloc, 0, 0..size),
                storage: Storage::Versioned(Chain {
                    make: Box::new(make),
                    bytes_per_version,
                    state: Mutex::new(ChainState {
                        slots: vec![Slot {
                            alloc,
                            cell: Box::new(UnsafeCell::new(value)),
                            refs: 0,
                            reservation: None,
                        }],
                        free: Vec::new(),
                        current: 0,
                    }),
                }),
            }),
        }
    }

    /// Whether this handle carries a version chain (renaming-capable).
    pub fn is_versioned(&self) -> bool {
        matches!(self.inner.storage, Storage::Versioned(_))
    }

    /// Number of live versions (1 for plain handles; diagnostics).
    pub fn live_versions(&self) -> usize {
        match &self.inner.storage {
            Storage::Plain(_) => 1,
            Storage::Versioned(chain) => chain.state.lock().slots.len(),
        }
    }

    /// Recover the inner value if this is the last handle. For a versioned
    /// handle this is the value of the **current** version — the final
    /// version of the program, "committed back" once all tasks finished.
    pub fn try_into_inner(self) -> Result<T, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => match inner.storage {
                Storage::Plain(cell) => Ok(cell.into_inner()),
                Storage::Versioned(chain) => {
                    let mut st = chain.state.into_inner();
                    let current = st.current;
                    Ok(st.slots.swap_remove(current).cell.into_inner())
                }
            },
            Err(arc) => Err(Data { inner: arc }),
        }
    }

    /// Number of live handles to this object (diagnostics).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Stable identity of the handle across versions.
    pub(crate) fn root_alloc(&self) -> AllocId {
        self.inner.region.id.alloc
    }

    /// Pointer to the storage of the version with allocation id `alloc`.
    /// Returns `None` when no live version has that id.
    pub(crate) fn ptr_for_alloc(&self, alloc: AllocId) -> Option<*mut T> {
        match &self.inner.storage {
            Storage::Plain(cell) => (alloc == self.inner.region.id.alloc).then(|| cell.get()),
            Storage::Versioned(chain) => {
                let st = chain.state.lock();
                st.slot_index(alloc).map(|i| st.slots[i].cell.get())
            }
        }
    }

    fn version_region(&self, alloc: AllocId) -> Region {
        self.inner.version_region(alloc)
    }

    /// Bind the current version: bump its refcount and build the access. The
    /// version's storage pointer is resolved here, once, so the task-body
    /// guards never lock the chain. `elided` marks the binding as an elided
    /// in-place `output` (so the builder can un-elide it if an `input` on
    /// the same handle follows).
    fn bind_current(
        &self,
        kind: AccessKind,
        cx: &RenameCx<'_>,
        st: &mut ChainState<T>,
        elided: bool,
    ) -> ResolvedAccess {
        let current = st.current;
        st.slots[current].refs += 1;
        let alloc = st.slots[current].alloc;
        let ptr = st.slots[current].cell.get();
        let mut access = Access::bound_to(
            self.version_region(alloc),
            kind,
            self.inner.region.clone(),
            ptr as *mut (),
            1,
        );
        if elided {
            access = access.mark_elided();
        }
        ResolvedAccess::bound(
            access,
            Box::new(SlotTicket {
                inner: self.inner.clone(),
                alloc,
                pool_depth: cx.pool_depth(),
            }),
            None,
            None,
        )
    }
}

impl<T> DataInner<T> {
    fn version_region(&self, alloc: AllocId) -> Region {
        Region::new(alloc, 0, self.region.bytes.clone())
    }
}

/// The rename arm shared by [`Data::resolve`] and [`SlotTicket::unelide`]:
/// with the chain lock held, allocate (or pool-recycle) a fresh version,
/// bind the task to it (refs = 1) and return the access + ticket + deferred
/// commit. Returns `None` — after counting a fallback — when the handle is
/// at its version bound or the byte budget refuses the reservation.
fn rename_data_version<T: Send + 'static>(
    inner: &Arc<DataInner<T>>,
    chain: &Chain<T>,
    st: &mut ChainState<T>,
    kind: AccessKind,
    cx: &RenameCx<'_>,
) -> Option<ResolvedAccess> {
    // Version-count backpressure: the byte budget below is shallow
    // (`size_of::<T>()` unless a deep hint was given), so this is the bound
    // that actually limits heap-backed types.
    if st.slots.len() >= cx.max_versions() {
        cx.pool().note_fallback();
        return None;
    }
    // Prefer recycled storage (no new memory), else draw on the budget.
    let (cell, reservation, recycled) = if let Some(free) = st.free.pop() {
        (free.cell, free.reservation, true)
    } else {
        match cx.try_reserve(chain.bytes_per_version) {
            Some(res) => (Box::new(UnsafeCell::new((chain.make)())), Some(res), false),
            None => {
                cx.pool().note_fallback();
                return None;
            }
        }
    };
    let alloc = AllocId::fresh();
    let from = st.slots[st.current].alloc;
    st.slots.push(Slot {
        alloc,
        cell,
        refs: 1,
        reservation,
    });
    let ptr = st.slots.last().expect("just pushed").cell.get();
    // The new version is allocated (and this task bound to it) but NOT
    // yet current: it becomes the handle's value only when the task is
    // actually inserted (`TaskBuilder::spawn` runs the commit hook). A
    // builder abandoned before spawn releases its ticket, reclaiming
    // the never-current version without disturbing the handle.
    cx.pool().note_rename(recycled, false);
    let ticket = SlotTicket {
        inner: inner.clone(),
        alloc,
        pool_depth: cx.pool_depth(),
    };
    let commit = ticket.clone();
    Some(ResolvedAccess::bound(
        Access::bound_to(
            inner.version_region(alloc),
            kind,
            inner.region.clone(),
            ptr as *mut (),
            1,
        ),
        Box::new(ticket),
        Some(RenameEvent {
            from,
            to: alloc,
            recycled,
            chunk: None,
        }),
        Some(Box::new(commit)),
    ))
}

impl<T: Send + 'static> Accessible for Data<T> {
    fn region(&self) -> Region {
        match &self.inner.storage {
            Storage::Plain(_) => self.inner.region.clone(),
            Storage::Versioned(chain) => {
                let st = chain.state.lock();
                self.version_region(st.slots[st.current].alloc)
            }
        }
    }

    fn sync_regions(&self) -> Vec<Region> {
        match &self.inner.storage {
            Storage::Plain(_) => vec![self.inner.region.clone()],
            Storage::Versioned(chain) => chain
                .state
                .lock()
                .slots
                .iter()
                .map(|s| self.version_region(s.alloc))
                .collect(),
        }
    }

    fn replay_key(&self) -> RegionId {
        // The canonical ("root") region, not the current version's: stable
        // across renames, shared by every clone of the handle.
        self.inner.region.id
    }

    fn resolve(&self, kind: AccessKind, cx: &RenameCx<'_>) -> ResolvedAccess {
        let chain = match &self.inner.storage {
            Storage::Plain(cell) => {
                return ResolvedAccess::plain(
                    Access::new(self.inner.region.clone(), kind)
                        .with_ptr(cell.get() as *mut (), 1),
                )
            }
            Storage::Versioned(chain) => chain,
        };
        let mut st = chain.state.lock();
        if kind != AccessKind::Output || !cx.renaming_enabled() {
            // Reads (and in-place updates) bind the latest version: true
            // dependences are preserved, `inout` chains still serialise.
            return self.bind_current(kind, cx, &mut st, false);
        }
        // First-write rename elision: nobody is bound to the current version
        // (ticket release happens after tracker retirement, so "no bindings"
        // means every earlier task on this version is a tombstone that can
        // take no WAR/WAW edge) — overwrite it in place instead of paying
        // for a version that would conflict with nothing anyway. The binding
        // is marked elided so the builder can undo it if an `input` on the
        // same handle follows (the output-before-input corner).
        if cx.elision_enabled() && st.slots[st.current].refs == 0 {
            cx.pool().note_elision();
            return self.bind_current(kind, cx, &mut st, true);
        }
        // `output`: rename; if the version bound or the byte budget refuses,
        // fall back to the current version, serialising like the
        // non-renaming runtime.
        match rename_data_version(&self.inner, chain, &mut st, kind, cx) {
            Some(resolved) => resolved,
            None => self.bind_current(kind, cx, &mut st, false),
        }
    }
}

impl<T> std::fmt::Debug for Data<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner.storage {
            Storage::Plain(_) => write!(f, "Data({})", self.inner.region.id),
            Storage::Versioned(chain) => {
                let st = chain.state.lock();
                write!(
                    f,
                    "Data({}, {} versions, current {})",
                    self.inner.region.id,
                    st.slots.len(),
                    st.slots[st.current].alloc.raw()
                )
            }
        }
    }
}

/// Shared read guard produced by [`TaskContext::read`](crate::runtime::TaskContext::read).
pub struct ReadGuard<'a, T> {
    pub(crate) value: &'a T,
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

/// Exclusive write guard produced by [`TaskContext::write`](crate::runtime::TaskContext::write).
pub struct WriteGuard<'a, T> {
    pub(crate) value: &'a mut T,
}

impl<T> std::ops::Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value
    }
}

// ---------------------------------------------------------------------------
// PartitionedData<T>
// ---------------------------------------------------------------------------

pub(crate) struct PartInner<T> {
    pub(crate) alloc: AllocId,
    /// Element ranges of each chunk (disjoint, covering `0..len`).
    pub(crate) chunks: Vec<std::ops::Range<usize>>,
    pub(crate) elem_size: usize,
    pub(crate) len: usize,
    storage: PartStorage<T>,
}

enum PartStorage<T> {
    /// One contiguous backing vector; chunk accesses resolve to canonical
    /// sub-regions of the single allocation.
    Plain(UnsafeCell<Vec<T>>),
    /// One version chain **per chunk**: `output` accesses rename individual
    /// chunks (see [`crate::rename`], "Region granularity").
    Versioned(PartChains<T>),
}

struct PartChains<T> {
    /// Produces the contents a freshly allocated chunk version starts from
    /// (argument: chunk length in elements).
    make: Box<dyn Fn(usize) -> Vec<T> + Send + Sync>,
    /// Chain `i` versions chunk `i`. Reuses the scalar-chain state machinery
    /// with `Vec<T>` as the per-version storage.
    chains: Vec<Mutex<ChainState<Vec<T>>>>,
}

impl<T> PartInner<T> {
    fn is_versioned(&self) -> bool {
        matches!(self.storage, PartStorage::Versioned(_))
    }

    /// Canonical region of chunk `i`: a sub-range of the partition's own
    /// allocation. This is the identity chunk bindings are keyed by, whatever
    /// concrete version they resolve to.
    pub(crate) fn chunk_canonical_region(&self, i: usize) -> Region {
        let r = self.chunks[i].clone();
        Region::new(
            self.alloc,
            i as u32 + 1,
            r.start * self.elem_size..r.end * self.elem_size,
        )
    }

    /// Canonical region of the whole array.
    fn whole_region(&self) -> Region {
        Region::new(self.alloc, 0, 0..self.len.max(1) * self.elem_size)
    }

    /// Region of one concrete chunk version (its own allocation identity).
    fn chunk_version_region(&self, i: usize, alloc: AllocId) -> Region {
        Region::new(alloc, 0, 0..self.chunks[i].len() * self.elem_size)
    }

    /// Pointer/length of an element range of the plain backing vector.
    ///
    /// # Panics
    /// Panics on versioned storage (which has no contiguous backing array).
    fn plain_ptr(&self, elems: std::ops::Range<usize>) -> (*mut T, usize) {
        match &self.storage {
            PartStorage::Plain(cell) => {
                // SAFETY: we only manufacture the pointer here; dereferencing
                // is gated by the runtime (see module docs).
                let base = unsafe { (*cell.get()).as_mut_ptr() };
                // SAFETY: `elems` is a chunk range validated against the
                // backing vector's length at partition time, so the offset
                // stays within the same allocation.
                (unsafe { base.add(elems.start) }, elems.len())
            }
            PartStorage::Versioned(_) => {
                unreachable!("plain_ptr is only called for plain partitions")
            }
        }
    }

    /// All regions a synchronisation on chunk `i` must cover.
    fn chunk_sync_regions(&self, i: usize) -> Vec<Region> {
        match &self.storage {
            PartStorage::Plain(_) => vec![self.chunk_canonical_region(i)],
            PartStorage::Versioned(chains) => chains.chains[i]
                .lock()
                .slots
                .iter()
                .map(|s| self.chunk_version_region(i, s.alloc))
                .collect(),
        }
    }

    /// All regions a synchronisation on the whole array must cover.
    fn whole_sync_regions(&self) -> Vec<Region> {
        match &self.storage {
            PartStorage::Plain(_) => vec![self.whole_region()],
            PartStorage::Versioned(_) => (0..self.chunks.len())
                .flat_map(|i| self.chunk_sync_regions(i))
                .collect(),
        }
    }
}

// SAFETY: the `UnsafeCell` backing store (plain tier) and raw chunk
// pointers are only dereferenced through task guards, and the runtime's
// dependence tracking serialises conflicting accesses (same argument as
// `DataInner`); all other state is behind locks or atomics, so sharing the
// partition across threads is sound for `T: Send`.
unsafe impl<T: Send> Send for PartInner<T> {}
// SAFETY: as for `Send` above.
unsafe impl<T: Send> Sync for PartInner<T> {}

/// Release hook for one (task, chunk version) binding of a versioned
/// partition; doubles as the commit hook for per-chunk renames.
struct ChunkTicket<T> {
    inner: Arc<PartInner<T>>,
    chunk: usize,
    alloc: AllocId,
    pool_depth: usize,
}

impl<T> ChunkTicket<T> {
    fn chain(&self) -> &Mutex<ChainState<Vec<T>>> {
        match &self.inner.storage {
            PartStorage::Versioned(chains) => &chains.chains[self.chunk],
            PartStorage::Plain(_) => unreachable!("chunk tickets only exist for versioned partitions"),
        }
    }
}

impl<T> Clone for ChunkTicket<T> {
    fn clone(&self) -> Self {
        ChunkTicket {
            inner: self.inner.clone(),
            chunk: self.chunk,
            alloc: self.alloc,
            pool_depth: self.pool_depth,
        }
    }
}

impl<T: Send + 'static> VersionTicket for ChunkTicket<T> {
    fn release(&self) {
        let mut st = self.chain().lock();
        if let Some(idx) = st.slot_index(self.alloc) {
            debug_assert!(st.slots[idx].refs > 0, "chunk ticket released twice");
            st.slots[idx].refs -= 1;
            st.reclaim(idx, self.pool_depth);
        }
    }

    fn unelide(&self, cx: &RenameCx<'_>) -> Option<ResolvedAccess> {
        let mut st = self.chain().lock();
        let idx = st.slot_index(self.alloc)?;
        if idx != st.current {
            return None;
        }
        let resolved =
            rename_chunk_version(&self.inner, self.chunk, &mut st, AccessKind::Output, cx)?;
        debug_assert!(st.slots[idx].refs > 0, "elided chunk binding already released");
        st.slots[idx].refs -= 1;
        cx.pool().note_unelision();
        Some(resolved)
    }
}

impl<T: Send> RenameCommit for ChunkTicket<T> {
    fn commit(&self) {
        let mut st = self.chain().lock();
        if let Some(idx) = st.slot_index(self.alloc) {
            if idx != st.current {
                let superseded = st.current;
                st.current = idx;
                st.reclaim(superseded, self.pool_depth);
            }
        }
    }
}

/// The per-chunk rename arm shared by [`resolve_chunk`] and
/// [`ChunkTicket::unelide`]: with the chunk's chain lock held, allocate (or
/// pool-recycle) a fresh chunk version and bind the task to it. The
/// reservation covers the chunk's deep payload
/// (`chunk_len * size_of::<T>()`), so the byte budget is meaningful for
/// partitions however large their element chunks are. Returns `None` —
/// after counting a fallback — under version-count or byte-budget
/// backpressure.
fn rename_chunk_version<T: Send + 'static>(
    inner: &Arc<PartInner<T>>,
    chunk: usize,
    st: &mut ChainState<Vec<T>>,
    kind: AccessKind,
    cx: &RenameCx<'_>,
) -> Option<ResolvedAccess> {
    let chains = match &inner.storage {
        PartStorage::Versioned(chains) => chains,
        PartStorage::Plain(_) => unreachable!("chunk renames require versioned storage"),
    };
    let chunk_len = inner.chunks[chunk].len();
    if st.slots.len() >= cx.max_versions() {
        cx.pool().note_fallback();
        return None;
    }
    let (cell, reservation, recycled) = if let Some(free) = st.free.pop() {
        (free.cell, free.reservation, true)
    } else {
        let bytes = chunk_len * inner.elem_size;
        match cx.try_reserve(bytes) {
            Some(res) => {
                let fresh = (chains.make)(chunk_len);
                debug_assert_eq!(fresh.len(), chunk_len, "make() returned the wrong length");
                (Box::new(UnsafeCell::new(fresh)), Some(res), false)
            }
            None => {
                cx.pool().note_fallback();
                return None;
            }
        }
    };
    let alloc = AllocId::fresh();
    let from = st.slots[st.current].alloc;
    st.slots.push(Slot {
        alloc,
        cell,
        refs: 1,
        reservation,
    });
    // SAFETY: pointer manufacture only; the chain lock is held and the
    // version cannot be reclaimed while the returned ticket is live.
    let ptr = unsafe { (*st.slots.last().expect("just pushed").cell.get()).as_mut_ptr() };
    cx.pool().note_rename(recycled, true);
    let ticket = ChunkTicket {
        inner: inner.clone(),
        chunk,
        alloc,
        pool_depth: cx.pool_depth(),
    };
    let commit = ticket.clone();
    Some(ResolvedAccess::bound(
        Access::bound_to(
            inner.chunk_version_region(chunk, alloc),
            kind,
            inner.chunk_canonical_region(chunk),
            ptr as *mut (),
            chunk_len,
        ),
        Box::new(ticket),
        Some(RenameEvent {
            from,
            to: alloc,
            recycled,
            chunk: Some(chunk as u32),
        }),
        Some(Box::new(commit)),
    ))
}

/// Resolve an access to chunk `chunk` of a versioned partition against its
/// chain — the per-chunk analogue of `Data::resolve`'s versioned arm.
fn resolve_chunk<T: Send + 'static>(
    inner: &Arc<PartInner<T>>,
    chunk: usize,
    kind: AccessKind,
    cx: &RenameCx<'_>,
) -> ResolvedAccess {
    let chains = match &inner.storage {
        PartStorage::Versioned(chains) => chains,
        PartStorage::Plain(_) => unreachable!("resolve_chunk requires versioned storage"),
    };
    let canonical = inner.chunk_canonical_region(chunk);
    let chunk_len = inner.chunks[chunk].len();
    let bind_current = |st: &mut ChainState<Vec<T>>, elided: bool| -> ResolvedAccess {
        let current = st.current;
        st.slots[current].refs += 1;
        let alloc = st.slots[current].alloc;
        // SAFETY: pointer manufacture only; the chain lock is held and the
        // version cannot be reclaimed while the ticket below is live.
        let ptr = unsafe { (*st.slots[current].cell.get()).as_mut_ptr() };
        let mut access = Access::bound_to(
            inner.chunk_version_region(chunk, alloc),
            kind,
            canonical.clone(),
            ptr as *mut (),
            chunk_len,
        );
        if elided {
            access = access.mark_elided();
        }
        ResolvedAccess::bound(
            access,
            Box::new(ChunkTicket {
                inner: inner.clone(),
                chunk,
                alloc,
                pool_depth: cx.pool_depth(),
            }),
            None,
            None,
        )
    };
    let mut st = chains.chains[chunk].lock();
    if kind != AccessKind::Output || !cx.renaming_enabled() {
        return bind_current(&mut st, false);
    }
    // First-write rename elision at chunk granularity (see `Data::resolve`):
    // an unreferenced current chunk version is overwritten in place, marked
    // elided so the builder can undo it on the output-before-input corner.
    if cx.elision_enabled() && st.slots[st.current].refs == 0 {
        cx.pool().note_elision();
        return bind_current(&mut st, true);
    }
    // `output`: rename this chunk, falling back to serialising in place
    // under backpressure.
    match rename_chunk_version(inner, chunk, &mut st, kind, cx) {
        Some(resolved) => resolved,
        None => bind_current(&mut st, false),
    }
}

/// Resolve a whole-array access on a versioned partition: bind (for
/// `output`: rename) the current version of **every** chunk chain.
fn resolve_all_chunks<T: Send + 'static>(
    inner: &Arc<PartInner<T>>,
    kind: AccessKind,
    cx: &RenameCx<'_>,
) -> ResolvedAccess {
    let mut resolved = ResolvedAccess::empty();
    for chunk in 0..inner.chunks.len() {
        resolved.merge(resolve_chunk(inner, chunk, kind, cx));
    }
    resolved
}

/// A `Vec<T>` partitioned into disjoint chunks, each chunk being an
/// independent dependence region.
///
/// Chunk `i` covers elements `chunk_ranges()[i]`; chunk regions use byte
/// ranges derived from element indices so that a whole-array handle
/// ([`PartitionedData::whole`]) overlaps every chunk.
pub struct PartitionedData<T> {
    pub(crate) inner: Arc<PartInner<T>>,
}

impl<T> Clone for PartitionedData<T> {
    fn clone(&self) -> Self {
        PartitionedData {
            inner: self.inner.clone(),
        }
    }
}

fn chunk_ranges(len: usize, chunk_len: usize) -> Vec<std::ops::Range<usize>> {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let mut chunks = Vec::new();
    let mut start = 0;
    while start < len {
        let end = (start + chunk_len).min(len);
        chunks.push(start..end);
        start = end;
    }
    if chunks.is_empty() {
        chunks.push(0..0);
    }
    chunks
}

impl<T: Send + 'static> PartitionedData<T> {
    /// Partition `data` into chunks of at most `chunk_len` elements.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn new(data: Vec<T>, chunk_len: usize) -> Self {
        let len = data.len();
        let chunks = chunk_ranges(len, chunk_len);
        PartitionedData {
            inner: Arc::new(PartInner {
                alloc: AllocId::fresh(),
                chunks,
                elem_size: std::mem::size_of::<T>().max(1),
                len,
                storage: PartStorage::Plain(UnsafeCell::new(data)),
            }),
        }
    }

    /// Partition `data` into a **versioned** partition: every chunk owns its
    /// own version chain, so an `output` access to one chunk renames just
    /// that chunk (fresh versions start from `T::default()`); see
    /// [`crate::rename`]. Normally constructed through
    /// [`Runtime::versioned_partitioned`](crate::Runtime::versioned_partitioned).
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn versioned(data: Vec<T>, chunk_len: usize) -> Self
    where
        T: Default,
    {
        Self::versioned_with(data, chunk_len, |len| {
            (0..len).map(|_| T::default()).collect()
        })
    }

    /// Like [`PartitionedData::versioned`], but fresh chunk versions are
    /// produced by `make(chunk_len)` instead of `T::default()` fills.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn versioned_with(
        mut data: Vec<T>,
        chunk_len: usize,
        make: impl Fn(usize) -> Vec<T> + Send + Sync + 'static,
    ) -> Self {
        let len = data.len();
        let chunks = chunk_ranges(len, chunk_len);
        // Split the vector into one owned buffer per chunk, back to front so
        // each split_off detaches exactly one chunk.
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(chunks.len());
        for r in chunks.iter().rev() {
            parts.push(data.split_off(r.start));
        }
        parts.reverse();
        let chains = parts
            .into_iter()
            .map(|part| {
                Mutex::new(ChainState {
                    slots: vec![Slot {
                        alloc: AllocId::fresh(),
                        cell: Box::new(UnsafeCell::new(part)),
                        refs: 0,
                        reservation: None,
                    }],
                    free: Vec::new(),
                    current: 0,
                })
            })
            .collect();
        PartitionedData {
            inner: Arc::new(PartInner {
                alloc: AllocId::fresh(),
                chunks,
                elem_size: std::mem::size_of::<T>().max(1),
                len,
                storage: PartStorage::Versioned(PartChains {
                    make: Box::new(make),
                    chains,
                }),
            }),
        }
    }

    /// Whether this partition versions its chunks (renaming-capable).
    pub fn is_versioned(&self) -> bool {
        self.inner.is_versioned()
    }

    /// Number of live versions of chunk `i` (1 for plain partitions;
    /// diagnostics).
    pub fn live_chunk_versions(&self, i: usize) -> usize {
        match &self.inner.storage {
            PartStorage::Plain(_) => 1,
            PartStorage::Versioned(chains) => chains.chains[i].lock().slots.len(),
        }
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.inner.chunks.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the partitioned vector is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Element range of chunk `i`.
    pub fn chunk_range(&self, i: usize) -> std::ops::Range<usize> {
        self.inner.chunks[i].clone()
    }

    /// Handle naming chunk `i` in access clauses.
    pub fn chunk(&self, i: usize) -> Chunk<T> {
        assert!(i < self.num_chunks(), "chunk index out of range");
        Chunk {
            inner: self.inner.clone(),
            index: i,
        }
    }

    /// Handle naming the whole array in access clauses (conflicts with every
    /// chunk).
    pub fn whole(&self) -> Whole<T> {
        Whole {
            inner: self.inner.clone(),
        }
    }

    /// Iterate over all chunk handles.
    pub fn chunk_handles(&self) -> impl Iterator<Item = Chunk<T>> + '_ {
        (0..self.num_chunks()).map(move |i| self.chunk(i))
    }

    /// Recover the inner vector if this is the last handle. For a versioned
    /// partition this **reassembles** the array from every chunk's *current*
    /// version — the final value of the program, committed back chunk by
    /// chunk.
    pub fn try_into_vec(self) -> Result<Vec<T>, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => match inner.storage {
                PartStorage::Plain(cell) => Ok(cell.into_inner()),
                PartStorage::Versioned(chains) => {
                    let mut out = Vec::with_capacity(inner.len);
                    for chain in chains.chains {
                        let mut st = chain.into_inner();
                        let current = st.current;
                        out.extend(st.slots.swap_remove(current).cell.into_inner());
                    }
                    Ok(out)
                }
            },
            Err(arc) => Err(PartitionedData { inner: arc }),
        }
    }
}

impl<T: Send + 'static> Accessible for PartitionedData<T> {
    fn region(&self) -> Region {
        self.inner.whole_region()
    }

    fn sync_regions(&self) -> Vec<Region> {
        self.inner.whole_sync_regions()
    }

    fn resolve(&self, kind: AccessKind, cx: &RenameCx<'_>) -> ResolvedAccess {
        self.whole().resolve(kind, cx)
    }

    fn replay_key(&self) -> RegionId {
        self.inner.whole_region().id
    }
}

impl<T> std::fmt::Debug for PartitionedData<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PartitionedData(alloc {}, {} chunks{})",
            self.inner.alloc.raw(),
            self.inner.chunks.len(),
            if self.inner.is_versioned() {
                ", versioned"
            } else {
                ""
            }
        )
    }
}

/// Handle to one chunk of a [`PartitionedData`].
pub struct Chunk<T> {
    pub(crate) inner: Arc<PartInner<T>>,
    pub(crate) index: usize,
}

impl<T> Clone for Chunk<T> {
    fn clone(&self) -> Self {
        Chunk {
            inner: self.inner.clone(),
            index: self.index,
        }
    }
}

impl<T> Chunk<T> {
    /// Chunk index within the partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Element range covered by this chunk.
    pub fn elem_range(&self) -> std::ops::Range<usize> {
        self.inner.chunks[self.index].clone()
    }

    /// Number of elements in the chunk.
    pub fn len(&self) -> usize {
        let r = self.elem_range();
        r.end - r.start
    }

    /// Whether the chunk holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the owning partition versions its chunks.
    pub fn is_versioned(&self) -> bool {
        self.inner.is_versioned()
    }

    pub(crate) fn slice_ptr(&self) -> (*mut T, usize) {
        self.inner.plain_ptr(self.elem_range())
    }
}

impl<T: Send + 'static> Accessible for Chunk<T> {
    fn region(&self) -> Region {
        match &self.inner.storage {
            PartStorage::Plain(_) => self.inner.chunk_canonical_region(self.index),
            PartStorage::Versioned(chains) => {
                let st = chains.chains[self.index].lock();
                self.inner
                    .chunk_version_region(self.index, st.slots[st.current].alloc)
            }
        }
    }

    fn sync_regions(&self) -> Vec<Region> {
        self.inner.chunk_sync_regions(self.index)
    }

    fn resolve(&self, kind: AccessKind, cx: &RenameCx<'_>) -> ResolvedAccess {
        match &self.inner.storage {
            PartStorage::Plain(_) => ResolvedAccess::plain(Access::new(
                self.inner.chunk_canonical_region(self.index),
                kind,
            )),
            PartStorage::Versioned(_) => resolve_chunk(&self.inner, self.index, kind, cx),
        }
    }

    fn replay_key(&self) -> RegionId {
        self.inner.chunk_canonical_region(self.index).id
    }
}

impl<T> std::fmt::Debug for Chunk<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Chunk(alloc {}, #{} [{:?}])",
            self.inner.alloc.raw(),
            self.index,
            self.elem_range()
        )
    }
}

/// Handle to the whole array of a [`PartitionedData`].
pub struct Whole<T> {
    pub(crate) inner: Arc<PartInner<T>>,
}

impl<T> Clone for Whole<T> {
    fn clone(&self) -> Self {
        Whole {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Whole<T> {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Whether the owning partition versions its chunks.
    pub fn is_versioned(&self) -> bool {
        self.inner.is_versioned()
    }

    pub(crate) fn slice_ptr(&self) -> (*mut T, usize) {
        self.inner.plain_ptr(0..self.inner.len)
    }
}

impl<T: Send + 'static> Accessible for Whole<T> {
    fn region(&self) -> Region {
        self.inner.whole_region()
    }

    fn sync_regions(&self) -> Vec<Region> {
        self.inner.whole_sync_regions()
    }

    fn resolve(&self, kind: AccessKind, cx: &RenameCx<'_>) -> ResolvedAccess {
        match &self.inner.storage {
            PartStorage::Plain(_) => {
                ResolvedAccess::plain(Access::new(self.inner.whole_region(), kind))
            }
            PartStorage::Versioned(_) => resolve_all_chunks(&self.inner, kind, cx),
        }
    }

    fn replay_key(&self) -> RegionId {
        self.inner.whole_region().id
    }
}

impl<T> std::fmt::Debug for Whole<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Whole(alloc {})", self.inner.alloc.raw())
    }
}

/// Read guard over a slice (chunk or whole array).
pub struct SliceReadGuard<'a, T> {
    pub(crate) slice: &'a [T],
}

impl<T> std::ops::Deref for SliceReadGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.slice
    }
}

/// Write guard over a slice (chunk or whole array).
pub struct SliceWriteGuard<'a, T> {
    pub(crate) slice: &'a mut [T],
}

impl<T> std::ops::Deref for SliceWriteGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.slice
    }
}

impl<T> std::ops::DerefMut for SliceWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rename::RenamePool;
    use proptest::prelude::*;

    /// Run the deferred rename commits of a resolution, as
    /// `TaskBuilder::spawn` does.
    fn commit(r: &mut ResolvedAccess) {
        assert!(!r.commits.is_empty(), "resolution renamed");
        for c in r.commits.drain(..) {
            c.commit();
        }
    }

    /// Release every version binding of a resolution, as task completion
    /// does.
    fn release(mut r: ResolvedAccess) {
        for t in r.tickets.drain(..) {
            t.release();
        }
    }

    /// A context with elision *off*, so the long-standing rename tests keep
    /// exercising the allocate-a-fresh-version path; `cx_eliding` opts in.
    fn cx(pool: &Arc<RenamePool>, enabled: bool) -> RenameCx<'_> {
        RenameCx {
            enabled,
            elision: false,
            pool,
            pool_depth: 4,
            max_versions: 16,
            fault: None,
        }
    }

    fn cx_eliding(pool: &Arc<RenamePool>) -> RenameCx<'_> {
        RenameCx {
            elision: true,
            ..cx(pool, true)
        }
    }

    #[test]
    fn data_roundtrip() {
        let d = Data::new(41u64);
        assert_eq!(d.handle_count(), 1);
        let d2 = d.clone();
        assert_eq!(d.handle_count(), 2);
        assert!(d2.region().overlaps(&d.region()));
        drop(d2);
        assert_eq!(d.try_into_inner().unwrap(), 41);
    }

    #[test]
    fn data_try_into_inner_fails_while_shared() {
        let d = Data::new(1u8);
        let d2 = d.clone();
        let d = d.try_into_inner().unwrap_err();
        drop(d2);
        assert_eq!(d.try_into_inner().unwrap(), 1);
    }

    #[test]
    fn distinct_data_handles_never_overlap() {
        let a = Data::new([0u8; 16]);
        let b = Data::new([0u8; 16]);
        assert!(!a.region().overlaps(&b.region()));
    }

    #[test]
    fn zero_sized_data_still_has_nonempty_region() {
        let d = Data::new(());
        assert!(!d.region().is_empty());
        assert!(d.region().overlaps(&d.region()));
    }

    #[test]
    fn partition_chunk_layout() {
        let p = PartitionedData::new((0..10u32).collect::<Vec<_>>(), 4);
        assert_eq!(p.num_chunks(), 3);
        assert_eq!(p.len(), 10);
        assert_eq!(p.chunk_range(0), 0..4);
        assert_eq!(p.chunk_range(1), 4..8);
        assert_eq!(p.chunk_range(2), 8..10);
        assert_eq!(p.chunk(2).len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn partition_of_empty_vec() {
        let p = PartitionedData::new(Vec::<u8>::new(), 4);
        assert_eq!(p.num_chunks(), 1);
        assert!(p.is_empty());
        assert!(p.chunk(0).is_empty());
        assert_eq!(p.try_into_vec().unwrap(), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn partition_zero_chunk_len_panics() {
        let _ = PartitionedData::new(vec![1u8, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "chunk index out of range")]
    fn chunk_out_of_range_panics() {
        let p = PartitionedData::new(vec![1u8, 2, 3], 2);
        let _ = p.chunk(5);
    }

    #[test]
    fn chunk_regions_are_disjoint_and_within_whole() {
        let p = PartitionedData::new(vec![0f64; 100], 7);
        let whole = p.whole().region();
        for i in 0..p.num_chunks() {
            let ri = p.chunk(i).region();
            assert!(whole.contains(&ri), "whole must contain chunk {i}");
            assert!(whole.overlaps(&ri));
            for j in 0..p.num_chunks() {
                if i != j {
                    assert!(
                        !ri.overlaps(&p.chunk(j).region()),
                        "chunks {i} and {j} must not overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn whole_and_partitioned_data_share_region() {
        let p = PartitionedData::new(vec![0u8; 10], 3);
        assert_eq!(p.region(), p.whole().region());
    }

    #[test]
    fn debug_formats() {
        let d = Data::new(3u8);
        let p = PartitionedData::new(vec![1u8, 2, 3], 2);
        assert!(format!("{d:?}").starts_with("Data("));
        assert!(format!("{p:?}").contains("chunks"));
        assert!(format!("{:?}", p.chunk(0)).contains("Chunk"));
        assert!(format!("{:?}", p.whole()).contains("Whole"));
    }

    mod versioned {
        use super::*;

        #[test]
        fn plain_handles_are_not_versioned() {
            let d = Data::new(1u32);
            assert!(!d.is_versioned());
            assert_eq!(d.live_versions(), 1);
        }

        #[test]
        fn output_renames_to_a_fresh_region() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(0u64);
            let before = d.region();
            let mut resolved = d.resolve(AccessKind::Output, &cx(&pool, true));
            // The new version exists but is not current until the spawning
            // point commits it (abandoned builders never do).
            assert_eq!(d.region(), before, "uncommitted rename is invisible");
            commit(&mut resolved);
            let after = d.region();
            assert_ne!(before.id.alloc, after.id.alloc, "rename advanced the current version");
            assert_eq!(resolved.access().region, after, "output bound the fresh version");
            assert_eq!(resolved.access().root_alloc(), d.root_alloc());
            assert!(!before.overlaps(&after), "versions never conflict");
            assert_eq!(pool.renames(), 1);
            // The superseded version had no in-flight tasks bound to it, so
            // it was recycled at commit: only the fresh version is live.
            assert_eq!(d.live_versions(), 1);
        }

        #[test]
        fn uncommitted_rename_leaves_the_value_untouched() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(42u64);
            let mut r = d.resolve(AccessKind::Output, &cx(&pool, true));
            // Abandon: release the binding without committing (what
            // dropping an unspawned TaskBuilder does).
            r.commits.clear();
            release(r);
            assert_eq!(d.live_versions(), 1);
            assert_eq!(d.try_into_inner().unwrap(), 42, "value must survive");
        }

        #[test]
        fn reads_bind_the_current_version() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(7u64);
            let r = d.resolve(AccessKind::Input, &cx(&pool, true));
            assert_eq!(r.access().region, d.region());
            assert!(r.renamed.is_empty());
            assert_eq!(pool.renames(), 0);
        }

        #[test]
        fn ticket_release_recycles_superseded_versions() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(0u64);
            let cx = cx(&pool, true);
            // Reader pins version 0; writer renames to version 1.
            let reader = d.resolve(AccessKind::Input, &cx);
            let mut writer = d.resolve(AccessKind::Output, &cx);
            commit(&mut writer);
            assert_eq!(d.live_versions(), 2);
            // Reader done: version 0 is superseded and unreferenced -> recycled.
            release(reader);
            assert_eq!(d.live_versions(), 1);
            // Next rename reuses the pooled storage.
            let _w2 = d.resolve(AccessKind::Output, &cx);
            assert_eq!(pool.recycled(), 1);
            release(writer);
        }

        #[test]
        fn renaming_disabled_keeps_one_version() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(0u64);
            let cx = cx(&pool, false);
            let a = d.resolve(AccessKind::Output, &cx);
            let b = d.resolve(AccessKind::Output, &cx);
            assert_eq!(a.access().region, b.access().region, "no renaming: same version");
            assert_eq!(d.live_versions(), 1);
            assert_eq!(pool.renames(), 0);
        }

        #[test]
        fn version_count_bound_falls_back_to_serialising() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let cx = RenameCx {
                enabled: true,
                elision: false,
                pool: &pool,
                pool_depth: 0,
                max_versions: 3,
                fault: None,
            };
            let d = Data::versioned(0u64);
            // Hold every version in flight so none can be reclaimed.
            let mut held = Vec::new();
            for _ in 0..8 {
                held.push(d.resolve(AccessKind::Output, &cx));
            }
            // The canonical version stays current (nothing commits), so two
            // uncommitted versions fill the bound of 3.
            assert_eq!(d.live_versions(), 3, "live versions capped");
            assert_eq!(pool.renames(), 2);
            assert_eq!(pool.fallbacks(), 6, "the rest serialised");
            for r in held {
                release(r);
            }
            assert_eq!(d.live_versions(), 1, "superseded versions reclaimed");
        }

        #[test]
        fn exhausted_budget_falls_back_to_serialising() {
            let pool = Arc::new(RenamePool::new(0));
            let d = Data::versioned(0u64);
            let cx = cx(&pool, true);
            // size_of::<u64>() > 0-byte budget: no rename possible.
            let r = d.resolve(AccessKind::Output, &cx);
            assert!(r.renamed.is_empty());
            assert_eq!(r.access().region, d.region());
            assert_eq!(pool.fallbacks(), 1);
        }

        #[test]
        fn into_inner_returns_the_final_version() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(1u64);
            let cx = cx(&pool, true);
            let mut w = d.resolve(AccessKind::Output, &cx);
            commit(&mut w);
            // Write through the bound version as a task body would.
            let ptr = d.ptr_for_alloc(w.access().region.id.alloc).unwrap();
            // SAFETY: `w` holds the only binding of this live version.
            unsafe { *ptr = 42 };
            release(w);
            assert_eq!(d.try_into_inner().unwrap(), 42);
        }

        #[test]
        fn versioned_with_initialises_fresh_versions() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned_with(5u32, || 99);
            let cx = cx(&pool, true);
            let w = d.resolve(AccessKind::Output, &cx);
            let ptr = d.ptr_for_alloc(w.access().region.id.alloc).unwrap();
            // SAFETY: `w` holds the only binding of this live version.
            assert_eq!(unsafe { *ptr }, 99, "fresh version starts from make()");
        }

        #[test]
        fn unreferenced_output_elides_the_rename() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(5u64);
            let before = d.region();
            let w = d.resolve(AccessKind::Output, &cx_eliding(&pool));
            // Bound in place: same version, no rename, no commit needed.
            assert_eq!(w.access().region, before, "elided write binds the current version");
            assert!(w.renamed.is_empty());
            assert!(w.commits.is_empty());
            assert_eq!(pool.renames(), 0);
            assert_eq!(pool.elided(), 1);
            assert_eq!(pool.bytes_held(), 0, "elision allocates nothing");
            assert_eq!(d.live_versions(), 1);
            release(w);
        }

        #[test]
        fn in_flight_binding_blocks_elision() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(0u64);
            let cx = cx_eliding(&pool);
            let reader = d.resolve(AccessKind::Input, &cx);
            // The reader pins the current version: the write must rename.
            let mut w = d.resolve(AccessKind::Output, &cx);
            assert_eq!(w.renamed.len(), 1);
            assert_eq!(pool.renames(), 1);
            assert_eq!(pool.elided(), 0);
            commit(&mut w);
            release(reader);
            release(w);
            // Now the (fresh) current version is unreferenced again: elide.
            let w2 = d.resolve(AccessKind::Output, &cx);
            assert!(w2.renamed.is_empty());
            assert_eq!(pool.elided(), 1);
            release(w2);
        }

        #[test]
        fn elided_write_overwrites_in_place() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(3u64);
            let w = d.resolve(AccessKind::Output, &cx_eliding(&pool));
            let ptr = d.ptr_for_alloc(w.access().region.id.alloc).unwrap();
            // SAFETY: `w` holds the only binding of this live version.
            unsafe { *ptr = 9 };
            release(w);
            assert_eq!(d.try_into_inner().unwrap(), 9);
        }

        #[test]
        fn sync_regions_cover_all_live_versions() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(0u64);
            let cx = cx(&pool, true);
            let _r = d.resolve(AccessKind::Input, &cx);
            let _w = d.resolve(AccessKind::Output, &cx);
            assert_eq!(d.sync_regions().len(), 2);
            assert_eq!(Data::new(0u8).sync_regions().len(), 1);
        }
    }

    mod versioned_partition {
        use super::*;

        #[test]
        fn plain_partitions_are_not_versioned() {
            let p = PartitionedData::new(vec![0u8; 8], 4);
            assert!(!p.is_versioned());
            assert!(!p.chunk(0).is_versioned());
            assert!(!p.whole().is_versioned());
            assert_eq!(p.live_chunk_versions(1), 1);
        }

        #[test]
        fn chunk_output_renames_only_that_chunk() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let p = PartitionedData::versioned((0..8u32).collect::<Vec<_>>(), 4);
            assert!(p.is_versioned());
            let before_other = p.chunk(1).region();
            let mut w = p.chunk(0).resolve(AccessKind::Output, &cx(&pool, true));
            commit(&mut w);
            assert_eq!(
                p.chunk(1).region(),
                before_other,
                "untouched chunk keeps its version"
            );
            assert_eq!(w.accesses.len(), 1);
            assert_eq!(w.access().region, p.chunk(0).region(), "fresh version is current");
            assert_eq!(w.renamed.len(), 1);
            assert_eq!(w.renamed[0].chunk, Some(0), "rename recorded per chunk");
            assert_eq!(pool.renames(), 1);
            assert_eq!(pool.chunk_renames(), 1);
            release(w);
        }

        #[test]
        fn renamed_chunks_conflict_with_nothing() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let p = PartitionedData::versioned(vec![0u64; 6], 3);
            let cx = cx(&pool, true);
            let reader = p.chunk(0).resolve(AccessKind::Input, &cx);
            let mut writer = p.chunk(0).resolve(AccessKind::Output, &cx);
            assert!(
                !writer.access().region.overlaps(&reader.access().region),
                "renamed chunk version must not conflict with the pinned one"
            );
            commit(&mut writer);
            assert_eq!(p.live_chunk_versions(0), 2, "reader still pins version 0");
            release(reader);
            assert_eq!(p.live_chunk_versions(0), 1, "superseded version reclaimed");
            // The next rename of this chunk reuses the pooled storage.
            let w2 = p.chunk(0).resolve(AccessKind::Output, &cx);
            assert_eq!(pool.recycled(), 1);
            release(w2);
            release(writer);
        }

        #[test]
        fn whole_access_binds_every_chunk_chain() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let p = PartitionedData::versioned(vec![0u8; 10], 4);
            let cx = cx(&pool, true);
            let r = p.whole().resolve(AccessKind::Input, &cx);
            assert_eq!(r.accesses.len(), 3, "one binding per chunk");
            assert!(r.renamed.is_empty());
            let mut w = p.whole().resolve(AccessKind::Output, &cx);
            assert_eq!(w.accesses.len(), 3);
            assert_eq!(w.renamed.len(), 3, "whole output renames every chunk");
            commit(&mut w);
            release(w);
            release(r);
        }

        #[test]
        fn reservations_cover_the_chunk_payload() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let p = PartitionedData::versioned(vec![0u64; 100], 25);
            let w = p.chunk(0).resolve(AccessKind::Output, &cx(&pool, true));
            assert_eq!(
                pool.bytes_held(),
                25 * std::mem::size_of::<u64>(),
                "deep per-chunk payload accounted, not size_of::<Vec>"
            );
            release(w);
        }

        #[test]
        fn exhausted_budget_serialises_the_chunk() {
            // Budget fits one extra 4-element u64 chunk but not two.
            let pool = Arc::new(RenamePool::new(40));
            let p = PartitionedData::versioned(vec![0u64; 8], 4);
            let cx = cx(&pool, true);
            let a = p.chunk(0).resolve(AccessKind::Output, &cx);
            assert_eq!(pool.renames(), 1);
            let b = p.chunk(1).resolve(AccessKind::Output, &cx);
            assert!(b.renamed.is_empty(), "second chunk fell back");
            assert_eq!(pool.fallbacks(), 1);
            assert_eq!(b.access().region, p.chunk(1).region());
            release(a);
            release(b);
        }

        #[test]
        fn try_into_vec_reassembles_current_versions() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let p = PartitionedData::versioned(vec![1u32; 6], 2);
            let cx = cx(&pool, true);
            // Rename chunk 1 and write through the fresh version.
            let mut w = p.chunk(1).resolve(AccessKind::Output, &cx);
            let (ptr, len) = w.access().bound_ptr().unwrap();
            assert_eq!(len, 2);
            // SAFETY: `w` holds the only binding of this fresh chunk version,
            // and `(ptr, len)` is its full bound storage.
            unsafe {
                let slice = std::slice::from_raw_parts_mut(ptr as *mut u32, len);
                slice.copy_from_slice(&[7, 8]);
            }
            commit(&mut w);
            release(w);
            assert_eq!(p.try_into_vec().unwrap(), vec![1, 1, 7, 8, 1, 1]);
        }

        #[test]
        fn uncommitted_chunk_rename_leaves_the_array_untouched() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let p = PartitionedData::versioned(vec![9u8; 4], 2);
            let mut r = p.chunk(0).resolve(AccessKind::Output, &cx(&pool, true));
            r.commits.clear(); // abandon without committing
            release(r);
            assert_eq!(p.live_chunk_versions(0), 1);
            assert_eq!(p.try_into_vec().unwrap(), vec![9; 4]);
        }

        #[test]
        fn sync_regions_cover_all_chunk_versions() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let p = PartitionedData::versioned(vec![0u16; 9], 3);
            let cx = cx(&pool, true);
            assert_eq!(p.whole().sync_regions().len(), 3, "one region per chunk");
            let r = p.chunk(0).resolve(AccessKind::Input, &cx);
            let mut w = p.chunk(0).resolve(AccessKind::Output, &cx);
            commit(&mut w);
            assert_eq!(p.chunk(0).sync_regions().len(), 2, "pinned + current");
            assert_eq!(p.whole().sync_regions().len(), 4);
            release(r);
            release(w);
            assert_eq!(p.whole().sync_regions().len(), 3);
        }

        #[test]
        fn versioned_with_controls_fresh_chunk_contents() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let p = PartitionedData::versioned_with(vec![0u8; 4], 2, |len| vec![0xAB; len]);
            let w = p.chunk(0).resolve(AccessKind::Output, &cx(&pool, true));
            let (ptr, len) = w.access().bound_ptr().unwrap();
            // SAFETY: `(ptr, len)` is the bound storage of the version `w`
            // pins; nothing else writes it while `w` is held.
            let fresh = unsafe { std::slice::from_raw_parts(ptr as *const u8, len) };
            assert_eq!(fresh, &[0xAB, 0xAB], "fresh version starts from make()");
            release(w);
        }

        #[test]
        fn unreferenced_chunk_output_elides_per_chunk() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let p = PartitionedData::versioned(vec![1u32; 6], 3);
            let cx = cx_eliding(&pool);
            // Chunk 1 is pinned by a reader; chunk 0 is free.
            let r1 = p.chunk(1).resolve(AccessKind::Input, &cx);
            let w0 = p.chunk(0).resolve(AccessKind::Output, &cx);
            let mut w1 = p.chunk(1).resolve(AccessKind::Output, &cx);
            assert!(w0.renamed.is_empty(), "free chunk elides");
            assert_eq!(w1.renamed.len(), 1, "pinned chunk renames");
            assert_eq!(pool.elided(), 1);
            assert_eq!(pool.chunk_renames(), 1);
            assert_eq!(p.live_chunk_versions(0), 1);
            commit(&mut w1);
            // Write the elided chunk in place and check commit-back.
            let (ptr, len) = w0.access().bound_ptr().unwrap();
            // SAFETY: `w0` holds the only binding of the elided chunk, and
            // `(ptr, len)` is its full bound storage.
            unsafe {
                std::slice::from_raw_parts_mut(ptr as *mut u32, len).copy_from_slice(&[7, 8, 9])
            };
            release(w0);
            release(w1);
            release(r1);
            let out = p.try_into_vec().unwrap();
            assert_eq!(&out[..3], &[7, 8, 9]);
        }

        #[test]
        fn empty_versioned_partition_roundtrips() {
            let p = PartitionedData::versioned(Vec::<u8>::new(), 4);
            assert_eq!(p.num_chunks(), 1);
            assert!(p.is_versioned());
            assert_eq!(p.try_into_vec().unwrap(), Vec::<u8>::new());
        }
    }

    proptest! {
        /// Chunk ranges tile the vector exactly: disjoint, ordered, covering.
        #[test]
        fn prop_chunks_tile_vector(len in 0usize..500, chunk_len in 1usize..64) {
            let p = PartitionedData::new(vec![0u8; len], chunk_len);
            let mut covered = 0usize;
            for i in 0..p.num_chunks() {
                let r = p.chunk_range(i);
                prop_assert_eq!(r.start, covered);
                prop_assert!(r.end >= r.start);
                covered = r.end;
                if len > 0 {
                    prop_assert!(r.end - r.start <= chunk_len);
                }
            }
            prop_assert_eq!(covered, len);
        }

        /// Chunk byte regions never overlap each other.
        #[test]
        fn prop_chunk_regions_disjoint(len in 1usize..300, chunk_len in 1usize..50) {
            let p = PartitionedData::new(vec![0u32; len], chunk_len);
            for i in 0..p.num_chunks() {
                for j in (i + 1)..p.num_chunks() {
                    prop_assert!(!p.chunk(i).region().overlaps(&p.chunk(j).region()));
                }
            }
        }
    }
}

//! Data handles: the objects named in `input` / `output` / `inout` clauses.
//!
//! OmpSs clauses name C pointers; here, tasks declare accesses on *handles*:
//!
//! * [`Data<T>`] — a single shared object (one region covering the whole
//!   allocation).
//! * [`PartitionedData<T>`] — a `Vec<T>` split into fixed, disjoint chunks;
//!   every chunk is its own region so that one task per chunk (scanline,
//!   block, macroblock row, …) runs in parallel, while whole-array accesses
//!   still conflict with every chunk.
//!
//! The handles themselves never hand out references. Inside a task body,
//! [`TaskContext::read`](crate::runtime::TaskContext::read) /
//! [`TaskContext::write`](crate::runtime::TaskContext::write) (and the chunk
//! equivalents) validate the requested access against the task's declared
//! access list and only then produce a guard. Conflicting declared accesses
//! are serialised by the dependence graph, which is what makes handing out
//! `&mut` sound.

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::region::{AllocId, Region};

/// Trait of everything that can appear in an access clause.
pub trait Accessible {
    /// The memory region this handle stands for.
    fn region(&self) -> Region;
}

// ---------------------------------------------------------------------------
// Data<T>
// ---------------------------------------------------------------------------

pub(crate) struct DataInner<T: ?Sized> {
    pub(crate) region: Region,
    pub(crate) cell: UnsafeCell<T>,
}

// Safety: access to `cell` is mediated by the runtime: a mutable guard is
// only produced for a task that declared a write access, and tasks with
// conflicting declared accesses are ordered by the dependence graph, so no
// two threads ever hold conflicting references simultaneously.
unsafe impl<T: Send + ?Sized> Send for DataInner<T> {}
unsafe impl<T: Send + ?Sized> Sync for DataInner<T> {}

/// A handle to a single shared object managed by the runtime.
///
/// Cloning the handle is cheap (it is reference counted); all clones refer to
/// the same object and the same dependence region.
pub struct Data<T> {
    pub(crate) inner: Arc<DataInner<T>>,
}

impl<T> Clone for Data<T> {
    fn clone(&self) -> Self {
        Data {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> Data<T> {
    /// Wrap `value` in a new handle with its own fresh region.
    ///
    /// Normally constructed through [`Runtime::data`](crate::Runtime::data);
    /// exposed for tests and for building handles before a runtime exists.
    pub fn new(value: T) -> Self {
        let alloc = AllocId::fresh();
        let size = std::mem::size_of::<T>().max(1);
        Data {
            inner: Arc::new(DataInner {
                region: Region::new(alloc, 0, 0..size),
                cell: UnsafeCell::new(value),
            }),
        }
    }

    /// Recover the inner value if this is the last handle.
    pub fn try_into_inner(self) -> Result<T, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.cell.into_inner()),
            Err(arc) => Err(Data { inner: arc }),
        }
    }

    /// Number of live handles to this object (diagnostics).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    pub(crate) fn ptr(&self) -> *mut T {
        self.inner.cell.get()
    }
}

impl<T> Accessible for Data<T> {
    fn region(&self) -> Region {
        self.inner.region.clone()
    }
}

impl<T> std::fmt::Debug for Data<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Data({})", self.inner.region.id)
    }
}

/// Shared read guard produced by [`TaskContext::read`](crate::runtime::TaskContext::read).
pub struct ReadGuard<'a, T> {
    pub(crate) value: &'a T,
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

/// Exclusive write guard produced by [`TaskContext::write`](crate::runtime::TaskContext::write).
pub struct WriteGuard<'a, T> {
    pub(crate) value: &'a mut T,
}

impl<T> std::ops::Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value
    }
}

// ---------------------------------------------------------------------------
// PartitionedData<T>
// ---------------------------------------------------------------------------

pub(crate) struct PartInner<T> {
    pub(crate) alloc: AllocId,
    pub(crate) cell: UnsafeCell<Vec<T>>,
    /// Element ranges of each chunk (disjoint, covering `0..len`).
    pub(crate) chunks: Vec<std::ops::Range<usize>>,
    pub(crate) elem_size: usize,
    pub(crate) len: usize,
}

unsafe impl<T: Send> Send for PartInner<T> {}
unsafe impl<T: Send> Sync for PartInner<T> {}

/// A `Vec<T>` partitioned into disjoint chunks, each chunk being an
/// independent dependence region.
///
/// Chunk `i` covers elements `chunk_ranges()[i]`; chunk regions use byte
/// ranges derived from element indices so that a whole-array handle
/// ([`PartitionedData::whole`]) overlaps every chunk.
pub struct PartitionedData<T> {
    pub(crate) inner: Arc<PartInner<T>>,
}

impl<T> Clone for PartitionedData<T> {
    fn clone(&self) -> Self {
        PartitionedData {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> PartitionedData<T> {
    /// Partition `data` into chunks of at most `chunk_len` elements.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn new(data: Vec<T>, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let len = data.len();
        let elem_size = std::mem::size_of::<T>().max(1);
        let mut chunks = Vec::new();
        let mut start = 0;
        while start < len {
            let end = (start + chunk_len).min(len);
            chunks.push(start..end);
            start = end;
        }
        if chunks.is_empty() {
            chunks.push(0..0);
        }
        PartitionedData {
            inner: Arc::new(PartInner {
                alloc: AllocId::fresh(),
                cell: UnsafeCell::new(data),
                chunks,
                elem_size,
                len,
            }),
        }
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.inner.chunks.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the partitioned vector is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Element range of chunk `i`.
    pub fn chunk_range(&self, i: usize) -> std::ops::Range<usize> {
        self.inner.chunks[i].clone()
    }

    /// Handle naming chunk `i` in access clauses.
    pub fn chunk(&self, i: usize) -> Chunk<T> {
        assert!(i < self.num_chunks(), "chunk index out of range");
        Chunk {
            inner: self.inner.clone(),
            index: i,
        }
    }

    /// Handle naming the whole array in access clauses (conflicts with every
    /// chunk).
    pub fn whole(&self) -> Whole<T> {
        Whole {
            inner: self.inner.clone(),
        }
    }

    /// Iterate over all chunk handles.
    pub fn chunk_handles(&self) -> impl Iterator<Item = Chunk<T>> + '_ {
        (0..self.num_chunks()).map(move |i| self.chunk(i))
    }

    /// Recover the inner vector if this is the last handle.
    pub fn try_into_vec(self) -> Result<Vec<T>, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.cell.into_inner()),
            Err(arc) => Err(PartitionedData { inner: arc }),
        }
    }
}

impl<T> Accessible for PartitionedData<T> {
    fn region(&self) -> Region {
        Region::new(
            self.inner.alloc,
            0,
            0..self.inner.len.max(1) * self.inner.elem_size,
        )
    }
}

impl<T> std::fmt::Debug for PartitionedData<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PartitionedData(alloc {}, {} chunks)",
            self.inner.alloc.raw(),
            self.inner.chunks.len()
        )
    }
}

/// Handle to one chunk of a [`PartitionedData`].
pub struct Chunk<T> {
    pub(crate) inner: Arc<PartInner<T>>,
    pub(crate) index: usize,
}

impl<T> Clone for Chunk<T> {
    fn clone(&self) -> Self {
        Chunk {
            inner: self.inner.clone(),
            index: self.index,
        }
    }
}

impl<T> Chunk<T> {
    /// Chunk index within the partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Element range covered by this chunk.
    pub fn elem_range(&self) -> std::ops::Range<usize> {
        self.inner.chunks[self.index].clone()
    }

    /// Number of elements in the chunk.
    pub fn len(&self) -> usize {
        let r = self.elem_range();
        r.end - r.start
    }

    /// Whether the chunk holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn slice_ptr(&self) -> (*mut T, usize) {
        let range = self.elem_range();
        // Safety: we only manufacture the pointer here; dereferencing is
        // gated by the runtime (see module docs).
        let vec = self.inner.cell.get();
        let base = unsafe { (*vec).as_mut_ptr() };
        (unsafe { base.add(range.start) }, range.end - range.start)
    }
}

impl<T> Accessible for Chunk<T> {
    fn region(&self) -> Region {
        let r = self.elem_range();
        Region::new(
            self.inner.alloc,
            self.index as u32 + 1,
            r.start * self.inner.elem_size..r.end * self.inner.elem_size,
        )
    }
}

impl<T> std::fmt::Debug for Chunk<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Chunk(alloc {}, #{} [{:?}])",
            self.inner.alloc.raw(),
            self.index,
            self.elem_range()
        )
    }
}

/// Handle to the whole array of a [`PartitionedData`].
pub struct Whole<T> {
    pub(crate) inner: Arc<PartInner<T>>,
}

impl<T> Clone for Whole<T> {
    fn clone(&self) -> Self {
        Whole {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Whole<T> {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    pub(crate) fn slice_ptr(&self) -> (*mut T, usize) {
        let vec = self.inner.cell.get();
        let base = unsafe { (*vec).as_mut_ptr() };
        (base, self.inner.len)
    }
}

impl<T> Accessible for Whole<T> {
    fn region(&self) -> Region {
        Region::new(
            self.inner.alloc,
            0,
            0..self.inner.len.max(1) * self.inner.elem_size,
        )
    }
}

impl<T> std::fmt::Debug for Whole<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Whole(alloc {})", self.inner.alloc.raw())
    }
}

/// Read guard over a slice (chunk or whole array).
pub struct SliceReadGuard<'a, T> {
    pub(crate) slice: &'a [T],
}

impl<T> std::ops::Deref for SliceReadGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.slice
    }
}

/// Write guard over a slice (chunk or whole array).
pub struct SliceWriteGuard<'a, T> {
    pub(crate) slice: &'a mut [T],
}

impl<T> std::ops::Deref for SliceWriteGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.slice
    }
}

impl<T> std::ops::DerefMut for SliceWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn data_roundtrip() {
        let d = Data::new(41u64);
        assert_eq!(d.handle_count(), 1);
        let d2 = d.clone();
        assert_eq!(d.handle_count(), 2);
        assert!(d2.region().overlaps(&d.region()));
        drop(d2);
        assert_eq!(d.try_into_inner().unwrap(), 41);
    }

    #[test]
    fn data_try_into_inner_fails_while_shared() {
        let d = Data::new(1u8);
        let d2 = d.clone();
        let d = d.try_into_inner().unwrap_err();
        drop(d2);
        assert_eq!(d.try_into_inner().unwrap(), 1);
    }

    #[test]
    fn distinct_data_handles_never_overlap() {
        let a = Data::new([0u8; 16]);
        let b = Data::new([0u8; 16]);
        assert!(!a.region().overlaps(&b.region()));
    }

    #[test]
    fn zero_sized_data_still_has_nonempty_region() {
        let d = Data::new(());
        assert!(!d.region().is_empty());
        assert!(d.region().overlaps(&d.region()));
    }

    #[test]
    fn partition_chunk_layout() {
        let p = PartitionedData::new((0..10u32).collect::<Vec<_>>(), 4);
        assert_eq!(p.num_chunks(), 3);
        assert_eq!(p.len(), 10);
        assert_eq!(p.chunk_range(0), 0..4);
        assert_eq!(p.chunk_range(1), 4..8);
        assert_eq!(p.chunk_range(2), 8..10);
        assert_eq!(p.chunk(2).len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn partition_of_empty_vec() {
        let p = PartitionedData::new(Vec::<u8>::new(), 4);
        assert_eq!(p.num_chunks(), 1);
        assert!(p.is_empty());
        assert!(p.chunk(0).is_empty());
        assert_eq!(p.try_into_vec().unwrap(), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn partition_zero_chunk_len_panics() {
        let _ = PartitionedData::new(vec![1u8, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "chunk index out of range")]
    fn chunk_out_of_range_panics() {
        let p = PartitionedData::new(vec![1u8, 2, 3], 2);
        let _ = p.chunk(5);
    }

    #[test]
    fn chunk_regions_are_disjoint_and_within_whole() {
        let p = PartitionedData::new(vec![0f64; 100], 7);
        let whole = p.whole().region();
        for i in 0..p.num_chunks() {
            let ri = p.chunk(i).region();
            assert!(whole.contains(&ri), "whole must contain chunk {i}");
            assert!(whole.overlaps(&ri));
            for j in 0..p.num_chunks() {
                if i != j {
                    assert!(
                        !ri.overlaps(&p.chunk(j).region()),
                        "chunks {i} and {j} must not overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn whole_and_partitioned_data_share_region() {
        let p = PartitionedData::new(vec![0u8; 10], 3);
        assert_eq!(p.region(), p.whole().region());
    }

    #[test]
    fn debug_formats() {
        let d = Data::new(3u8);
        let p = PartitionedData::new(vec![1u8, 2, 3], 2);
        assert!(format!("{d:?}").starts_with("Data("));
        assert!(format!("{p:?}").contains("chunks"));
        assert!(format!("{:?}", p.chunk(0)).contains("Chunk"));
        assert!(format!("{:?}", p.whole()).contains("Whole"));
    }

    proptest! {
        /// Chunk ranges tile the vector exactly: disjoint, ordered, covering.
        #[test]
        fn prop_chunks_tile_vector(len in 0usize..500, chunk_len in 1usize..64) {
            let p = PartitionedData::new(vec![0u8; len], chunk_len);
            let mut covered = 0usize;
            for i in 0..p.num_chunks() {
                let r = p.chunk_range(i);
                prop_assert_eq!(r.start, covered);
                prop_assert!(r.end >= r.start);
                covered = r.end;
                if len > 0 {
                    prop_assert!(r.end - r.start <= chunk_len);
                }
            }
            prop_assert_eq!(covered, len);
        }

        /// Chunk byte regions never overlap each other.
        #[test]
        fn prop_chunk_regions_disjoint(len in 1usize..300, chunk_len in 1usize..50) {
            let p = PartitionedData::new(vec![0u32; len], chunk_len);
            for i in 0..p.num_chunks() {
                for j in (i + 1)..p.num_chunks() {
                    prop_assert!(!p.chunk(i).region().overlaps(&p.chunk(j).region()));
                }
            }
        }
    }
}

//! Data handles: the objects named in `input` / `output` / `inout` clauses.
//!
//! OmpSs clauses name C pointers; here, tasks declare accesses on *handles*:
//!
//! * [`Data<T>`] — a single shared object (one region covering the whole
//!   allocation).
//! * [`PartitionedData<T>`] — a `Vec<T>` split into fixed, disjoint chunks;
//!   every chunk is its own region so that one task per chunk (scanline,
//!   block, macroblock row, …) runs in parallel, while whole-array accesses
//!   still conflict with every chunk.
//!
//! The handles themselves never hand out references. Inside a task body,
//! [`TaskContext::read`](crate::runtime::TaskContext::read) /
//! [`TaskContext::write`](crate::runtime::TaskContext::write) (and the chunk
//! equivalents) validate the requested access against the task's declared
//! access list and only then produce a guard. Conflicting declared accesses
//! are serialised by the dependence graph, which is what makes handing out
//! `&mut` sound.
//!
//! A [`Data<T>`] handle can additionally be **versioned**
//! ([`Data::versioned`] / [`Runtime::versioned_data`]): it is then backed by
//! a chain of storage versions, and an `output` access allocates a fresh
//! version instead of inheriting WAR/WAW dependences — the automatic
//! renaming of [`crate::rename`].
//!
//! [`Runtime::versioned_data`]: crate::Runtime::versioned_data

use std::cell::UnsafeCell;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::access::{Access, AccessKind};
use crate::region::{AllocId, Region};
use crate::rename::{
    RenameCommit, RenameCx, RenameEvent, Reservation, ResolvedAccess, VersionTicket,
};

/// Trait of everything that can appear in an access clause.
pub trait Accessible {
    /// The memory region this handle stands for. For a versioned handle this
    /// is the region of the *current* version.
    fn region(&self) -> Region;

    /// Every region a synchronisation on this handle must cover. Plain
    /// handles have exactly one; a versioned handle reports the region of
    /// every version still referenced by in-flight tasks, so that
    /// `taskwait_on` waits for tasks bound to superseded versions too.
    fn sync_regions(&self) -> Vec<Region> {
        vec![self.region()]
    }

    /// Resolve a declared access to a concrete region (and, for versioned
    /// handles, a concrete data version) at task-insertion time. The default
    /// implementation performs no renaming.
    fn resolve(&self, kind: AccessKind, cx: &RenameCx<'_>) -> ResolvedAccess {
        let _ = cx;
        ResolvedAccess::plain(Access::new(self.region(), kind))
    }
}

// ---------------------------------------------------------------------------
// Data<T>
// ---------------------------------------------------------------------------

pub(crate) struct DataInner<T> {
    /// Canonical region: its allocation id is the stable identity ("root")
    /// of the handle, and — for plain storage — the region used in clauses.
    pub(crate) region: Region,
    storage: Storage<T>,
}

enum Storage<T> {
    /// A single cell; accesses always resolve to the canonical region.
    Plain(UnsafeCell<T>),
    /// A chain of versions; `output` accesses may rename (see
    /// [`crate::rename`]).
    Versioned(Chain<T>),
}

struct Chain<T> {
    /// Produces the value a freshly allocated version starts from.
    make: Box<dyn Fn() -> T + Send + Sync>,
    state: Mutex<ChainState<T>>,
}

struct ChainState<T> {
    /// Live versions. Slot cells are boxed so their addresses survive the
    /// vector reallocating.
    slots: Vec<Slot<T>>,
    /// Recycled storage (bounded by the runtime's rename pool depth).
    free: Vec<FreeSlot<T>>,
    /// Index into `slots` of the current (program-order latest) version.
    current: usize,
}

struct Slot<T> {
    alloc: AllocId,
    cell: Box<UnsafeCell<T>>,
    /// In-flight tasks bound to this version.
    refs: usize,
    /// Budget share of this version; `None` for the canonical first slot
    /// (which exists whether or not renaming ever happens).
    reservation: Option<Reservation>,
}

struct FreeSlot<T> {
    cell: Box<UnsafeCell<T>>,
    reservation: Option<Reservation>,
}

impl<T> ChainState<T> {
    fn slot_index(&self, alloc: AllocId) -> Option<usize> {
        self.slots.iter().position(|s| s.alloc == alloc)
    }

    /// Recycle slot `idx` if it is superseded and unreferenced. The storage
    /// goes back to the free pool when there is room, otherwise it is
    /// dropped (returning its bytes to the rename budget).
    fn reclaim(&mut self, idx: usize, pool_depth: usize) {
        if idx == self.current || self.slots[idx].refs != 0 {
            return;
        }
        let slot = self.slots.swap_remove(idx);
        if self.current == self.slots.len() {
            // `current` pointed at the slot that was swapped into `idx`.
            self.current = idx;
        }
        if self.free.len() < pool_depth {
            self.free.push(FreeSlot {
                cell: slot.cell,
                reservation: slot.reservation,
            });
        }
    }
}

// Safety: access to the cells is mediated by the runtime: a mutable guard is
// only produced for a task that declared a write access, tasks with
// conflicting declared accesses on the same version are ordered by the
// dependence graph, and distinct versions are distinct storage. All other
// chain state is behind a mutex.
unsafe impl<T: Send> Send for DataInner<T> {}
unsafe impl<T: Send> Sync for DataInner<T> {}

/// Release hook for one (task, version) binding of a versioned handle;
/// doubles as the commit hook for renames (same slot identity).
struct SlotTicket<T> {
    inner: Arc<DataInner<T>>,
    alloc: AllocId,
    pool_depth: usize,
}

impl<T> Clone for SlotTicket<T> {
    fn clone(&self) -> Self {
        SlotTicket {
            inner: self.inner.clone(),
            alloc: self.alloc,
            pool_depth: self.pool_depth,
        }
    }
}

impl<T: Send> VersionTicket for SlotTicket<T> {
    fn release(&self) {
        if let Storage::Versioned(chain) = &self.inner.storage {
            let mut st = chain.state.lock();
            if let Some(idx) = st.slot_index(self.alloc) {
                debug_assert!(st.slots[idx].refs > 0, "ticket released twice");
                st.slots[idx].refs -= 1;
                st.reclaim(idx, self.pool_depth);
            }
        }
    }
}

impl<T: Send> RenameCommit for SlotTicket<T> {
    fn commit(&self) {
        if let Storage::Versioned(chain) = &self.inner.storage {
            let mut st = chain.state.lock();
            if let Some(idx) = st.slot_index(self.alloc) {
                if idx != st.current {
                    let superseded = st.current;
                    st.current = idx;
                    st.reclaim(superseded, self.pool_depth);
                }
            }
        }
    }
}

/// A handle to a single shared object managed by the runtime.
///
/// Cloning the handle is cheap (it is reference counted); all clones refer to
/// the same object and the same dependence region.
pub struct Data<T> {
    pub(crate) inner: Arc<DataInner<T>>,
}

impl<T> Clone for Data<T> {
    fn clone(&self) -> Self {
        Data {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> Data<T> {
    /// Wrap `value` in a new handle with its own fresh region.
    ///
    /// Normally constructed through [`Runtime::data`](crate::Runtime::data);
    /// exposed for tests and for building handles before a runtime exists.
    pub fn new(value: T) -> Self {
        let alloc = AllocId::fresh();
        let size = std::mem::size_of::<T>().max(1);
        Data {
            inner: Arc::new(DataInner {
                region: Region::new(alloc, 0, 0..size),
                storage: Storage::Plain(UnsafeCell::new(value)),
            }),
        }
    }

    /// Wrap `value` in a *versioned* handle: `output` accesses rename to a
    /// fresh version (initialised with `T::default()`) instead of inheriting
    /// WAR/WAW dependences. See [`crate::rename`] for the full model.
    ///
    /// Normally constructed through
    /// [`Runtime::versioned_data`](crate::Runtime::versioned_data).
    pub fn versioned(value: T) -> Self
    where
        T: Default,
    {
        Self::versioned_with(value, T::default)
    }

    /// Like [`Data::versioned`], but fresh versions are initialised with
    /// `make()` instead of `T::default()`.
    pub fn versioned_with(value: T, make: impl Fn() -> T + Send + Sync + 'static) -> Self {
        let alloc = AllocId::fresh();
        let size = std::mem::size_of::<T>().max(1);
        Data {
            inner: Arc::new(DataInner {
                region: Region::new(alloc, 0, 0..size),
                storage: Storage::Versioned(Chain {
                    make: Box::new(make),
                    state: Mutex::new(ChainState {
                        slots: vec![Slot {
                            alloc,
                            cell: Box::new(UnsafeCell::new(value)),
                            refs: 0,
                            reservation: None,
                        }],
                        free: Vec::new(),
                        current: 0,
                    }),
                }),
            }),
        }
    }

    /// Whether this handle carries a version chain (renaming-capable).
    pub fn is_versioned(&self) -> bool {
        matches!(self.inner.storage, Storage::Versioned(_))
    }

    /// Number of live versions (1 for plain handles; diagnostics).
    pub fn live_versions(&self) -> usize {
        match &self.inner.storage {
            Storage::Plain(_) => 1,
            Storage::Versioned(chain) => chain.state.lock().slots.len(),
        }
    }

    /// Recover the inner value if this is the last handle. For a versioned
    /// handle this is the value of the **current** version — the final
    /// version of the program, "committed back" once all tasks finished.
    pub fn try_into_inner(self) -> Result<T, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => match inner.storage {
                Storage::Plain(cell) => Ok(cell.into_inner()),
                Storage::Versioned(chain) => {
                    let mut st = chain.state.into_inner();
                    let current = st.current;
                    Ok(st.slots.swap_remove(current).cell.into_inner())
                }
            },
            Err(arc) => Err(Data { inner: arc }),
        }
    }

    /// Number of live handles to this object (diagnostics).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Stable identity of the handle across versions.
    pub(crate) fn root_alloc(&self) -> AllocId {
        self.inner.region.id.alloc
    }

    /// Pointer to the storage of the version with allocation id `alloc`.
    /// Returns `None` when no live version has that id.
    pub(crate) fn ptr_for_alloc(&self, alloc: AllocId) -> Option<*mut T> {
        match &self.inner.storage {
            Storage::Plain(cell) => (alloc == self.inner.region.id.alloc).then(|| cell.get()),
            Storage::Versioned(chain) => {
                let st = chain.state.lock();
                st.slot_index(alloc).map(|i| st.slots[i].cell.get())
            }
        }
    }

    fn version_region(&self, alloc: AllocId) -> Region {
        Region::new(alloc, 0, self.inner.region.bytes.clone())
    }

    /// Bind the current version: bump its refcount and build the access.
    fn bind_current(
        &self,
        kind: AccessKind,
        cx: &RenameCx<'_>,
        st: &mut ChainState<T>,
    ) -> ResolvedAccess {
        let current = st.current;
        st.slots[current].refs += 1;
        let alloc = st.slots[current].alloc;
        ResolvedAccess::bound(
            Access::with_root(self.version_region(alloc), kind, self.root_alloc()),
            Box::new(SlotTicket {
                inner: self.inner.clone(),
                alloc,
                pool_depth: cx.pool_depth(),
            }),
            None,
            None,
        )
    }
}

impl<T: Send + 'static> Accessible for Data<T> {
    fn region(&self) -> Region {
        match &self.inner.storage {
            Storage::Plain(_) => self.inner.region.clone(),
            Storage::Versioned(chain) => {
                let st = chain.state.lock();
                self.version_region(st.slots[st.current].alloc)
            }
        }
    }

    fn sync_regions(&self) -> Vec<Region> {
        match &self.inner.storage {
            Storage::Plain(_) => vec![self.inner.region.clone()],
            Storage::Versioned(chain) => chain
                .state
                .lock()
                .slots
                .iter()
                .map(|s| self.version_region(s.alloc))
                .collect(),
        }
    }

    fn resolve(&self, kind: AccessKind, cx: &RenameCx<'_>) -> ResolvedAccess {
        let chain = match &self.inner.storage {
            Storage::Plain(_) => {
                return ResolvedAccess::plain(Access::new(self.inner.region.clone(), kind))
            }
            Storage::Versioned(chain) => chain,
        };
        let mut st = chain.state.lock();
        if kind != AccessKind::Output || !cx.renaming_enabled() {
            // Reads (and in-place updates) bind the latest version: true
            // dependences are preserved, `inout` chains still serialise.
            return self.bind_current(kind, cx, &mut st);
        }
        // Version-count backpressure: the byte budget below is shallow
        // (`size_of::<T>()`), so this is the bound that actually limits
        // heap-backed types — no more than `max_versions` live versions of
        // one handle, however large each version's owned storage is.
        if st.slots.len() >= cx.max_versions() {
            cx.pool().note_fallback();
            return self.bind_current(kind, cx, &mut st);
        }
        // `output`: rename. Prefer recycled storage (no new memory), else
        // draw on the budget; if the budget is exhausted fall back to the
        // current version, serialising like the non-renaming runtime.
        let (cell, reservation, recycled) = if let Some(free) = st.free.pop() {
            (free.cell, free.reservation, true)
        } else {
            let bytes = self.inner.region.len();
            match cx.pool().try_reserve(bytes) {
                Some(res) => (
                    Box::new(UnsafeCell::new((chain.make)())),
                    Some(res),
                    false,
                ),
                None => {
                    cx.pool().note_fallback();
                    return self.bind_current(kind, cx, &mut st);
                }
            }
        };
        let alloc = AllocId::fresh();
        let from = st.slots[st.current].alloc;
        st.slots.push(Slot {
            alloc,
            cell,
            refs: 1,
            reservation,
        });
        // The new version is allocated (and this task bound to it) but NOT
        // yet current: it becomes the handle's value only when the task is
        // actually inserted (`TaskBuilder::spawn` runs the commit hook). A
        // builder abandoned before spawn releases its ticket, reclaiming
        // the never-current version without disturbing the handle.
        cx.pool().note_rename(recycled);
        let ticket = SlotTicket {
            inner: self.inner.clone(),
            alloc,
            pool_depth: cx.pool_depth(),
        };
        let commit = ticket.clone();
        ResolvedAccess::bound(
            Access::with_root(self.version_region(alloc), kind, self.root_alloc()),
            Box::new(ticket),
            Some(RenameEvent {
                from,
                to: alloc,
                recycled,
            }),
            Some(Box::new(commit)),
        )
    }
}

impl<T> std::fmt::Debug for Data<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner.storage {
            Storage::Plain(_) => write!(f, "Data({})", self.inner.region.id),
            Storage::Versioned(chain) => {
                let st = chain.state.lock();
                write!(
                    f,
                    "Data({}, {} versions, current {})",
                    self.inner.region.id,
                    st.slots.len(),
                    st.slots[st.current].alloc.raw()
                )
            }
        }
    }
}

/// Shared read guard produced by [`TaskContext::read`](crate::runtime::TaskContext::read).
pub struct ReadGuard<'a, T> {
    pub(crate) value: &'a T,
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

/// Exclusive write guard produced by [`TaskContext::write`](crate::runtime::TaskContext::write).
pub struct WriteGuard<'a, T> {
    pub(crate) value: &'a mut T,
}

impl<T> std::ops::Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value
    }
}

// ---------------------------------------------------------------------------
// PartitionedData<T>
// ---------------------------------------------------------------------------

pub(crate) struct PartInner<T> {
    pub(crate) alloc: AllocId,
    pub(crate) cell: UnsafeCell<Vec<T>>,
    /// Element ranges of each chunk (disjoint, covering `0..len`).
    pub(crate) chunks: Vec<std::ops::Range<usize>>,
    pub(crate) elem_size: usize,
    pub(crate) len: usize,
}

unsafe impl<T: Send> Send for PartInner<T> {}
unsafe impl<T: Send> Sync for PartInner<T> {}

/// A `Vec<T>` partitioned into disjoint chunks, each chunk being an
/// independent dependence region.
///
/// Chunk `i` covers elements `chunk_ranges()[i]`; chunk regions use byte
/// ranges derived from element indices so that a whole-array handle
/// ([`PartitionedData::whole`]) overlaps every chunk.
pub struct PartitionedData<T> {
    pub(crate) inner: Arc<PartInner<T>>,
}

impl<T> Clone for PartitionedData<T> {
    fn clone(&self) -> Self {
        PartitionedData {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> PartitionedData<T> {
    /// Partition `data` into chunks of at most `chunk_len` elements.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn new(data: Vec<T>, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let len = data.len();
        let elem_size = std::mem::size_of::<T>().max(1);
        let mut chunks = Vec::new();
        let mut start = 0;
        while start < len {
            let end = (start + chunk_len).min(len);
            chunks.push(start..end);
            start = end;
        }
        if chunks.is_empty() {
            chunks.push(0..0);
        }
        PartitionedData {
            inner: Arc::new(PartInner {
                alloc: AllocId::fresh(),
                cell: UnsafeCell::new(data),
                chunks,
                elem_size,
                len,
            }),
        }
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.inner.chunks.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the partitioned vector is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Element range of chunk `i`.
    pub fn chunk_range(&self, i: usize) -> std::ops::Range<usize> {
        self.inner.chunks[i].clone()
    }

    /// Handle naming chunk `i` in access clauses.
    pub fn chunk(&self, i: usize) -> Chunk<T> {
        assert!(i < self.num_chunks(), "chunk index out of range");
        Chunk {
            inner: self.inner.clone(),
            index: i,
        }
    }

    /// Handle naming the whole array in access clauses (conflicts with every
    /// chunk).
    pub fn whole(&self) -> Whole<T> {
        Whole {
            inner: self.inner.clone(),
        }
    }

    /// Iterate over all chunk handles.
    pub fn chunk_handles(&self) -> impl Iterator<Item = Chunk<T>> + '_ {
        (0..self.num_chunks()).map(move |i| self.chunk(i))
    }

    /// Recover the inner vector if this is the last handle.
    pub fn try_into_vec(self) -> Result<Vec<T>, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.cell.into_inner()),
            Err(arc) => Err(PartitionedData { inner: arc }),
        }
    }
}

impl<T> Accessible for PartitionedData<T> {
    fn region(&self) -> Region {
        Region::new(
            self.inner.alloc,
            0,
            0..self.inner.len.max(1) * self.inner.elem_size,
        )
    }
}

impl<T> std::fmt::Debug for PartitionedData<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PartitionedData(alloc {}, {} chunks)",
            self.inner.alloc.raw(),
            self.inner.chunks.len()
        )
    }
}

/// Handle to one chunk of a [`PartitionedData`].
pub struct Chunk<T> {
    pub(crate) inner: Arc<PartInner<T>>,
    pub(crate) index: usize,
}

impl<T> Clone for Chunk<T> {
    fn clone(&self) -> Self {
        Chunk {
            inner: self.inner.clone(),
            index: self.index,
        }
    }
}

impl<T> Chunk<T> {
    /// Chunk index within the partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Element range covered by this chunk.
    pub fn elem_range(&self) -> std::ops::Range<usize> {
        self.inner.chunks[self.index].clone()
    }

    /// Number of elements in the chunk.
    pub fn len(&self) -> usize {
        let r = self.elem_range();
        r.end - r.start
    }

    /// Whether the chunk holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn slice_ptr(&self) -> (*mut T, usize) {
        let range = self.elem_range();
        // Safety: we only manufacture the pointer here; dereferencing is
        // gated by the runtime (see module docs).
        let vec = self.inner.cell.get();
        let base = unsafe { (*vec).as_mut_ptr() };
        (unsafe { base.add(range.start) }, range.end - range.start)
    }
}

impl<T> Accessible for Chunk<T> {
    fn region(&self) -> Region {
        let r = self.elem_range();
        Region::new(
            self.inner.alloc,
            self.index as u32 + 1,
            r.start * self.inner.elem_size..r.end * self.inner.elem_size,
        )
    }
}

impl<T> std::fmt::Debug for Chunk<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Chunk(alloc {}, #{} [{:?}])",
            self.inner.alloc.raw(),
            self.index,
            self.elem_range()
        )
    }
}

/// Handle to the whole array of a [`PartitionedData`].
pub struct Whole<T> {
    pub(crate) inner: Arc<PartInner<T>>,
}

impl<T> Clone for Whole<T> {
    fn clone(&self) -> Self {
        Whole {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Whole<T> {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    pub(crate) fn slice_ptr(&self) -> (*mut T, usize) {
        let vec = self.inner.cell.get();
        let base = unsafe { (*vec).as_mut_ptr() };
        (base, self.inner.len)
    }
}

impl<T> Accessible for Whole<T> {
    fn region(&self) -> Region {
        Region::new(
            self.inner.alloc,
            0,
            0..self.inner.len.max(1) * self.inner.elem_size,
        )
    }
}

impl<T> std::fmt::Debug for Whole<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Whole(alloc {})", self.inner.alloc.raw())
    }
}

/// Read guard over a slice (chunk or whole array).
pub struct SliceReadGuard<'a, T> {
    pub(crate) slice: &'a [T],
}

impl<T> std::ops::Deref for SliceReadGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.slice
    }
}

/// Write guard over a slice (chunk or whole array).
pub struct SliceWriteGuard<'a, T> {
    pub(crate) slice: &'a mut [T],
}

impl<T> std::ops::Deref for SliceWriteGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.slice
    }
}

impl<T> std::ops::DerefMut for SliceWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn data_roundtrip() {
        let d = Data::new(41u64);
        assert_eq!(d.handle_count(), 1);
        let d2 = d.clone();
        assert_eq!(d.handle_count(), 2);
        assert!(d2.region().overlaps(&d.region()));
        drop(d2);
        assert_eq!(d.try_into_inner().unwrap(), 41);
    }

    #[test]
    fn data_try_into_inner_fails_while_shared() {
        let d = Data::new(1u8);
        let d2 = d.clone();
        let d = d.try_into_inner().unwrap_err();
        drop(d2);
        assert_eq!(d.try_into_inner().unwrap(), 1);
    }

    #[test]
    fn distinct_data_handles_never_overlap() {
        let a = Data::new([0u8; 16]);
        let b = Data::new([0u8; 16]);
        assert!(!a.region().overlaps(&b.region()));
    }

    #[test]
    fn zero_sized_data_still_has_nonempty_region() {
        let d = Data::new(());
        assert!(!d.region().is_empty());
        assert!(d.region().overlaps(&d.region()));
    }

    #[test]
    fn partition_chunk_layout() {
        let p = PartitionedData::new((0..10u32).collect::<Vec<_>>(), 4);
        assert_eq!(p.num_chunks(), 3);
        assert_eq!(p.len(), 10);
        assert_eq!(p.chunk_range(0), 0..4);
        assert_eq!(p.chunk_range(1), 4..8);
        assert_eq!(p.chunk_range(2), 8..10);
        assert_eq!(p.chunk(2).len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn partition_of_empty_vec() {
        let p = PartitionedData::new(Vec::<u8>::new(), 4);
        assert_eq!(p.num_chunks(), 1);
        assert!(p.is_empty());
        assert!(p.chunk(0).is_empty());
        assert_eq!(p.try_into_vec().unwrap(), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn partition_zero_chunk_len_panics() {
        let _ = PartitionedData::new(vec![1u8, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "chunk index out of range")]
    fn chunk_out_of_range_panics() {
        let p = PartitionedData::new(vec![1u8, 2, 3], 2);
        let _ = p.chunk(5);
    }

    #[test]
    fn chunk_regions_are_disjoint_and_within_whole() {
        let p = PartitionedData::new(vec![0f64; 100], 7);
        let whole = p.whole().region();
        for i in 0..p.num_chunks() {
            let ri = p.chunk(i).region();
            assert!(whole.contains(&ri), "whole must contain chunk {i}");
            assert!(whole.overlaps(&ri));
            for j in 0..p.num_chunks() {
                if i != j {
                    assert!(
                        !ri.overlaps(&p.chunk(j).region()),
                        "chunks {i} and {j} must not overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn whole_and_partitioned_data_share_region() {
        let p = PartitionedData::new(vec![0u8; 10], 3);
        assert_eq!(p.region(), p.whole().region());
    }

    #[test]
    fn debug_formats() {
        let d = Data::new(3u8);
        let p = PartitionedData::new(vec![1u8, 2, 3], 2);
        assert!(format!("{d:?}").starts_with("Data("));
        assert!(format!("{p:?}").contains("chunks"));
        assert!(format!("{:?}", p.chunk(0)).contains("Chunk"));
        assert!(format!("{:?}", p.whole()).contains("Whole"));
    }

    mod versioned {
        use super::*;
        use crate::access::AccessKind;
        use crate::rename::{RenameCx, RenamePool, ResolvedAccess};
        use std::sync::Arc;

        /// Run the deferred rename commit, as `TaskBuilder::spawn` does.
        fn commit(r: &mut ResolvedAccess) {
            r.commit.take().expect("resolution renamed").commit();
        }

        fn cx(pool: &Arc<RenamePool>, enabled: bool) -> RenameCx<'_> {
            RenameCx {
                enabled,
                pool,
                pool_depth: 4,
                max_versions: 16,
            }
        }

        #[test]
        fn plain_handles_are_not_versioned() {
            let d = Data::new(1u32);
            assert!(!d.is_versioned());
            assert_eq!(d.live_versions(), 1);
        }

        #[test]
        fn output_renames_to_a_fresh_region() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(0u64);
            let before = d.region();
            let mut resolved = d.resolve(AccessKind::Output, &cx(&pool, true));
            // The new version exists but is not current until the spawning
            // point commits it (abandoned builders never do).
            assert_eq!(d.region(), before, "uncommitted rename is invisible");
            commit(&mut resolved);
            let after = d.region();
            assert_ne!(before.id.alloc, after.id.alloc, "rename advanced the current version");
            assert_eq!(resolved.access.region, after, "output bound the fresh version");
            assert_eq!(resolved.access.root_alloc(), d.root_alloc());
            assert!(!before.overlaps(&after), "versions never conflict");
            assert_eq!(pool.renames(), 1);
            // The superseded version had no in-flight tasks bound to it, so
            // it was recycled at commit: only the fresh version is live.
            assert_eq!(d.live_versions(), 1);
        }

        #[test]
        fn uncommitted_rename_leaves_the_value_untouched() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(42u64);
            let r = d.resolve(AccessKind::Output, &cx(&pool, true));
            // Abandon: release the binding without committing (what
            // dropping an unspawned TaskBuilder does).
            drop(r.commit);
            r.ticket.unwrap().release();
            assert_eq!(d.live_versions(), 1);
            assert_eq!(d.try_into_inner().unwrap(), 42, "value must survive");
        }

        #[test]
        fn reads_bind_the_current_version() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(7u64);
            let r = d.resolve(AccessKind::Input, &cx(&pool, true));
            assert_eq!(r.access.region, d.region());
            assert!(r.renamed.is_none());
            assert_eq!(pool.renames(), 0);
        }

        #[test]
        fn ticket_release_recycles_superseded_versions() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(0u64);
            let cx = cx(&pool, true);
            // Reader pins version 0; writer renames to version 1.
            let reader = d.resolve(AccessKind::Input, &cx);
            let mut writer = d.resolve(AccessKind::Output, &cx);
            commit(&mut writer);
            assert_eq!(d.live_versions(), 2);
            // Reader done: version 0 is superseded and unreferenced -> recycled.
            reader.ticket.unwrap().release();
            assert_eq!(d.live_versions(), 1);
            // Next rename reuses the pooled storage.
            let _w2 = d.resolve(AccessKind::Output, &cx);
            assert_eq!(pool.recycled(), 1);
            writer.ticket.unwrap().release();
        }

        #[test]
        fn renaming_disabled_keeps_one_version() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(0u64);
            let cx = cx(&pool, false);
            let a = d.resolve(AccessKind::Output, &cx);
            let b = d.resolve(AccessKind::Output, &cx);
            assert_eq!(a.access.region, b.access.region, "no renaming: same version");
            assert_eq!(d.live_versions(), 1);
            assert_eq!(pool.renames(), 0);
        }

        #[test]
        fn version_count_bound_falls_back_to_serialising() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let cx = RenameCx {
                enabled: true,
                pool: &pool,
                pool_depth: 0,
                max_versions: 3,
            };
            let d = Data::versioned(0u64);
            // Hold every version in flight so none can be reclaimed.
            let mut held = Vec::new();
            for _ in 0..8 {
                held.push(d.resolve(AccessKind::Output, &cx));
            }
            // The canonical version stays current (nothing commits), so two
            // uncommitted versions fill the bound of 3.
            assert_eq!(d.live_versions(), 3, "live versions capped");
            assert_eq!(pool.renames(), 2);
            assert_eq!(pool.fallbacks(), 6, "the rest serialised");
            for r in held {
                r.ticket.unwrap().release();
            }
            assert_eq!(d.live_versions(), 1, "superseded versions reclaimed");
        }

        #[test]
        fn exhausted_budget_falls_back_to_serialising() {
            let pool = Arc::new(RenamePool::new(0));
            let d = Data::versioned(0u64);
            let cx = cx(&pool, true);
            // size_of::<u64>() > 0-byte budget: no rename possible.
            let r = d.resolve(AccessKind::Output, &cx);
            assert!(r.renamed.is_none());
            assert_eq!(r.access.region, d.region());
            assert_eq!(pool.fallbacks(), 1);
        }

        #[test]
        fn into_inner_returns_the_final_version() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(1u64);
            let cx = cx(&pool, true);
            let mut w = d.resolve(AccessKind::Output, &cx);
            commit(&mut w);
            // Write through the bound version as a task body would.
            let ptr = d.ptr_for_alloc(w.access.region.id.alloc).unwrap();
            unsafe { *ptr = 42 };
            w.ticket.unwrap().release();
            assert_eq!(d.try_into_inner().unwrap(), 42);
        }

        #[test]
        fn versioned_with_initialises_fresh_versions() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned_with(5u32, || 99);
            let cx = cx(&pool, true);
            let w = d.resolve(AccessKind::Output, &cx);
            let ptr = d.ptr_for_alloc(w.access.region.id.alloc).unwrap();
            assert_eq!(unsafe { *ptr }, 99, "fresh version starts from make()");
        }

        #[test]
        fn sync_regions_cover_all_live_versions() {
            let pool = Arc::new(RenamePool::new(1 << 20));
            let d = Data::versioned(0u64);
            let cx = cx(&pool, true);
            let _r = d.resolve(AccessKind::Input, &cx);
            let _w = d.resolve(AccessKind::Output, &cx);
            assert_eq!(d.sync_regions().len(), 2);
            assert_eq!(Data::new(0u8).sync_regions().len(), 1);
        }
    }

    proptest! {
        /// Chunk ranges tile the vector exactly: disjoint, ordered, covering.
        #[test]
        fn prop_chunks_tile_vector(len in 0usize..500, chunk_len in 1usize..64) {
            let p = PartitionedData::new(vec![0u8; len], chunk_len);
            let mut covered = 0usize;
            for i in 0..p.num_chunks() {
                let r = p.chunk_range(i);
                prop_assert_eq!(r.start, covered);
                prop_assert!(r.end >= r.start);
                covered = r.end;
                if len > 0 {
                    prop_assert!(r.end - r.start <= chunk_len);
                }
            }
            prop_assert_eq!(covered, len);
        }

        /// Chunk byte regions never overlap each other.
        #[test]
        fn prop_chunk_regions_disjoint(len in 1usize..300, chunk_len in 1usize..50) {
            let p = PartitionedData::new(vec![0u32; len], chunk_len);
            for i in 0..p.num_chunks() {
                for j in (i + 1)..p.num_chunks() {
                    prop_assert!(!p.chunk(i).region().overlaps(&p.chunk(j).region()));
                }
            }
        }
    }
}

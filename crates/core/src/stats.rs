//! Aggregated runtime statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters, updated by workers and the spawn path.
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub tasks_spawned: AtomicU64,
    pub tasks_executed: AtomicU64,
    pub tasks_panicked: AtomicU64,
    pub edges_added: AtomicU64,
    pub taskwaits: AtomicU64,
    pub taskwait_ons: AtomicU64,
    pub immediately_ready: AtomicU64,
}

impl StatCounters {
    pub(crate) fn add(&self, field: StatField, n: u64) {
        self.counter(field).fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn get(&self, field: StatField) -> u64 {
        self.counter(field).load(Ordering::Relaxed)
    }

    fn counter(&self, field: StatField) -> &AtomicU64 {
        match field {
            StatField::TasksSpawned => &self.tasks_spawned,
            StatField::TasksExecuted => &self.tasks_executed,
            StatField::TasksPanicked => &self.tasks_panicked,
            StatField::EdgesAdded => &self.edges_added,
            StatField::Taskwaits => &self.taskwaits,
            StatField::TaskwaitOns => &self.taskwait_ons,
            StatField::ImmediatelyReady => &self.immediately_ready,
        }
    }
}

/// Names of the counters tracked by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StatField {
    TasksSpawned,
    TasksExecuted,
    TasksPanicked,
    EdgesAdded,
    Taskwaits,
    TaskwaitOns,
    ImmediatelyReady,
}

/// A point-in-time snapshot of runtime statistics, obtained from
/// [`Runtime::stats`](crate::Runtime::stats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Tasks spawned since the runtime was created.
    pub tasks_spawned: u64,
    /// Tasks that finished executing.
    pub tasks_executed: u64,
    /// Tasks whose body panicked.
    pub tasks_panicked: u64,
    /// Dependence edges inserted into the task graph.
    pub edges_added: u64,
    /// Tasks that were ready at spawn time (no unresolved dependences).
    pub immediately_ready: u64,
    /// Number of `taskwait` calls.
    pub taskwaits: u64,
    /// Number of `taskwait_on` calls.
    pub taskwait_ons: u64,
    /// Tasks popped from a worker's own deque.
    pub sched_local_pops: u64,
    /// Tasks popped from the global queue.
    pub sched_global_pops: u64,
    /// Tasks stolen from another worker.
    pub sched_steals: u64,
    /// Successor tasks pushed onto the waking worker's deque (locality hits).
    pub sched_local_wakeups: u64,
    /// Successor tasks pushed onto the global queue.
    pub sched_global_wakeups: u64,
    /// Tasks that went through the priority heap.
    pub sched_priority_pops: u64,
}

impl RuntimeStats {
    /// Fraction of dependent-task wakeups that stayed on the waking worker
    /// (the locality mechanism the paper credits for `ray-rot`). Returns
    /// `None` when no wakeups happened.
    pub fn locality_hit_rate(&self) -> Option<f64> {
        let total = self.sched_local_wakeups + self.sched_global_wakeups;
        if total == 0 {
            None
        } else {
            Some(self.sched_local_wakeups as f64 / total as f64)
        }
    }

    /// Average number of dependence edges per spawned task.
    pub fn mean_edges_per_task(&self) -> f64 {
        if self.tasks_spawned == 0 {
            0.0
        } else {
            self.edges_added as f64 / self.tasks_spawned as f64
        }
    }

    /// Tasks still in flight (spawned but not yet executed).
    pub fn tasks_in_flight(&self) -> u64 {
        self.tasks_spawned.saturating_sub(self.tasks_executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_get() {
        let c = StatCounters::default();
        c.add(StatField::TasksSpawned, 3);
        c.add(StatField::TasksSpawned, 2);
        c.add(StatField::EdgesAdded, 7);
        assert_eq!(c.get(StatField::TasksSpawned), 5);
        assert_eq!(c.get(StatField::EdgesAdded), 7);
        assert_eq!(c.get(StatField::TasksExecuted), 0);
    }

    #[test]
    fn locality_hit_rate() {
        let mut s = RuntimeStats::default();
        assert_eq!(s.locality_hit_rate(), None);
        s.sched_local_wakeups = 3;
        s.sched_global_wakeups = 1;
        assert!((s.locality_hit_rate().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn derived_metrics() {
        let s = RuntimeStats {
            tasks_spawned: 10,
            tasks_executed: 7,
            edges_added: 25,
            ..Default::default()
        };
        assert_eq!(s.tasks_in_flight(), 3);
        assert!((s.mean_edges_per_task() - 2.5).abs() < 1e-12);
        let empty = RuntimeStats::default();
        assert_eq!(empty.mean_edges_per_task(), 0.0);
        assert_eq!(empty.tasks_in_flight(), 0);
    }
}

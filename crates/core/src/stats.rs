//! Aggregated runtime statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Pads a counter to its own cache-line pair so relaxed increments from
/// different threads never bounce one line between cores. 128 bytes covers
/// the common 64-byte line plus the adjacent-line spatial prefetcher of x86
/// parts (the same sizing crossbeam's `CachePadded` uses).
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct CachePadded<T>(pub(crate) T);

/// Internal atomic counters, updated by workers and the spawn path.
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub tasks_spawned: AtomicU64,
    pub tasks_executed: AtomicU64,
    pub tasks_panicked: AtomicU64,
    pub edges_added: AtomicU64,
    pub edges_raw: AtomicU64,
    pub edges_war: AtomicU64,
    pub edges_waw: AtomicU64,
    pub dependences_seen: AtomicU64,
    pub taskwaits: AtomicU64,
    pub taskwait_ons: AtomicU64,
    pub immediately_ready: AtomicU64,
    /// Spawns whose access list spilled past the inline capacity. Only the
    /// rare spill is counted on the hot path; inline hits are derived as
    /// `tasks_spawned - spills` when stats are snapshotted.
    pub access_inline_spills: AtomicU64,
    /// Spawns whose body closure spilled past the node's inline body buffer
    /// (the [`RuntimeConfig::with_inline_body_bytes`](crate::RuntimeConfig::with_inline_body_bytes)
    /// threshold) into a `Box`.
    pub spawn_body_spills: AtomicU64,
    /// Template passes stamped through `Runtime::replay` / `replay_fused`
    /// (a fused super-batch counts each of its iterations).
    pub replay_passes: AtomicU64,
    /// Tasks stamped by template replay, a subset of `tasks_spawned`.
    pub replay_tasks: AtomicU64,
    /// Tasks retired without running because a failing predecessor (panic or
    /// cancellation) poisoned them. Disjoint from `tasks_executed`.
    pub tasks_poisoned: AtomicU64,
    /// Tasks retired without running because their cancel scope was
    /// cancelled before they started. Disjoint from `tasks_executed` and
    /// `tasks_poisoned`.
    pub tasks_cancelled: AtomicU64,
}

impl StatCounters {
    pub(crate) fn add(&self, field: StatField, n: u64) {
        self.counter(field).fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn get(&self, field: StatField) -> u64 {
        self.counter(field).load(Ordering::Relaxed)
    }

    fn counter(&self, field: StatField) -> &AtomicU64 {
        match field {
            StatField::TasksSpawned => &self.tasks_spawned,
            StatField::TasksExecuted => &self.tasks_executed,
            StatField::TasksPanicked => &self.tasks_panicked,
            StatField::EdgesAdded => &self.edges_added,
            StatField::EdgesRaw => &self.edges_raw,
            StatField::EdgesWar => &self.edges_war,
            StatField::EdgesWaw => &self.edges_waw,
            StatField::DependencesSeen => &self.dependences_seen,
            StatField::Taskwaits => &self.taskwaits,
            StatField::TaskwaitOns => &self.taskwait_ons,
            StatField::ImmediatelyReady => &self.immediately_ready,
            StatField::AccessInlineSpills => &self.access_inline_spills,
            StatField::SpawnBodySpills => &self.spawn_body_spills,
            StatField::ReplayPasses => &self.replay_passes,
            StatField::ReplayTasks => &self.replay_tasks,
            StatField::TasksPoisoned => &self.tasks_poisoned,
            StatField::TasksCancelled => &self.tasks_cancelled,
        }
    }
}

/// Counters of the sharded dependence tracker: one hit counter per shard
/// plus a global contention counter. Owned by the tracker router
/// ([`crate::graph`]) and snapshotted into [`RuntimeStats`].
///
/// Shard locks are acquired try-lock-first: a successful `try_lock` is an
/// uncontended hit, a failed one bumps `lock_contention` before blocking.
/// `lock_contention / sum(shard_hits)` is therefore the fraction of tracker
/// accesses that had to wait — the number sharding is meant to drive to zero.
#[derive(Debug)]
pub(crate) struct TrackerCounters {
    /// One hit counter per shard, each padded to its own cache-line pair:
    /// shards are hit concurrently by independent spawners, and a dense
    /// `[AtomicU64]` made adjacent shards' relaxed increments bounce one
    /// line between every spawning core (measured as pure overhead at 8
    /// spawners — the counters are statistics, they must not *create*
    /// contention the shards were built to remove).
    shard_hits: Box<[CachePadded<AtomicU64>]>,
    lock_contention: AtomicU64,
    fast_path_hits: AtomicU64,
    fast_path_fallbacks: AtomicU64,
}

impl TrackerCounters {
    pub(crate) fn new(shards: usize) -> Self {
        TrackerCounters {
            shard_hits: (0..shards)
                .map(|_| CachePadded(AtomicU64::new(0)))
                .collect(),
            lock_contention: AtomicU64::new(0),
            fast_path_hits: AtomicU64::new(0),
            fast_path_fallbacks: AtomicU64::new(0),
        }
    }

    /// Record an acquisition of `shard`'s lock (or gate).
    pub(crate) fn hit(&self, shard: usize) {
        self.shard_hits[shard].0.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a shard lock that was held by another thread at acquisition.
    pub(crate) fn contended(&self) {
        self.lock_contention.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a registration that completed through the optimistic
    /// single-shard fast path.
    pub(crate) fn fast_hit(&self) {
        self.fast_path_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a registration that wanted the fast path but took the mutex
    /// path instead (contention, multi-allocation span, GC in progress).
    pub(crate) fn fast_fallback(&self) {
        self.fast_path_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-shard hit counts.
    pub(crate) fn hits(&self) -> Vec<u64> {
        self.shard_hits
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .collect()
    }

    /// Total contended acquisitions.
    pub(crate) fn contention(&self) -> u64 {
        self.lock_contention.load(Ordering::Relaxed)
    }

    /// Total fast-path registrations.
    pub(crate) fn fast_hits(&self) -> u64 {
        self.fast_path_hits.load(Ordering::Relaxed)
    }

    /// Total fast-path fallbacks.
    pub(crate) fn fast_fallbacks(&self) -> u64 {
        self.fast_path_fallbacks.load(Ordering::Relaxed)
    }
}

/// Names of the counters tracked by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StatField {
    TasksSpawned,
    TasksExecuted,
    TasksPanicked,
    EdgesAdded,
    EdgesRaw,
    EdgesWar,
    EdgesWaw,
    DependencesSeen,
    Taskwaits,
    TaskwaitOns,
    ImmediatelyReady,
    AccessInlineSpills,
    SpawnBodySpills,
    ReplayPasses,
    ReplayTasks,
    TasksPoisoned,
    TasksCancelled,
}

/// A point-in-time snapshot of runtime statistics, obtained from
/// [`Runtime::stats`](crate::Runtime::stats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Tasks spawned since the runtime was created.
    pub tasks_spawned: u64,
    /// Tasks that finished executing.
    pub tasks_executed: u64,
    /// Tasks whose body panicked.
    pub tasks_panicked: u64,
    /// Dependence edges inserted into the task graph. Only predecessors
    /// still in flight at registration produce an edge, so this count (and
    /// its RAW/WAR/WAW split) depends on execution timing; use
    /// [`RuntimeStats::dependences_seen`] for a timing-independent count.
    pub edges_added: u64,
    /// Edges carrying a true data flow: the successor reads data the
    /// predecessor wrote, including read-modify-write (`inout` /
    /// `concurrent`) chains. Renaming preserves these.
    pub raw_edges: u64,
    /// Edges that are anti (write-after-read) dependences: an `output`
    /// overwrites data an earlier task reads — false dependences that
    /// automatic renaming removes.
    pub war_edges: u64,
    /// Edges that are output (write-after-write) dependences: an `output`
    /// overwrites data an earlier task wrote, without reading it — false
    /// dependences that automatic renaming removes.
    pub waw_edges: u64,
    /// Conflicting predecessor accesses discovered at registration, whether
    /// or not the predecessor had already completed. Independent of
    /// execution timing (deterministic for a fixed program, until history is
    /// garbage-collected), unlike `edges_added`.
    pub dependences_seen: u64,
    /// Versions allocated by automatic renaming (`output` accesses on
    /// versioned handles), whole-handle and per-chunk combined.
    pub renames: u64,
    /// Renames performed at sub-region granularity — `output` accesses on
    /// chunks of a versioned partition. A subset of
    /// [`RuntimeStats::renames`].
    pub chunk_renames: u64,
    /// Renames that reused pooled storage instead of allocating.
    pub renames_recycled: u64,
    /// `output` accesses that wanted to rename but serialised instead,
    /// either because the rename memory budget was exhausted or because the
    /// handle already had `rename_max_versions` live versions.
    pub rename_fallbacks: u64,
    /// Bytes currently held by renamed versions (live and pooled).
    pub rename_bytes_held: u64,
    /// Tasks that were ready at spawn time (no unresolved dependences).
    pub immediately_ready: u64,
    /// Number of `taskwait` calls.
    pub taskwaits: u64,
    /// Number of `taskwait_on` calls.
    pub taskwait_ons: u64,
    /// Tasks popped from a worker's own deque.
    pub sched_local_pops: u64,
    /// Tasks popped from the global queue.
    pub sched_global_pops: u64,
    /// Tasks stolen from another worker.
    pub sched_steals: u64,
    /// Successor tasks pushed onto the waking worker's deque (locality hits).
    pub sched_local_wakeups: u64,
    /// Successor tasks pushed onto the global queue.
    pub sched_global_wakeups: u64,
    /// Tasks that went through the priority heap.
    pub sched_priority_pops: u64,
    /// Number of shards of the dependence tracker (see
    /// [`RuntimeConfig::with_tracker_shards`](crate::RuntimeConfig::with_tracker_shards)).
    pub tracker_shards: usize,
    /// Shard-lock acquisitions per tracker shard (registration, completion
    /// retirement and `taskwait on` lookups), indexed by shard. Renamed
    /// versions carry fresh allocation ids, so a balanced workload shows a
    /// near-uniform distribution here.
    pub tracker_shard_hits: Vec<u64>,
    /// Tracker shard-lock acquisitions that found the lock held by another
    /// thread (the try-lock failed and the caller blocked). With one shard
    /// this counts every spawn/retire collision; with enough shards it should
    /// stay near zero for tasks touching disjoint allocations.
    pub tracker_lock_contention: u64,
    /// Registrations that completed through the optimistic single-shard
    /// fast path (one gate CAS, no mutex) — see
    /// [`RuntimeConfig::with_tracker_fast_path`](crate::RuntimeConfig::with_tracker_fast_path).
    pub tracker_fast_path_hits: u64,
    /// Registrations that wanted the fast path but fell back to the mutex
    /// path: the shard was contended, the accesses spanned several shards,
    /// or a GC sweep held the shard.
    pub tracker_fast_path_fallbacks: u64,
    /// `output` accesses on versioned handles whose rename was **elided**:
    /// the current version had no in-flight bindings (every earlier bound
    /// task had completed and retired), so the access bound it in place
    /// instead of allocating a fresh version. Disjoint from
    /// [`RuntimeStats::renames`].
    pub renames_elided: u64,
    /// Successor tasks routed to the deque inbox of the worker that last
    /// completed work on the successor's tracker shard
    /// ([`SchedulerPolicy::ShardAffinity`](crate::SchedulerPolicy::ShardAffinity)).
    pub sched_affinity_wakeups: u64,
    /// Steals served from a *preferred* victim inbox — one whose most
    /// recently routed wakeup belongs to a shard the stealing worker itself
    /// recently completed work on, probed before the plain round-robin
    /// steal order ([`SchedulerPolicy::ShardAffinity`](crate::SchedulerPolicy::ShardAffinity)).
    /// A subset of [`RuntimeStats::sched_steals`].
    pub sched_affinity_steals: u64,
    /// Task-node acquisitions served from the runtime's slab free list
    /// instead of the heap (the spawn-side allocation diet; see
    /// [`RuntimeConfig::with_task_recycler`](crate::RuntimeConfig::with_task_recycler)).
    pub task_nodes_recycled: u64,
    /// Task nodes allocated fresh from the heap.
    pub task_nodes_allocated: u64,
    /// Spawned tasks whose declared accesses fit the node's inline access
    /// storage (≤2 accesses — no access-list heap allocation).
    pub access_inline_hits: u64,
    /// Spawned tasks whose access list spilled to the heap (more than 2
    /// declared accesses).
    pub access_inline_spills: u64,
    /// Spawned tasks whose body closure was too large (or too aligned) for
    /// the node's inline body buffer and was boxed instead. Tune with
    /// [`RuntimeConfig::with_inline_body_bytes`](crate::RuntimeConfig::with_inline_body_bytes).
    pub spawn_body_spills: u64,
    /// Template passes stamped through
    /// [`Runtime::replay`](crate::Runtime::replay) /
    /// [`Runtime::replay_fused`](crate::Runtime::replay_fused) (a fused
    /// super-batch counts each of its iterations as one pass).
    pub replay_passes: u64,
    /// Tasks stamped by template replay — a subset of
    /// [`RuntimeStats::tasks_spawned`], which counts them too.
    pub replay_tasks: u64,
    /// Tasks retired without running because a failing predecessor (panic
    /// or cancellation) poisoned them — see the README's "Failure
    /// semantics". Disjoint from [`RuntimeStats::tasks_executed`]; a drained
    /// runtime satisfies `spawned == executed + poisoned + cancelled`.
    pub tasks_poisoned: u64,
    /// Tasks retired without running because their
    /// [`CancelToken`](crate::CancelToken) scope was cancelled before they
    /// started. Disjoint from [`RuntimeStats::tasks_executed`] and
    /// [`RuntimeStats::tasks_poisoned`].
    pub tasks_cancelled: u64,
}

impl RuntimeStats {
    /// Fraction of dependent-task wakeups that stayed on the waking worker
    /// (the locality mechanism the paper credits for `ray-rot`). Returns
    /// `None` when no wakeups happened.
    pub fn locality_hit_rate(&self) -> Option<f64> {
        let total = self.sched_local_wakeups + self.sched_global_wakeups;
        if total == 0 {
            None
        } else {
            Some(self.sched_local_wakeups as f64 / total as f64)
        }
    }

    /// Average number of dependence edges per spawned task.
    pub fn mean_edges_per_task(&self) -> f64 {
        if self.tasks_spawned == 0 {
            0.0
        } else {
            self.edges_added as f64 / self.tasks_spawned as f64
        }
    }

    /// Fraction of added graph edges that are false (WAR + WAW)
    /// dependences — overwrites that do not read the data they replace, the
    /// serialisation automatic renaming targets. `None` when no edges were
    /// added.
    pub fn false_dependence_fraction(&self) -> Option<f64> {
        if self.edges_added == 0 {
            None
        } else {
            Some((self.war_edges + self.waw_edges) as f64 / self.edges_added as f64)
        }
    }

    /// Tasks still in flight (spawned but not yet executed, poisoned or
    /// cancelled).
    pub fn tasks_in_flight(&self) -> u64 {
        self.tasks_spawned
            .saturating_sub(self.tasks_executed)
            .saturating_sub(self.tasks_poisoned)
            .saturating_sub(self.tasks_cancelled)
    }

    /// Fraction of tracker shard-lock acquisitions that had to wait for
    /// another thread. `None` when the tracker was never touched.
    pub fn tracker_contention_rate(&self) -> Option<f64> {
        let total: u64 = self.tracker_shard_hits.iter().sum();
        if total == 0 {
            None
        } else {
            Some(self.tracker_lock_contention as f64 / total as f64)
        }
    }

    /// Fraction of fast-path-eligible registrations that completed through
    /// the optimistic single-shard path. `None` when no registration with
    /// accesses happened (hits + fallbacks account for every such
    /// registration while the fast path is enabled).
    pub fn tracker_fast_path_rate(&self) -> Option<f64> {
        let total = self.tracker_fast_path_hits + self.tracker_fast_path_fallbacks;
        if total == 0 {
            None
        } else {
            Some(self.tracker_fast_path_hits as f64 / total as f64)
        }
    }

    /// Fold another runtime's snapshot into this one — the aggregation a
    /// multi-runtime pool (one tenant of the service frontend, say) uses to
    /// report a single per-tenant figure. Every counter is summed; worker
    /// and shard counts add up; `tracker_shard_hits` are added element-wise
    /// when both pools have the same shard count and concatenated otherwise
    /// (the per-shard split is only meaningful within one tracker).
    pub fn merge(&mut self, other: &RuntimeStats) {
        self.workers += other.workers;
        self.tasks_spawned += other.tasks_spawned;
        self.tasks_executed += other.tasks_executed;
        self.tasks_panicked += other.tasks_panicked;
        self.edges_added += other.edges_added;
        self.raw_edges += other.raw_edges;
        self.war_edges += other.war_edges;
        self.waw_edges += other.waw_edges;
        self.dependences_seen += other.dependences_seen;
        self.renames += other.renames;
        self.chunk_renames += other.chunk_renames;
        self.renames_recycled += other.renames_recycled;
        self.rename_fallbacks += other.rename_fallbacks;
        self.renames_elided += other.renames_elided;
        self.rename_bytes_held += other.rename_bytes_held;
        self.immediately_ready += other.immediately_ready;
        self.taskwaits += other.taskwaits;
        self.taskwait_ons += other.taskwait_ons;
        self.sched_local_pops += other.sched_local_pops;
        self.sched_global_pops += other.sched_global_pops;
        self.sched_steals += other.sched_steals;
        self.sched_local_wakeups += other.sched_local_wakeups;
        self.sched_global_wakeups += other.sched_global_wakeups;
        self.sched_priority_pops += other.sched_priority_pops;
        self.sched_affinity_wakeups += other.sched_affinity_wakeups;
        self.sched_affinity_steals += other.sched_affinity_steals;
        self.task_nodes_recycled += other.task_nodes_recycled;
        self.task_nodes_allocated += other.task_nodes_allocated;
        self.access_inline_hits += other.access_inline_hits;
        self.access_inline_spills += other.access_inline_spills;
        self.spawn_body_spills += other.spawn_body_spills;
        self.replay_passes += other.replay_passes;
        self.replay_tasks += other.replay_tasks;
        self.tasks_poisoned += other.tasks_poisoned;
        self.tasks_cancelled += other.tasks_cancelled;
        self.tracker_shards += other.tracker_shards;
        self.tracker_lock_contention += other.tracker_lock_contention;
        self.tracker_fast_path_hits += other.tracker_fast_path_hits;
        self.tracker_fast_path_fallbacks += other.tracker_fast_path_fallbacks;
        if self.tracker_shard_hits.len() == other.tracker_shard_hits.len() {
            for (mine, theirs) in self
                .tracker_shard_hits
                .iter_mut()
                .zip(&other.tracker_shard_hits)
            {
                *mine += theirs;
            }
        } else {
            self.tracker_shard_hits
                .extend_from_slice(&other.tracker_shard_hits);
        }
    }

    /// Fraction of task-node acquisitions served from the slab free list —
    /// the recycler hit rate the allocation diet drives toward 1 in steady
    /// state. `None` before the first spawn.
    pub fn task_recycle_rate(&self) -> Option<f64> {
        let total = self.task_nodes_recycled + self.task_nodes_allocated;
        if total == 0 {
            None
        } else {
            Some(self.task_nodes_recycled as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_get() {
        let c = StatCounters::default();
        c.add(StatField::TasksSpawned, 3);
        c.add(StatField::TasksSpawned, 2);
        c.add(StatField::EdgesAdded, 7);
        assert_eq!(c.get(StatField::TasksSpawned), 5);
        assert_eq!(c.get(StatField::EdgesAdded), 7);
        assert_eq!(c.get(StatField::TasksExecuted), 0);
    }

    #[test]
    fn tracker_counters_and_contention_rate() {
        let c = TrackerCounters::new(4);
        c.hit(0);
        c.hit(0);
        c.hit(3);
        c.contended();
        assert_eq!(c.hits(), vec![2, 0, 0, 1]);
        assert_eq!(c.contention(), 1);
        let s = RuntimeStats {
            tracker_shard_hits: vec![2, 0, 0, 1],
            tracker_lock_contention: 1,
            ..Default::default()
        };
        assert!((s.tracker_contention_rate().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(RuntimeStats::default().tracker_contention_rate(), None);
    }

    #[test]
    fn fast_path_counters_and_rate() {
        let c = TrackerCounters::new(2);
        c.fast_hit();
        c.fast_hit();
        c.fast_hit();
        c.fast_fallback();
        assert_eq!(c.fast_hits(), 3);
        assert_eq!(c.fast_fallbacks(), 1);
        let s = RuntimeStats {
            tracker_fast_path_hits: 3,
            tracker_fast_path_fallbacks: 1,
            ..Default::default()
        };
        assert!((s.tracker_fast_path_rate().unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(RuntimeStats::default().tracker_fast_path_rate(), None);
    }

    #[test]
    fn merge_sums_counters_and_shard_hits() {
        let mut a = RuntimeStats {
            workers: 2,
            tasks_spawned: 10,
            replay_passes: 3,
            tracker_shards: 2,
            tracker_shard_hits: vec![4, 6],
            ..Default::default()
        };
        let b = RuntimeStats {
            workers: 1,
            tasks_spawned: 5,
            replay_passes: 1,
            tracker_shards: 2,
            tracker_shard_hits: vec![1, 2],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.workers, 3);
        assert_eq!(a.tasks_spawned, 15);
        assert_eq!(a.replay_passes, 4);
        assert_eq!(a.tracker_shards, 4);
        assert_eq!(a.tracker_shard_hits, vec![5, 8]);
        // Mismatched shard counts concatenate instead.
        let c = RuntimeStats {
            tracker_shard_hits: vec![7],
            ..Default::default()
        };
        a.merge(&c);
        assert_eq!(a.tracker_shard_hits, vec![5, 8, 7]);
    }

    #[test]
    fn locality_hit_rate() {
        let mut s = RuntimeStats::default();
        assert_eq!(s.locality_hit_rate(), None);
        s.sched_local_wakeups = 3;
        s.sched_global_wakeups = 1;
        assert!((s.locality_hit_rate().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn derived_metrics() {
        let s = RuntimeStats {
            tasks_spawned: 10,
            tasks_executed: 7,
            edges_added: 25,
            ..Default::default()
        };
        assert_eq!(s.tasks_in_flight(), 3);
        assert!((s.mean_edges_per_task() - 2.5).abs() < 1e-12);
        let empty = RuntimeStats::default();
        assert_eq!(empty.mean_edges_per_task(), 0.0);
        assert_eq!(empty.tasks_in_flight(), 0);
    }
}

//! Error types of the runtime.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the runtime API.
///
/// Most misuse (accessing undeclared data, writing through a read access) is
/// reported by panicking inside the offending task because that mirrors the
/// undefined-behaviour boundary of the original C pragmas while keeping Rust
/// memory safety; recoverable conditions are reported through this enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The runtime has already been shut down; no further tasks may be
    /// spawned.
    ShutDown,
    /// A task body panicked. The payload is the task name (if any) and a
    /// best-effort rendering of the panic message.
    TaskPanicked {
        /// Name given to the task at spawn time, if any.
        task: String,
        /// Panic payload rendered to a string when possible.
        message: String,
    },
    /// A configuration value was invalid (e.g. zero workers).
    InvalidConfig(String),
    /// A data handle was still shared when exclusive ownership was requested
    /// (e.g. [`crate::Runtime::into_inner`] while tasks still hold clones).
    StillShared,
    /// A contiguous whole-array view was requested on a **versioned**
    /// partition, whose chunks live in independent version buffers (e.g.
    /// [`crate::TaskContext::try_read_whole`]). Use per-chunk access or the
    /// copying [`crate::TaskContext::gather_whole`] /
    /// [`crate::TaskContext::scatter_whole`] instead.
    VersionedWhole,
    /// Part of the task graph was poisoned: a task panicked or was
    /// cancelled, and every transitive successor was retired without running
    /// (see the README's "Failure semantics"). `origin` is the first task
    /// that introduced the poison. Surfaced by
    /// [`crate::Runtime::try_taskwait`] and the `try_into_*` unwrappers so
    /// partially computed results are never committed silently.
    Poisoned {
        /// The panicked or cancelled task the poison originated from.
        origin: crate::TaskId,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShutDown => write!(f, "runtime has been shut down"),
            Error::TaskPanicked { task, message } => {
                write!(f, "task `{task}` panicked: {message}")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::StillShared => write!(f, "data handle is still shared"),
            Error::VersionedWhole => write!(
                f,
                "versioned partition has no contiguous whole-array storage; \
                 use per-chunk access, gather_whole or scatter_whole"
            ),
            Error::Poisoned { origin } => write!(
                f,
                "task graph poisoned by {origin}: its transitive successors \
                 were retired without running"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shutdown() {
        assert_eq!(Error::ShutDown.to_string(), "runtime has been shut down");
    }

    #[test]
    fn display_task_panicked() {
        let e = Error::TaskPanicked {
            task: "t".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "task `t` panicked: boom");
    }

    #[test]
    fn display_invalid_config() {
        let e = Error::InvalidConfig("workers must be > 0".into());
        assert!(e.to_string().contains("workers must be > 0"));
    }

    #[test]
    fn display_poisoned() {
        let e = Error::Poisoned {
            origin: crate::TaskId::fresh(),
        };
        assert!(e.to_string().contains("poisoned"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}

//! Task descriptors and their lifecycle.
//!
//! A *task* in OmpSs is a deferred function call annotated with the data
//! accesses it performs. Internally every spawned task is represented by a
//! [`TaskNode`] that carries the closure to run, the declared accesses, a
//! count of unresolved predecessors, and the list of successors to wake up on
//! completion.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::access::Access;
use crate::rename::VersionTicket;
use crate::runtime::TaskContext;

/// Globally unique task identifier (monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

static NEXT_TASK_ID: AtomicU64 = AtomicU64::new(1);

impl TaskId {
    pub(crate) fn fresh() -> Self {
        TaskId(NEXT_TASK_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Raw numeric value of the id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Scheduling priority of a task. Higher values are scheduled before lower
/// values when both are ready (the OmpSs `priority` clause). The default is
/// `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct TaskPriority(pub i32);

/// Observable states of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TaskState {
    /// Spawned, still waiting for at least one predecessor.
    WaitingDeps = 0,
    /// All dependencies satisfied; queued for execution.
    Ready = 1,
    /// Currently executing on a worker.
    Running = 2,
    /// Finished executing (successfully or by panicking).
    Completed = 3,
}

impl TaskState {
    fn from_u8(v: u8) -> TaskState {
        match v {
            0 => TaskState::WaitingDeps,
            1 => TaskState::Ready,
            2 => TaskState::Running,
            _ => TaskState::Completed,
        }
    }
}

/// The closure type stored in a task node.
pub(crate) type TaskBody = Box<dyn FnOnce(&TaskContext<'_>) + Send + 'static>;

/// Tracks the number of live direct children of a task (or of the main
/// program context). `taskwait` waits for this to reach zero.
#[derive(Debug, Default)]
pub(crate) struct ChildTracker {
    live: AtomicUsize,
}

impl ChildTracker {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ChildTracker::default())
    }

    pub(crate) fn add_child(&self) {
        self.live.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn child_done(&self) {
        let prev = self.live.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "child_done without matching add_child");
    }

    pub(crate) fn live_children(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }
}

/// Successor bookkeeping, protected by a mutex so that edge insertion and
/// completion cannot race.
#[derive(Default)]
pub(crate) struct NodeLinks {
    /// Set once the task has finished executing and its successors have been
    /// notified. Edges may no longer be added afterwards.
    pub completed: bool,
    /// Tasks that must be notified when this task completes.
    pub successors: Vec<Arc<TaskNode>>,
}

/// Internal representation of a spawned task.
pub(crate) struct TaskNode {
    /// Unique id.
    pub id: TaskId,
    /// Optional human-readable name (used in traces and panics).
    pub name: Option<Arc<str>>,
    /// Scheduling priority.
    pub priority: TaskPriority,
    /// Declared data accesses (immutable after creation).
    pub accesses: Arc<[Access]>,
    /// The closure to execute; taken (and dropped) exactly once.
    pub body: Mutex<Option<TaskBody>>,
    /// Number of unresolved predecessors plus one registration sentinel.
    pub pending: AtomicUsize,
    /// Successor list + completion flag.
    pub links: Mutex<NodeLinks>,
    /// Live direct children of this task (for nested `taskwait`).
    pub children: Arc<ChildTracker>,
    /// The child tracker of whoever spawned this task; decremented on
    /// completion.
    pub parent_children: Arc<ChildTracker>,
    /// Coarse state for introspection / assertions.
    pub state: AtomicU8,
    /// Number of predecessor edges that were actually registered (stats).
    pub in_edges: AtomicUsize,
    /// Release hooks for the data versions this task is bound to (one per
    /// access that resolved against a versioned handle); drained exactly
    /// once on completion.
    pub tickets: Mutex<Vec<Box<dyn VersionTicket>>>,
    /// Set once the completion path has retired this task from the sharded
    /// dependence tracker, making retirement idempotent (see
    /// [`TaskNode::mark_retired`]).
    pub retired: AtomicBool,
}

// Safety: `TaskNode` stops being auto-Send/Sync because each version-bound
// `Access` carries the raw storage pointer of the version it bound (resolved
// once at bind time — see `crate::access`). Sharing those pointers across
// workers is sound: the pointed-to version storage is address-stable and kept
// alive by the `tickets` this node holds until completion, and dereferencing
// is gated by the `TaskContext` guard rules (declared-access checks plus
// dependence ordering of conflicting tasks). Everything else in the node is
// already thread-safe (atomics, mutexes, `Arc`s).
unsafe impl Send for TaskNode {}
unsafe impl Sync for TaskNode {}

impl TaskNode {
    /// Create a node with the registration sentinel held (pending = 1).
    pub(crate) fn new(
        name: Option<Arc<str>>,
        priority: TaskPriority,
        accesses: Arc<[Access]>,
        body: TaskBody,
        parent_children: Arc<ChildTracker>,
    ) -> Arc<Self> {
        Arc::new(TaskNode {
            id: TaskId::fresh(),
            name,
            priority,
            accesses,
            body: Mutex::new(Some(body)),
            pending: AtomicUsize::new(1),
            links: Mutex::new(NodeLinks::default()),
            children: ChildTracker::new(),
            parent_children,
            state: AtomicU8::new(TaskState::WaitingDeps as u8),
            in_edges: AtomicUsize::new(0),
            tickets: Mutex::new(Vec::new()),
            retired: AtomicBool::new(false),
        })
    }

    /// Claim the right to retire this task from the dependence history.
    /// Returns `true` exactly once; later callers see `false` and skip the
    /// shard walk.
    pub(crate) fn mark_retired(&self) -> bool {
        !self.retired.swap(true, Ordering::AcqRel)
    }

    /// Drain the version-release hooks (called once, at completion).
    pub(crate) fn take_tickets(&self) -> Vec<Box<dyn VersionTicket>> {
        std::mem::take(&mut *self.tickets.lock())
    }

    /// Current coarse state.
    pub(crate) fn task_state(&self) -> TaskState {
        TaskState::from_u8(self.state.load(Ordering::SeqCst))
    }

    pub(crate) fn set_state(&self, s: TaskState) {
        self.state.store(s as u8, Ordering::SeqCst);
    }

    /// Whether the task has finished executing.
    pub(crate) fn is_completed(&self) -> bool {
        self.task_state() == TaskState::Completed
    }

    /// Name for diagnostics.
    pub(crate) fn display_name(&self) -> String {
        match &self.name {
            Some(n) => n.to_string(),
            None => format!("{}", self.id),
        }
    }
}

impl std::fmt::Debug for TaskNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskNode")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("pending", &self.pending.load(Ordering::SeqCst))
            .field("state", &self.task_state())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_node() -> Arc<TaskNode> {
        TaskNode::new(
            Some("dummy".into()),
            TaskPriority(2),
            Arc::from(Vec::new().into_boxed_slice()),
            Box::new(|_ctx| {}),
            ChildTracker::new(),
        )
    }

    #[test]
    fn task_ids_are_unique_and_increasing() {
        let a = TaskId::fresh();
        let b = TaskId::fresh();
        assert!(b.raw() > a.raw());
        assert_eq!(format!("{a}"), format!("t{}", a.raw()));
    }

    #[test]
    fn new_node_starts_waiting_with_sentinel() {
        let n = dummy_node();
        assert_eq!(n.task_state(), TaskState::WaitingDeps);
        assert_eq!(n.pending.load(Ordering::SeqCst), 1);
        assert!(!n.is_completed());
        assert_eq!(n.display_name(), "dummy");
        assert_eq!(n.priority, TaskPriority(2));
    }

    #[test]
    fn unnamed_node_displays_id() {
        let n = TaskNode::new(
            None,
            TaskPriority::default(),
            Arc::from(Vec::new().into_boxed_slice()),
            Box::new(|_ctx| {}),
            ChildTracker::new(),
        );
        assert_eq!(n.display_name(), format!("{}", n.id));
    }

    #[test]
    fn state_transitions() {
        let n = dummy_node();
        n.set_state(TaskState::Ready);
        assert_eq!(n.task_state(), TaskState::Ready);
        n.set_state(TaskState::Running);
        assert_eq!(n.task_state(), TaskState::Running);
        n.set_state(TaskState::Completed);
        assert!(n.is_completed());
    }

    #[test]
    fn child_tracker_counts() {
        let c = ChildTracker::new();
        assert_eq!(c.live_children(), 0);
        c.add_child();
        c.add_child();
        assert_eq!(c.live_children(), 2);
        c.child_done();
        assert_eq!(c.live_children(), 1);
        c.child_done();
        assert_eq!(c.live_children(), 0);
    }

    #[test]
    fn mark_retired_claims_exactly_once() {
        let n = dummy_node();
        assert!(n.mark_retired());
        assert!(!n.mark_retired());
        assert!(!n.mark_retired());
    }

    #[test]
    fn priority_ordering() {
        assert!(TaskPriority(3) > TaskPriority(0));
        assert!(TaskPriority(-1) < TaskPriority::default());
    }

    #[test]
    fn debug_format_includes_id_and_state() {
        let n = dummy_node();
        let s = format!("{n:?}");
        assert!(s.contains("TaskNode"));
        assert!(s.contains("WaitingDeps"));
    }
}

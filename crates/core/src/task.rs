//! Task descriptors and their lifecycle.
//!
//! A *task* in OmpSs is a deferred function call annotated with the data
//! accesses it performs. Internally every spawned task is represented by a
//! [`TaskNode`] that carries the closure to run, the declared accesses, a
//! count of unresolved predecessors, and the list of successors to wake up on
//! completion.
//!
//! ## The node slab
//!
//! Fine-grained workloads spawn nodes faster than their bodies run, so node
//! construction sits squarely on the insertion hot path. Two mechanisms make
//! the steady-state spawn of a ≤2-access task on plain (unversioned)
//! handles **allocation-free** (versioned bindings still box one version
//! ticket each):
//!
//! * **Inline storage.** Accesses live in an [`AccessVec`] (≤2 inline, heap
//!   beyond), and small task closures (≤ [`INLINE_BODY_BYTES`] bytes,
//!   alignment ≤ 16) are written into a [`BodySlot`] buffer inside the node
//!   itself instead of a fresh `Box`.
//! * **Recycling.** Retired nodes return to a per-runtime [`TaskSlab`]: when
//!   the executing worker holds the *last* reference to a completed node
//!   (verified with `Arc::get_mut`, so reuse is provably exclusive), the
//!   node is reset — the successor-list capacity staying warm for its next
//!   life — and pushed onto a lock-free free list (the vendored crossbeam
//!   `Injector`). The next spawn pops it back instead of allocating.
//!
//! Staleness is guarded twice over: [`TaskId`]s are minted from a global
//! never-reused serial (an id can therefore never alias across reuses —
//! tracker tombstones and trace events stay ABA-proof), and each node
//! carries a [`TaskNode::generation`] reuse counter, bumped on every
//! recycle, that the worker asserts against mid-execution and the trace
//! records per spawn.

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::deque::{Injector, Steal};
use parking_lot::Mutex;

use crate::access::AccessVec;
use crate::rename::VersionTicket;
use crate::runtime::TaskContext;

/// Globally unique task identifier (monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

static NEXT_TASK_ID: AtomicU64 = AtomicU64::new(1);

impl TaskId {
    pub(crate) fn fresh() -> Self {
        TaskId(NEXT_TASK_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Raw numeric value of the id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Scheduling priority of a task. Higher values are scheduled before lower
/// values when both are ready (the OmpSs `priority` clause). The default is
/// `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct TaskPriority(pub i32);

/// Observable states of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TaskState {
    /// Spawned, still waiting for at least one predecessor.
    WaitingDeps = 0,
    /// All dependencies satisfied; queued for execution.
    Ready = 1,
    /// Currently executing on a worker.
    Running = 2,
    /// Finished executing (successfully or by panicking).
    Completed = 3,
}

impl TaskState {
    fn from_u8(v: u8) -> TaskState {
        match v {
            0 => TaskState::WaitingDeps,
            1 => TaskState::Ready,
            2 => TaskState::Running,
            _ => TaskState::Completed,
        }
    }
}

/// Boxed fallback for task closures too large (or too aligned) for the
/// node's inline body buffer.
pub(crate) type BoxedBody = Box<dyn FnOnce(&TaskContext<'_>) + Send + 'static>;

/// Bytes of closure storage inlined in every [`TaskNode`] (see [`BodySlot`]).
/// 64 bytes hold the dominant capture shapes — a few handle clones plus loop
/// indices — while keeping the node compact.
pub(crate) const INLINE_BODY_BYTES: usize = 64;

/// Alignment of the inline body buffer; closures needing more fall back to a
/// `Box`.
const INLINE_BODY_ALIGN: usize = 16;

/// Raw closure bytes, aligned for any capture the inline path accepts.
#[repr(align(16))]
#[derive(Clone, Copy)]
struct InlineBuf([MaybeUninit<u8>; INLINE_BODY_BYTES]);

impl InlineBuf {
    const fn uninit() -> Self {
        InlineBuf([const { MaybeUninit::uninit() }; INLINE_BODY_BYTES])
    }
}

type CallThunk = unsafe fn(*mut u8, &TaskContext<'_>);
type DropThunk = unsafe fn(*mut u8);

unsafe fn call_thunk<F: FnOnce(&TaskContext<'_>)>(p: *mut u8, ctx: &TaskContext<'_>) {
    // SAFETY: the caller guarantees `p` holds an initialised `F` that is
    // consumed exactly once by this read.
    let f = unsafe { (p as *mut F).read() };
    f(ctx)
}

unsafe fn drop_thunk<F>(p: *mut u8) {
    // SAFETY: as in `call_thunk`, but the closure is dropped unrun.
    unsafe { (p as *mut F).drop_in_place() }
}

/// The closure storage of one task: small closures are written into the
/// node-resident inline buffer (no allocation), everything else goes in a
/// `Box`. The slot is re-armed in place when the node is recycled.
pub(crate) struct BodySlot {
    buf: InlineBuf,
    /// Set while `buf` holds a live (not yet taken) closure.
    inline: Option<(CallThunk, DropThunk)>,
    boxed: Option<BoxedBody>,
}

impl Default for BodySlot {
    fn default() -> Self {
        BodySlot {
            buf: InlineBuf::uninit(),
            inline: None,
            boxed: None,
        }
    }
}

impl BodySlot {
    /// Store `f`, inline when it fits within `limit` bytes (the effective
    /// threshold from [`RuntimeConfig::with_inline_body_bytes`](crate::RuntimeConfig::with_inline_body_bytes),
    /// never above the [`INLINE_BODY_BYTES`] buffer). Returns `true` when the
    /// closure spilled to a `Box` — the caller feeds the `spawn_body_spills`
    /// counter so workloads can see when the inline budget is too small.
    pub(crate) fn set<F>(&mut self, f: F, limit: usize) -> bool
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        debug_assert!(self.is_empty(), "body slot armed twice");
        if std::mem::size_of::<F>() <= limit.min(INLINE_BODY_BYTES)
            && std::mem::align_of::<F>() <= INLINE_BODY_ALIGN
        {
            // SAFETY: the buffer is large and aligned enough for `F`, and the
            // thunks recorded alongside are instantiated for this exact `F`.
            unsafe { (self.buf.0.as_mut_ptr() as *mut F).write(f) };
            self.inline = Some((call_thunk::<F>, drop_thunk::<F>));
            false
        } else {
            self.boxed = Some(Box::new(f));
            true
        }
    }

    /// Whether the slot currently holds no closure.
    pub(crate) fn is_empty(&self) -> bool {
        self.inline.is_none() && self.boxed.is_none()
    }

    /// Whether the armed closure lives inline (diagnostics / tests).
    #[cfg(test)]
    pub(crate) fn is_inline(&self) -> bool {
        self.inline.is_some()
    }

    /// Take the closure out for execution. Returns `None` if the slot is
    /// empty (body already taken).
    pub(crate) fn take(&mut self) -> Option<TakenBody> {
        if let Some((call, drop)) = self.inline.take() {
            // The buffer bytes move into the taken body; `inline` is already
            // cleared so the slot no longer owns the closure.
            return Some(TakenBody {
                inline: Some((self.buf, call, drop)),
                boxed: None,
            });
        }
        self.boxed.take().map(|b| TakenBody {
            inline: None,
            boxed: Some(b),
        })
    }

    /// Drop an armed-but-never-run closure (runtime shutdown paths).
    pub(crate) fn clear(&mut self) {
        if let Some((_, drop)) = self.inline.take() {
            // SAFETY: the buffer held a live closure; `inline` is cleared so
            // this drop happens exactly once.
            unsafe { drop(self.buf.0.as_mut_ptr() as *mut u8) };
        }
        self.boxed = None;
    }
}

impl Drop for BodySlot {
    fn drop(&mut self) {
        self.clear();
    }
}

/// A closure moved out of a [`BodySlot`], ready to run exactly once.
/// Dropping it unrun drops the closure (and its captures) cleanly.
pub(crate) struct TakenBody {
    inline: Option<(InlineBuf, CallThunk, DropThunk)>,
    boxed: Option<BoxedBody>,
}

impl TakenBody {
    /// Execute the closure.
    pub(crate) fn run(mut self, ctx: &TaskContext<'_>) {
        if let Some((mut buf, call, _)) = self.inline.take() {
            // SAFETY: the buffer holds the closure moved out of the slot;
            // `inline` is cleared first so `Drop` cannot double-free, even
            // if the closure panics.
            unsafe { call(buf.0.as_mut_ptr() as *mut u8, ctx) }
        } else if let Some(boxed) = self.boxed.take() {
            boxed(ctx)
        }
    }
}

impl Drop for TakenBody {
    fn drop(&mut self) {
        if let Some((mut buf, _, drop)) = self.inline.take() {
            // SAFETY: the closure was never run; drop it in place once.
            unsafe { drop(buf.0.as_mut_ptr() as *mut u8) }
        }
    }
}

/// Tracks the number of live direct children of a task (or of the main
/// program context). `taskwait` waits for this to reach zero.
#[derive(Debug, Default)]
pub(crate) struct ChildTracker {
    live: AtomicUsize,
}

impl ChildTracker {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ChildTracker::default())
    }

    pub(crate) fn add_child(&self) {
        self.live.fetch_add(1, Ordering::SeqCst);
    }

    /// Register `n` children with one atomic add — the batch-spawn
    /// (template replay) counterpart of [`ChildTracker::add_child`].
    pub(crate) fn add_children(&self, n: usize) {
        if n != 0 {
            self.live.fetch_add(n, Ordering::SeqCst);
        }
    }

    pub(crate) fn child_done(&self) {
        let prev = self.live.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "child_done without matching add_child");
    }

    pub(crate) fn live_children(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }
}

/// Successor bookkeeping, protected by a mutex so that edge insertion and
/// completion cannot race.
#[derive(Default)]
pub(crate) struct NodeLinks {
    /// Set once the task has finished executing and its successors have been
    /// notified. Edges may no longer be added afterwards.
    pub completed: bool,
    /// Tasks that must be notified when this task completes.
    pub successors: Vec<Arc<TaskNode>>,
}

/// Internal representation of a spawned task.
///
/// Nodes are re-initialised and reused through the [`TaskSlab`]; every field
/// written per spawn is set either through `Arc::get_mut` (provably unique
/// ownership — fresh nodes and nodes just popped from the free list) or
/// through its own synchronisation (atomics, mutexes).
pub(crate) struct TaskNode {
    /// Unique id, minted from a global never-reused serial (re-minted on
    /// every slab reuse, so a stale id can never alias a recycled node).
    pub id: TaskId,
    /// Optional human-readable name (used in traces and panics).
    pub name: Option<Arc<str>>,
    /// Scheduling priority.
    pub priority: TaskPriority,
    /// Declared data accesses (immutable after publication; ≤2 inline).
    pub accesses: AccessVec,
    /// Times this node's storage has been recycled (0 for a fresh node);
    /// recorded in `TraceEvent::Spawned` and asserted stable across one
    /// execution.
    pub generation: u32,
    /// The closure to execute; taken (and dropped) exactly once.
    pub body: Mutex<BodySlot>,
    /// Number of unresolved predecessors plus one registration sentinel.
    pub pending: AtomicUsize,
    /// Successor list + completion flag.
    pub links: Mutex<NodeLinks>,
    /// Live direct children of this task (for nested `taskwait`).
    pub children: Arc<ChildTracker>,
    /// The child tracker of whoever spawned this task; decremented on
    /// completion.
    pub parent_children: Arc<ChildTracker>,
    /// Coarse state for introspection / assertions.
    pub state: AtomicU8,
    /// Number of predecessor edges that were actually registered (stats).
    pub in_edges: AtomicUsize,
    /// 1-based replay pass of the [`GraphTemplate`](crate::capture) batch
    /// this node was stamped by; 0 for ordinary spawns (including the
    /// capture iteration itself). Written under `Arc::get_mut` right after
    /// acquisition, exposed to bodies as
    /// [`TaskContext::replay_pass`](crate::TaskContext::replay_pass).
    pub replay_pass: u64,
    /// Release hooks for the data versions this task is bound to (one per
    /// access that resolved against a versioned handle); drained exactly
    /// once on completion.
    pub tickets: Mutex<Vec<Box<dyn VersionTicket>>>,
    /// Set once the completion path has retired this task from the sharded
    /// dependence tracker, making retirement idempotent (see
    /// [`TaskNode::mark_retired`]).
    pub retired: AtomicBool,
    /// Raw id of the task whose failure poisoned this node (`0` = clean —
    /// ids are minted from 1). A poisoned node is dequeued and retired
    /// without running its body, propagating the same origin to its own
    /// successors; set at most once, under the poisoning predecessor's
    /// links lock (see [`crate::graph::complete_into_poison`]).
    pub poison: AtomicU64,
    /// Cancellation flag of the [`CancelToken`](crate::CancelToken) scope
    /// this task was spawned under (`None` outside any scope). Written under
    /// `Arc::get_mut` before publication, like the other per-spawn fields;
    /// checked by the worker at execute time.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Slab-accounting token: present while the node is checked out of (or
    /// was never in) a slab's free list, dropped — decrementing the slab's
    /// outstanding count — when the node returns to the free list or is
    /// deallocated. `None` for nodes built outside a slab (tests, benches).
    live_token: Option<LiveToken>,
    /// Dense per-epoch index assigned by the race oracle
    /// ([`crate::dcheck`]) at registration; [`crate::dcheck::NO_INDEX`]
    /// when dcheck is off or the node was recycled since. All clock state
    /// lives centrally, so this one word is the node's entire dcheck
    /// footprint.
    pub dcheck_index: AtomicU64,
}

// SAFETY: `TaskNode` stops being auto-Send/Sync because each version-bound
// `Access` carries the raw storage pointer of the version it bound (resolved
// once at bind time — see `crate::access`), and `BodySlot` stores a closure
// as raw bytes. Sharing the pointers across workers is sound: the pointed-to
// version storage is address-stable and kept alive by the `tickets` this
// node holds until completion, and dereferencing is gated by the
// `TaskContext` guard rules (declared-access checks plus dependence ordering
// of conflicting tasks). The body bytes always represent a `Send + 'static`
// closure (enforced by `BodySlot::set`'s bounds). Everything else in the
// node is already thread-safe (atomics, mutexes, `Arc`s), and the per-spawn
// re-initialised plain fields (`id`, `name`, `accesses`, …) are only ever
// written through `Arc::get_mut`, i.e. under provably unique ownership.
unsafe impl Send for TaskNode {}
unsafe impl Sync for TaskNode {}

impl TaskNode {
    /// Create a fresh node with the registration sentinel held (pending = 1).
    /// `spilled` reports whether the body missed the inline buffer.
    pub(crate) fn new<F>(
        name: Option<Arc<str>>,
        priority: TaskPriority,
        accesses: AccessVec,
        body: F,
        parent_children: Arc<ChildTracker>,
        inline_limit: usize,
        spilled: &mut bool,
    ) -> Arc<Self>
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        Arc::new(Self::build(
            name,
            priority,
            accesses,
            body,
            parent_children,
            inline_limit,
            spilled,
        ))
    }

    /// As [`TaskNode::new`] but returning the plain value, for callers (the
    /// slab's fresh-allocation path) that still need to set owner-only
    /// fields before sharing the node behind an `Arc`.
    pub(crate) fn build<F>(
        name: Option<Arc<str>>,
        priority: TaskPriority,
        accesses: AccessVec,
        body: F,
        parent_children: Arc<ChildTracker>,
        inline_limit: usize,
        spilled: &mut bool,
    ) -> Self
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        let mut slot = BodySlot::default();
        *spilled = slot.set(body, inline_limit);
        TaskNode {
            id: TaskId::fresh(),
            name,
            priority,
            accesses,
            generation: 0,
            body: Mutex::new(slot),
            pending: AtomicUsize::new(1),
            // A little successor capacity from birth: `complete_into` drains
            // in place and recycling keeps the buffer, so this makes the
            // first few edge insertions through any node allocation-free no
            // matter which batch position a recycled node lands in
            // (`tests/spawn_alloc.rs` counts a warmed window).
            links: Mutex::new(NodeLinks {
                completed: false,
                successors: Vec::with_capacity(4),
            }),
            children: ChildTracker::new(),
            parent_children,
            state: AtomicU8::new(TaskState::WaitingDeps as u8),
            in_edges: AtomicUsize::new(0),
            replay_pass: 0,
            tickets: Mutex::new(Vec::new()),
            retired: AtomicBool::new(false),
            poison: AtomicU64::new(0),
            cancel: None,
            live_token: None,
            dcheck_index: AtomicU64::new(crate::dcheck::NO_INDEX),
        }
    }

    /// Re-arm a recycled node for its next task. The caller holds the only
    /// reference (`&mut` through `Arc::get_mut`), so plain field writes are
    /// unique; the node was reset by [`TaskSlab::try_recycle`] before it
    /// entered the free list. (One argument per re-armed field — splitting
    /// the parameter list would only add a struct the hot path then builds.)
    #[allow(clippy::too_many_arguments)]
    fn reinit<F>(
        &mut self,
        name: Option<Arc<str>>,
        priority: TaskPriority,
        accesses: AccessVec,
        tickets: Vec<Box<dyn VersionTicket>>,
        body: F,
        parent_children: Arc<ChildTracker>,
        live_token: LiveToken,
        inline_limit: usize,
        spilled: &mut bool,
    ) where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        debug_assert_eq!(self.pending.load(Ordering::Relaxed), 1);
        debug_assert_eq!(self.task_state(), TaskState::WaitingDeps);
        debug_assert!(self.body.get_mut().is_empty());
        self.id = TaskId::fresh();
        self.name = name;
        self.priority = priority;
        self.accesses = accesses;
        self.replay_pass = 0;
        *spilled = self.body.get_mut().set(body, inline_limit);
        if !tickets.is_empty() {
            // Move the hooks into the node-resident vector, which kept its
            // capacity across the in-place release at last completion.
            self.tickets.get_mut().extend(tickets);
        }
        self.parent_children = parent_children;
        // The child tracker is reused when nothing else holds it; children
        // of the node's previous task may legitimately outlive their parent
        // and still hold (and later decrement) the old tracker.
        if let Some(children) = Arc::get_mut(&mut self.children) {
            debug_assert_eq!(children.live_children(), 0);
        } else {
            self.children = ChildTracker::new();
        }
        self.live_token = Some(live_token);
    }

    /// Reset a just-completed node for reuse. The successor-list capacity is
    /// kept warm (it survives `reinit` — the wakeup path drains it in
    /// place); the access and ticket storage is merely dropped here, since
    /// the next task moves its own builder-owned vectors in. Called with
    /// the only reference; `detached` replaces the stale parent pointer so
    /// a parked node pins nothing of its previous task. Returns the
    /// accounting token to drop.
    fn reset_for_reuse(&mut self, detached: &Arc<ChildTracker>) -> (Option<LiveToken>, Arc<ChildTracker>) {
        debug_assert!(self.retired.load(Ordering::Relaxed) || self.accesses.is_empty());
        self.name = None;
        self.accesses.clear();
        self.body.get_mut().clear();
        debug_assert!(self.tickets.get_mut().is_empty(), "tickets released at completion");
        self.tickets.get_mut().clear();
        // Hand the previous parent's child tracker back to the caller (the
        // worker still owes it a `child_done`) and point the parked node at
        // the slab's detached placeholder: the free list must not keep a
        // real parent's tracker alive, nor keep the parent's own node from
        // reusing it via `Arc::get_mut`. The placeholder clone touches only
        // slab-private state, so no sibling-contended line is involved.
        let parent = std::mem::replace(&mut self.parent_children, detached.clone());
        let links = self.links.get_mut();
        debug_assert!(links.completed, "recycling a node that never completed");
        debug_assert!(links.successors.is_empty(), "successors drained at completion");
        links.completed = false;
        links.successors.clear();
        self.pending.store(1, Ordering::Relaxed);
        self.state
            .store(TaskState::WaitingDeps as u8, Ordering::Relaxed);
        self.in_edges.store(0, Ordering::Relaxed);
        self.retired.store(false, Ordering::Relaxed);
        self.poison.store(0, Ordering::Relaxed);
        self.cancel = None;
        self.dcheck_index
            .store(crate::dcheck::NO_INDEX, Ordering::Relaxed);
        self.generation = self.generation.wrapping_add(1);
        (self.live_token.take(), parent)
    }

    /// Claim the right to retire this task from the dependence history.
    /// Returns `true` exactly once; later callers see `false` and skip the
    /// shard walk.
    pub(crate) fn mark_retired(&self) -> bool {
        !self.retired.swap(true, Ordering::AcqRel)
    }

    /// Poison this node with `origin` unless it is already poisoned (the
    /// first origin wins, so a diamond of failing predecessors reports one
    /// stable culprit).
    pub(crate) fn poison_with(&self, origin: TaskId) {
        let _ = self
            .poison
            .compare_exchange(0, origin.0, Ordering::AcqRel, Ordering::Acquire);
    }

    /// The origin this node was poisoned with, if any.
    pub(crate) fn poison_origin(&self) -> Option<TaskId> {
        match self.poison.load(Ordering::Acquire) {
            0 => None,
            raw => Some(TaskId(raw)),
        }
    }

    /// Whether the cancel scope this task was spawned under (if any) has
    /// been cancelled.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    /// Release the version-binding hooks in place (called once, at
    /// completion), keeping the vector's capacity for the node's next life.
    /// Returns how many tickets were released, so the caller can balance
    /// the rename pool's bind/release ledger (see [`crate::Runtime::audit`]).
    pub(crate) fn release_tickets(&self) -> usize {
        let mut tickets = self.tickets.lock();
        let released = tickets.len();
        for ticket in tickets.drain(..) {
            ticket.release();
        }
        released
    }

    /// Current coarse state.
    pub(crate) fn task_state(&self) -> TaskState {
        TaskState::from_u8(self.state.load(Ordering::SeqCst))
    }

    pub(crate) fn set_state(&self, s: TaskState) {
        self.state.store(s as u8, Ordering::SeqCst);
    }

    /// Whether the task has finished executing.
    pub(crate) fn is_completed(&self) -> bool {
        self.task_state() == TaskState::Completed
    }

    /// Name for diagnostics.
    pub(crate) fn display_name(&self) -> String {
        match &self.name {
            Some(n) => n.to_string(),
            None => format!("{}", self.id),
        }
    }
}

impl std::fmt::Debug for TaskNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskNode")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("pending", &self.pending.load(Ordering::SeqCst))
            .field("state", &self.task_state())
            .field("generation", &self.generation)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// TaskSlab: the per-runtime node recycler
// ---------------------------------------------------------------------------

/// Default bound on the number of retired nodes a runtime keeps for reuse.
pub(crate) const DEFAULT_TASK_SLAB_CAPACITY: usize = 4096;

/// Bound on each worker-local free stack. Small on purpose: the local stack
/// only has to cover a worker's spawn-from-body burst between completions;
/// everything beyond overflows to the shared injector, which is what keeps
/// spawner threads (which never recycle) fed.
pub(crate) const LOCAL_FREE_STACK_CAP: usize = 64;

/// Shared slab accounting counters (separate from the slab so each node can
/// hold a handle and decrement on its final drop).
#[derive(Debug, Default)]
struct SlabCounters {
    /// Nodes currently checked out: acquired and neither returned to the
    /// free list nor deallocated.
    outstanding: AtomicUsize,
}

/// RAII share of a slab's outstanding-node count: created per acquisition,
/// dropped when the node returns to the free list or is deallocated.
struct LiveToken {
    counters: Arc<SlabCounters>,
}

impl Drop for LiveToken {
    fn drop(&mut self) {
        let prev = self.counters.outstanding.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "slab outstanding count underflow");
    }
}

/// Point-in-time accounting of a runtime's task-node slab, from
/// [`Runtime::task_slab_diagnostics`](crate::Runtime::task_slab_diagnostics).
/// After a quiescent `taskwait` with no other threads spawning,
/// `outstanding` reads zero — anything else is a node leak (the
/// tracker-diagnostics drain check, applied to nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSlabDiagnostics {
    /// Nodes allocated fresh from the heap (monotonic).
    pub allocated: u64,
    /// Acquisitions served from the free list instead of the heap
    /// (monotonic).
    pub recycled: u64,
    /// Nodes currently parked in the free list.
    pub free: usize,
    /// Nodes checked out right now: allocated or recycled, and neither back
    /// in the free list nor deallocated. Zero after a drained `taskwait`.
    pub outstanding: usize,
}

impl TaskSlabDiagnostics {
    /// Fraction of acquisitions served from the free list. `None` before the
    /// first acquisition.
    pub fn recycle_rate(&self) -> Option<f64> {
        let total = self.allocated + self.recycled;
        if total == 0 {
            None
        } else {
            Some(self.recycled as f64 / total as f64)
        }
    }
}

/// The per-runtime task-node recycler: a bounded free list of retired nodes.
///
/// The free list is the (vendored) crossbeam `Injector`, so pushes and pops
/// are lock-free with the real crate and remain correct with the in-tree
/// mutex stand-in. Every `Arc` in the free list is *unique* by construction
/// — a node is only pushed after `Arc::get_mut` proved the worker held the
/// last reference — which is what makes re-initialising plain fields on
/// reuse safe without any interior mutability.
pub(crate) struct TaskSlab {
    free: Injector<Arc<TaskNode>>,
    /// Per-worker free stacks, indexed by worker id: a worker recycles into
    /// (and its in-body spawns acquire from) its own stack first, touching no
    /// shared line. Each mutex is taken by its own worker on the hot path and
    /// only by rare diagnostics reads otherwise, so it is uncontended in
    /// steady state; overflow goes to the shared `free` injector, mirroring
    /// the deque/injector split of the scheduler.
    locals: Box<[Mutex<Vec<Arc<TaskNode>>>]>,
    /// Bound on the free list; 0 disables recycling entirely
    /// ([`RuntimeConfig::with_task_recycler`](crate::RuntimeConfig::with_task_recycler)).
    capacity: usize,
    /// Approximate free-list length (push/pop race only costs a slot or two
    /// of the bound). Tracks the shared injector only; the locals are bounded
    /// by `LOCAL_FREE_STACK_CAP` each.
    free_len: AtomicUsize,
    allocated: AtomicU64,
    recycled: AtomicU64,
    counters: Arc<SlabCounters>,
    /// Effective inline-body threshold
    /// ([`RuntimeConfig::with_inline_body_bytes`](crate::RuntimeConfig::with_inline_body_bytes)).
    inline_limit: usize,
    /// Placeholder parent tracker parked nodes point at, so the free list
    /// never pins a real parent's `ChildTracker`.
    detached: Arc<ChildTracker>,
}

impl TaskSlab {
    /// Create a slab keeping at most `capacity` retired nodes (0 = recycling
    /// off), with one local free stack per worker and bodies inlined up to
    /// `inline_limit` bytes.
    pub(crate) fn new(capacity: usize, workers: usize, inline_limit: usize) -> Self {
        // Stacks are allocated at their bound up front so a push during a
        // steady-state measurement window never grows the vector
        // (`tests/spawn_alloc.rs` counts every heap allocation).
        let locals = (0..if capacity == 0 { 0 } else { workers })
            .map(|_| Mutex::new(Vec::with_capacity(LOCAL_FREE_STACK_CAP)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TaskSlab {
            free: Injector::new(),
            locals,
            capacity,
            free_len: AtomicUsize::new(0),
            allocated: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            counters: Arc::new(SlabCounters::default()),
            inline_limit,
            detached: ChildTracker::new(),
        }
    }

    /// Obtain a node armed for `body` — recycled from the calling worker's
    /// local stack when `worker` is set, then from the shared free list,
    /// freshly allocated otherwise. The node has the registration sentinel
    /// held (pending = 1) and a fresh [`TaskId`]. `spilled` reports whether
    /// the body missed the inline buffer (the `spawn_body_spills` counter).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn acquire<F>(
        &self,
        worker: Option<usize>,
        name: Option<Arc<str>>,
        priority: TaskPriority,
        accesses: AccessVec,
        tickets: Vec<Box<dyn VersionTicket>>,
        body: F,
        parent_children: Arc<ChildTracker>,
        spilled: &mut bool,
    ) -> Arc<TaskNode>
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        let token = LiveToken {
            counters: self.counters.clone(),
        };
        token.counters.outstanding.fetch_add(1, Ordering::Relaxed);
        let mut parked: Option<Arc<TaskNode>> = None;
        if let Some(w) = worker {
            if let Some(stack) = self.locals.get(w) {
                parked = stack.lock().pop();
            }
        }
        if parked.is_none() {
            loop {
                match self.free.steal() {
                    Steal::Success(node) => {
                        self.free_len.fetch_sub(1, Ordering::Relaxed);
                        parked = Some(node);
                        break;
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        if parked.is_none() {
            // Raid the workers' local stacks before paying for a fresh
            // allocation: a main-thread (or off-worker) spawner never feeds
            // the local stacks itself, so without this the workers would
            // hoard every recycled node and the producer thread would
            // allocate forever. The raid is the miss path only — the
            // steady-state spawn never gets here.
            for stack in self.locals.iter() {
                if let Some(node) = stack.lock().pop() {
                    parked = Some(node);
                    break;
                }
            }
        }
        if let Some(mut node) = parked {
            if let Some(n) = Arc::get_mut(&mut node) {
                n.reinit(
                    name,
                    priority,
                    accesses,
                    tickets,
                    body,
                    parent_children,
                    token,
                    self.inline_limit,
                    spilled,
                );
                self.recycled.fetch_add(1, Ordering::Relaxed);
                return node;
            }
            // Unreachable by construction (parked entries are unique);
            // tolerate by falling through to a fresh allocation rather than
            // risking shared re-init.
            debug_assert!(false, "shared node in the slab free list");
        }
        self.allocated.fetch_add(1, Ordering::Relaxed);
        // Built as a plain value and only then shared: the owner-only field
        // writes below need no `Arc::get_mut` (hot-path code must not carry
        // a panicking unwrap — enforced by `cargo xtask lint`).
        let mut n = TaskNode::build(
            name,
            priority,
            accesses,
            body,
            parent_children,
            self.inline_limit,
            spilled,
        );
        if !tickets.is_empty() {
            *n.tickets.get_mut() = tickets;
        }
        n.live_token = Some(token);
        Arc::new(n)
    }

    /// Return a completed node to the free list, if the caller holds the
    /// last reference and the slab has room: the recycling worker's local
    /// stack first (up to [`LOCAL_FREE_STACK_CAP`]), the shared injector on
    /// overflow or when recycling off-worker. Nodes still referenced
    /// elsewhere (a `taskwait_on` spinner, a trace reader) simply drop
    /// normally — correctness never depends on recycling succeeding.
    ///
    /// Returns the node's parent child-tracker in every case (the worker
    /// still owes it a `child_done`): taken out of the node when it is
    /// parked, cloned only on the non-recycling paths — so the steady state
    /// adds no refcount traffic on the sibling-shared tracker line.
    pub(crate) fn try_recycle(
        &self,
        mut node: Arc<TaskNode>,
        worker: Option<usize>,
    ) -> Arc<ChildTracker> {
        if self.capacity != 0 {
            if let Some(n) = Arc::get_mut(&mut node) {
                if let Some(stack) = worker.and_then(|w| self.locals.get(w)) {
                    let mut stack = stack.lock();
                    if stack.len() < LOCAL_FREE_STACK_CAP {
                        let (token, parent) = n.reset_for_reuse(&self.detached);
                        drop(token);
                        stack.push(node);
                        return parent;
                    }
                }
                if self.free_len.load(Ordering::Relaxed) < self.capacity {
                    let (token, parent) = n.reset_for_reuse(&self.detached);
                    drop(token);
                    self.free_len.fetch_add(1, Ordering::Relaxed);
                    self.free.push(node);
                    return parent;
                }
            }
        }
        // Recycling refused (disabled, full, or the node is still shared):
        // the node — and its accounting token, via Drop — deallocates when
        // the last reference goes.
        node.parent_children.clone()
    }

    /// Current accounting snapshot. `free` counts the shared injector plus
    /// every worker-local stack.
    pub(crate) fn diagnostics(&self) -> TaskSlabDiagnostics {
        let local_free: usize = self.locals.iter().map(|s| s.lock().len()).sum();
        TaskSlabDiagnostics {
            allocated: self.allocated.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            free: self.free_len.load(Ordering::Relaxed) + local_free,
            outstanding: self.counters.outstanding.load(Ordering::Relaxed),
        }
    }

    /// Total acquisitions served from the free list (stats).
    pub(crate) fn recycled_count(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Total fresh heap allocations (stats).
    pub(crate) fn allocated_count(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_node() -> Arc<TaskNode> {
        TaskNode::new(
            Some("dummy".into()),
            TaskPriority(2),
            AccessVec::new(),
            |_ctx| {},
            ChildTracker::new(),
            INLINE_BODY_BYTES,
            &mut false,
        )
    }

    /// `TaskSlab::acquire` with the boilerplate arguments filled in.
    fn acquire_plain(slab: &TaskSlab, worker: Option<usize>) -> Arc<TaskNode> {
        slab.acquire(
            worker,
            None,
            TaskPriority::default(),
            AccessVec::new(),
            Vec::new(),
            |_ctx| {},
            ChildTracker::new(),
            &mut false,
        )
    }

    /// Complete a node by hand so `try_recycle` accepts it.
    fn finish_by_hand(n: &Arc<TaskNode>) {
        let _ = n.body.lock().take();
        n.links.lock().completed = true;
        n.pending.store(1, Ordering::Relaxed);
        n.set_state(TaskState::WaitingDeps);
    }

    #[test]
    fn task_ids_are_unique_and_increasing() {
        let a = TaskId::fresh();
        let b = TaskId::fresh();
        assert!(b.raw() > a.raw());
        assert_eq!(format!("{a}"), format!("t{}", a.raw()));
    }

    #[test]
    fn new_node_starts_waiting_with_sentinel() {
        let n = dummy_node();
        assert_eq!(n.task_state(), TaskState::WaitingDeps);
        assert_eq!(n.pending.load(Ordering::SeqCst), 1);
        assert!(!n.is_completed());
        assert_eq!(n.display_name(), "dummy");
        assert_eq!(n.priority, TaskPriority(2));
    }

    #[test]
    fn unnamed_node_displays_id() {
        let n = TaskNode::new(
            None,
            TaskPriority::default(),
            AccessVec::new(),
            |_ctx| {},
            ChildTracker::new(),
            INLINE_BODY_BYTES,
            &mut false,
        );
        assert_eq!(n.display_name(), format!("{}", n.id));
    }

    #[test]
    fn state_transitions() {
        let n = dummy_node();
        n.set_state(TaskState::Ready);
        assert_eq!(n.task_state(), TaskState::Ready);
        n.set_state(TaskState::Running);
        assert_eq!(n.task_state(), TaskState::Running);
        n.set_state(TaskState::Completed);
        assert!(n.is_completed());
    }

    #[test]
    fn child_tracker_counts() {
        let c = ChildTracker::new();
        assert_eq!(c.live_children(), 0);
        c.add_child();
        c.add_child();
        assert_eq!(c.live_children(), 2);
        c.child_done();
        assert_eq!(c.live_children(), 1);
        c.child_done();
        assert_eq!(c.live_children(), 0);
    }

    #[test]
    fn mark_retired_claims_exactly_once() {
        let n = dummy_node();
        assert!(n.mark_retired());
        assert!(!n.mark_retired());
        assert!(!n.mark_retired());
    }

    #[test]
    fn priority_ordering() {
        assert!(TaskPriority(3) > TaskPriority(0));
        assert!(TaskPriority(-1) < TaskPriority::default());
    }

    #[test]
    fn debug_format_includes_id_and_state() {
        let n = dummy_node();
        let s = format!("{n:?}");
        assert!(s.contains("TaskNode"));
        assert!(s.contains("WaitingDeps"));
    }

    #[test]
    fn small_bodies_store_inline_large_bodies_box() {
        let mut slot = BodySlot::default();
        let small = [7u64; 2];
        let spilled = slot.set(
            move |_ctx: &TaskContext<'_>| {
                std::hint::black_box(small);
            },
            INLINE_BODY_BYTES,
        );
        assert!(!spilled);
        assert!(slot.is_inline());
        slot.clear();
        assert!(slot.is_empty());
        let big = [0u64; 32]; // 256 bytes: over the inline bound
        let spilled = slot.set(
            move |_ctx: &TaskContext<'_>| {
                std::hint::black_box(big);
            },
            INLINE_BODY_BYTES,
        );
        assert!(spilled);
        assert!(!slot.is_inline());
        assert!(!slot.is_empty());
        assert!(slot.take().is_some());
        assert!(slot.is_empty());
        assert!(slot.take().is_none());
    }

    #[test]
    fn inline_limit_below_body_size_forces_spill() {
        let mut slot = BodySlot::default();
        let small = [7u64; 2]; // 16 bytes: inline at the default threshold
        let spilled = slot.set(
            move |_ctx: &TaskContext<'_>| {
                std::hint::black_box(small);
            },
            8, // shrunken knob: the 16-byte capture must spill
        );
        assert!(spilled);
        assert!(!slot.is_inline());
        assert!(slot.take().is_some());
    }

    #[test]
    fn unrun_taken_body_drops_its_captures() {
        let marker = Arc::new(());
        let mut slot = BodySlot::default();
        let held = marker.clone();
        slot.set(
            move |_ctx: &TaskContext<'_>| {
                let _ = &held;
            },
            INLINE_BODY_BYTES,
        );
        assert!(slot.is_inline());
        let taken = slot.take().expect("armed");
        assert_eq!(Arc::strong_count(&marker), 2);
        drop(taken);
        assert_eq!(Arc::strong_count(&marker), 1, "captures dropped unrun");
        // And clearing an armed slot drops the captures too.
        let held = marker.clone();
        slot.set(
            move |_ctx: &TaskContext<'_>| {
                let _ = &held;
            },
            INLINE_BODY_BYTES,
        );
        slot.clear();
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn slab_recycles_the_same_storage_with_bumped_generation() {
        let slab = TaskSlab::new(8, 0, INLINE_BODY_BYTES);
        let n1 = acquire_plain(&slab, None);
        let first_id = n1.id;
        assert_eq!(n1.generation, 0);
        let d = slab.diagnostics();
        assert_eq!((d.allocated, d.recycled, d.outstanding), (1, 0, 1));
        finish_by_hand(&n1);
        let raw = Arc::as_ptr(&n1);
        slab.try_recycle(n1, None);
        let d = slab.diagnostics();
        assert_eq!((d.free, d.outstanding), (1, 0));
        let n2 = acquire_plain(&slab, None);
        assert_eq!(Arc::as_ptr(&n2), raw, "storage reused");
        assert_eq!(n2.generation, 1, "generation bumped on recycle");
        assert!(n2.id.raw() > first_id.raw(), "fresh id per reuse");
        let d = slab.diagnostics();
        assert_eq!((d.allocated, d.recycled), (1, 1));
        assert!(d.recycle_rate().unwrap() > 0.49);
    }

    #[test]
    fn shared_nodes_and_disabled_slabs_are_never_recycled() {
        let slab = TaskSlab::new(8, 0, INLINE_BODY_BYTES);
        let n = acquire_plain(&slab, None);
        let _ = n.body.lock().take();
        n.links.lock().completed = true;
        let held = n.clone();
        slab.try_recycle(n, None); // shared: plain drop path
        assert_eq!(slab.diagnostics().free, 0);
        drop(held);
        assert_eq!(
            slab.diagnostics().outstanding,
            0,
            "final drop released the accounting token"
        );
        let off = TaskSlab::new(0, 2, INLINE_BODY_BYTES);
        let n = acquire_plain(&off, Some(0));
        let _ = n.body.lock().take();
        n.links.lock().completed = true;
        off.try_recycle(n, Some(0));
        assert_eq!(off.diagnostics().free, 0, "capacity 0 disables recycling");
        assert_eq!(off.diagnostics().outstanding, 0);
    }

    #[test]
    fn worker_local_stack_recycles_without_touching_the_shared_list() {
        let slab = TaskSlab::new(8, 2, INLINE_BODY_BYTES);
        let local = acquire_plain(&slab, Some(1));
        let shared = acquire_plain(&slab, Some(1));
        finish_by_hand(&local);
        finish_by_hand(&shared);
        let raw_local = Arc::as_ptr(&local);
        let raw_shared = Arc::as_ptr(&shared);
        // A worker-side recycle parks on the worker's private stack, an
        // off-worker recycle on the shared injector.
        slab.try_recycle(local, Some(1));
        assert_eq!(
            slab.free_len.load(Ordering::Relaxed),
            0,
            "worker-local recycle bypasses the shared injector"
        );
        slab.try_recycle(shared, None);
        let d = slab.diagnostics();
        assert_eq!((d.free, d.outstanding), (2, 0));
        assert_eq!(slab.free_len.load(Ordering::Relaxed), 1);
        // The owning worker prefers its private stack even with the
        // injector stocked.
        let own = acquire_plain(&slab, Some(1));
        assert_eq!(Arc::as_ptr(&own), raw_local, "owning worker reuses its stack");
        finish_by_hand(&own);
        slab.try_recycle(own, Some(1));
        // A different worker takes the shared injector first…
        let other = acquire_plain(&slab, Some(0));
        assert_eq!(
            Arc::as_ptr(&other),
            raw_shared,
            "a foreign worker drains the shared list before raiding"
        );
        // …and raids foreign local stacks only once the injector is empty,
        // so an off-stack producer never allocates while workers hoard
        // recycled nodes.
        let raided = acquire_plain(&slab, Some(0));
        assert_eq!(
            Arc::as_ptr(&raided),
            raw_local,
            "the raid tier serves misses from foreign local stacks"
        );
        assert_eq!(slab.diagnostics().free, 0);
    }
}

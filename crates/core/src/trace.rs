//! Execution tracing.
//!
//! When enabled in [`RuntimeConfig`](crate::RuntimeConfig), the runtime
//! records one event per task state change, timestamped relative to runtime
//! start. Traces are the raw material for the utilisation and locality
//! analyses in the benchmark harness (and loosely correspond to the
//! Paraver/Extrae traces the OmpSs toolchain produces).

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::task::TaskId;

/// A single trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task was spawned (inserted into the graph).
    Spawned {
        /// Task id.
        task: TaskId,
        /// Task name if one was given.
        name: Option<Arc<str>>,
        /// Nanoseconds since runtime start.
        at_ns: u64,
        /// Number of dependence edges the task was created with.
        deps: usize,
        /// Reuse count of the slab node the task was spawned into (0 for a
        /// freshly allocated node). Together with the never-reused id it
        /// makes node recycling visible — and ABA-detectable — in traces.
        generation: u32,
    },
    /// A task became ready (all dependencies satisfied).
    Ready {
        /// Task id.
        task: TaskId,
        /// Nanoseconds since runtime start.
        at_ns: u64,
    },
    /// A dependence edge was added at registration time, `from` (the
    /// predecessor) → `task` (the registering successor).
    Edge {
        /// The successor task being registered.
        task: TaskId,
        /// The predecessor the edge points from.
        from: TaskId,
        /// Index of the dependence-tracker shard the conflict was found in
        /// (see [`crate::graph`]).
        shard: usize,
        /// Whether the registration that discovered this edge went through
        /// the optimistic single-shard fast path.
        fast_path: bool,
        /// Nanoseconds since runtime start.
        at_ns: u64,
    },
    /// An `output` access of a task renamed a versioned handle (or one chunk
    /// of a versioned partition) to a fresh data version (see
    /// [`crate::rename`]).
    Renamed {
        /// The task whose access triggered the rename.
        task: TaskId,
        /// Raw allocation id of the superseded version.
        from_alloc: u64,
        /// Raw allocation id of the new current version.
        to_alloc: u64,
        /// Whether pooled storage was reused.
        recycled: bool,
        /// For per-chunk renames: index of the renamed chunk within its
        /// partition. `None` for whole-handle renames.
        chunk: Option<u32>,
        /// Nanoseconds since runtime start.
        at_ns: u64,
    },
    /// A worker started executing a task.
    Started {
        /// Task id.
        task: TaskId,
        /// Executing worker index.
        worker: usize,
        /// Nanoseconds since runtime start.
        at_ns: u64,
    },
    /// A worker finished executing a task.
    Finished {
        /// Task id.
        task: TaskId,
        /// Executing worker index.
        worker: usize,
        /// Nanoseconds since runtime start.
        at_ns: u64,
        /// Whether the task body panicked.
        panicked: bool,
    },
    /// A capture scope finished recording a
    /// [`GraphTemplate`](crate::capture::GraphTemplate) (see
    /// [`crate::capture`]). The template's tasks were spawned normally and
    /// have their own `Spawned` events; this marks the batch boundary.
    Captured {
        /// Id of the first task recorded into the template (`TaskId` 0 when
        /// the scope captured no tasks).
        task: TaskId,
        /// Number of tasks recorded into the template.
        tasks: usize,
        /// Nanoseconds since runtime start.
        at_ns: u64,
    },
    /// A [`GraphTemplate`](crate::capture::GraphTemplate) was replayed: the
    /// whole batch was re-stamped under a single tracker acquisition. Each
    /// stamped task also gets its own `Spawned`/`Edge` events (with fresh
    /// ids), recorded between the batch registration and this marker.
    Replayed {
        /// Id of the first task stamped by this replay pass (`TaskId` 0 when
        /// the template is empty).
        task: TaskId,
        /// Number of tasks stamped by this replay pass.
        tasks: usize,
        /// 1-based replay pass number (the capture itself is pass 0).
        pass: u64,
        /// Whether this pass was stamped through the frozen, pre-wired plan
        /// (baked interior edges) rather than resolved per pass.
        prewired: bool,
        /// Nanoseconds since runtime start.
        at_ns: u64,
    },
    /// A task was retired without running because a failing predecessor
    /// (panic or cancellation) poisoned it (see the README's "Failure
    /// semantics").
    Poisoned {
        /// The poisoned task.
        task: TaskId,
        /// The panicked or cancelled task the poison originated from.
        origin: TaskId,
        /// Nanoseconds since runtime start.
        at_ns: u64,
    },
    /// A task was retired without running because its
    /// [`CancelToken`](crate::CancelToken) scope was cancelled before it
    /// started.
    Cancelled {
        /// The cancelled task.
        task: TaskId,
        /// Nanoseconds since runtime start.
        at_ns: u64,
    },
}

impl TraceEvent {
    /// The task this event refers to.
    pub fn task(&self) -> TaskId {
        match self {
            TraceEvent::Spawned { task, .. }
            | TraceEvent::Ready { task, .. }
            | TraceEvent::Edge { task, .. }
            | TraceEvent::Renamed { task, .. }
            | TraceEvent::Started { task, .. }
            | TraceEvent::Finished { task, .. }
            | TraceEvent::Captured { task, .. }
            | TraceEvent::Replayed { task, .. }
            | TraceEvent::Poisoned { task, .. }
            | TraceEvent::Cancelled { task, .. } => *task,
        }
    }

    /// Timestamp of the event in nanoseconds since runtime start.
    pub fn at_ns(&self) -> u64 {
        match self {
            TraceEvent::Spawned { at_ns, .. }
            | TraceEvent::Ready { at_ns, .. }
            | TraceEvent::Edge { at_ns, .. }
            | TraceEvent::Renamed { at_ns, .. }
            | TraceEvent::Started { at_ns, .. }
            | TraceEvent::Finished { at_ns, .. }
            | TraceEvent::Captured { at_ns, .. }
            | TraceEvent::Replayed { at_ns, .. }
            | TraceEvent::Poisoned { at_ns, .. }
            | TraceEvent::Cancelled { at_ns, .. } => *at_ns,
        }
    }
}

/// Collects trace events from all workers.
pub struct TraceRecorder {
    enabled: bool,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceRecorder {
    /// Create a recorder; when `enabled` is false all recording calls are
    /// no-ops (and cost one branch).
    pub fn new(enabled: bool) -> Self {
        TraceRecorder {
            enabled,
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds elapsed since the recorder was created.
    pub fn now_ns(&self) -> u64 {
        duration_to_ns(self.epoch.elapsed())
    }

    /// Record an event (no-op when disabled).
    pub fn record(&self, event: TraceEvent) {
        if self.enabled {
            self.events.lock().push(event);
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events recorded so far, in recording order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Total busy time (sum of task execution intervals) per worker, derived
    /// from Started/Finished pairs. The returned vector is indexed by worker
    /// id and sized to the largest worker index seen.
    pub fn busy_ns_per_worker(&self) -> Vec<u64> {
        let events = self.events.lock();
        let mut start_of: std::collections::HashMap<(usize, TaskId), u64> =
            std::collections::HashMap::new();
        let mut busy: Vec<u64> = Vec::new();
        for ev in events.iter() {
            match ev {
                TraceEvent::Started { task, worker, at_ns } => {
                    start_of.insert((*worker, *task), *at_ns);
                }
                TraceEvent::Finished {
                    task,
                    worker,
                    at_ns,
                    ..
                } => {
                    if let Some(s) = start_of.remove(&(*worker, *task)) {
                        if busy.len() <= *worker {
                            busy.resize(worker + 1, 0);
                        }
                        busy[*worker] += at_ns.saturating_sub(s);
                    }
                }
                _ => {}
            }
        }
        busy
    }

    /// Count of tasks executed per worker.
    pub fn tasks_per_worker(&self) -> Vec<u64> {
        let events = self.events.lock();
        let mut counts: Vec<u64> = Vec::new();
        for ev in events.iter() {
            if let TraceEvent::Finished { worker, .. } = ev {
                if counts.len() <= *worker {
                    counts.resize(worker + 1, 0);
                }
                counts[*worker] += 1;
            }
        }
        counts
    }

    /// Export the execution intervals as a Chrome-tracing (`chrome://tracing`
    /// / Perfetto) JSON array: one complete ("X") event per executed task,
    /// with the worker index as the thread id. The output plays the role the
    /// Paraver traces play in the original OmpSs toolchain.
    pub fn to_chrome_trace(&self) -> String {
        type StartInfo = (u64, Option<Arc<str>>);
        let events = self.events.lock();
        let mut start_of: std::collections::HashMap<(usize, TaskId), StartInfo> =
            std::collections::HashMap::new();
        let mut names: std::collections::HashMap<TaskId, Option<Arc<str>>> =
            std::collections::HashMap::new();
        let mut out = String::from("[");
        let mut first = true;
        for ev in events.iter() {
            match ev {
                TraceEvent::Spawned { task, name, .. } => {
                    names.insert(*task, name.clone());
                }
                TraceEvent::Started { task, worker, at_ns } => {
                    let name = names.get(task).cloned().flatten();
                    start_of.insert((*worker, *task), (*at_ns, name));
                }
                TraceEvent::Finished {
                    task,
                    worker,
                    at_ns,
                    panicked,
                } => {
                    if let Some((start, name)) = start_of.remove(&(*worker, *task)) {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let label = name
                            .map(|n| n.to_string())
                            .unwrap_or_else(|| format!("task {}", task.raw()));
                        out.push_str(&format!(
                            "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"panicked\":{}}}}}",
                            label.replace('"', "'"),
                            start as f64 / 1_000.0,
                            at_ns.saturating_sub(start) as f64 / 1_000.0,
                            worker,
                            panicked
                        ));
                    }
                }
                TraceEvent::Ready { .. }
                | TraceEvent::Edge { .. }
                | TraceEvent::Renamed { .. }
                | TraceEvent::Captured { .. }
                | TraceEvent::Replayed { .. }
                | TraceEvent::Poisoned { .. }
                | TraceEvent::Cancelled { .. } => {}
            }
        }
        out.push(']');
        out
    }
}

fn duration_to_ns(d: Duration) -> u64 {
    d.as_secs()
        .saturating_mul(1_000_000_000)
        .saturating_add(u64::from(d.subsec_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u64) -> TaskId {
        TaskId(n)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = TraceRecorder::new(false);
        r.record(TraceEvent::Ready {
            task: tid(1),
            at_ns: 5,
        });
        assert!(r.is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn enabled_recorder_keeps_order() {
        let r = TraceRecorder::new(true);
        r.record(TraceEvent::Spawned {
            task: tid(1),
            name: Some("a".into()),
            at_ns: 1,
            deps: 0,
            generation: 0,
        });
        r.record(TraceEvent::Ready {
            task: tid(1),
            at_ns: 2,
        });
        assert_eq!(r.len(), 2);
        let snap = r.snapshot();
        assert_eq!(snap[0].task(), tid(1));
        assert_eq!(snap[0].at_ns(), 1);
        assert_eq!(snap[1].at_ns(), 2);
    }

    #[test]
    fn edge_event_carries_shard_and_endpoints() {
        let r = TraceRecorder::new(true);
        r.record(TraceEvent::Edge {
            task: tid(2),
            from: tid(1),
            shard: 3,
            fast_path: true,
            at_ns: 7,
        });
        let snap = r.snapshot();
        assert_eq!(snap[0].task(), tid(2));
        assert_eq!(snap[0].at_ns(), 7);
        match &snap[0] {
            TraceEvent::Edge {
                from,
                shard,
                fast_path,
                ..
            } => {
                assert_eq!(*from, tid(1));
                assert_eq!(*shard, 3);
                assert!(*fast_path);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn busy_time_accounts_started_finished_pairs() {
        let r = TraceRecorder::new(true);
        r.record(TraceEvent::Started {
            task: tid(1),
            worker: 0,
            at_ns: 100,
        });
        r.record(TraceEvent::Started {
            task: tid(2),
            worker: 1,
            at_ns: 150,
        });
        r.record(TraceEvent::Finished {
            task: tid(1),
            worker: 0,
            at_ns: 300,
            panicked: false,
        });
        r.record(TraceEvent::Finished {
            task: tid(2),
            worker: 1,
            at_ns: 250,
            panicked: false,
        });
        let busy = r.busy_ns_per_worker();
        assert_eq!(busy, vec![200, 100]);
        assert_eq!(r.tasks_per_worker(), vec![1, 1]);
    }

    #[test]
    fn unmatched_finished_is_ignored() {
        let r = TraceRecorder::new(true);
        r.record(TraceEvent::Finished {
            task: tid(9),
            worker: 3,
            at_ns: 50,
            panicked: false,
        });
        let busy = r.busy_ns_per_worker();
        assert!(busy.iter().all(|&b| b == 0));
        assert_eq!(r.tasks_per_worker(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let r = TraceRecorder::new(true);
        let a = r.now_ns();
        let b = r.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn chrome_trace_export_contains_complete_events() {
        let r = TraceRecorder::new(true);
        r.record(TraceEvent::Spawned {
            task: tid(1),
            name: Some("render".into()),
            at_ns: 0,
            deps: 0,
            generation: 0,
        });
        r.record(TraceEvent::Started {
            task: tid(1),
            worker: 2,
            at_ns: 1_000,
        });
        r.record(TraceEvent::Finished {
            task: tid(1),
            worker: 2,
            at_ns: 4_000,
            panicked: false,
        });
        let json = r.to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"render\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"dur\":3.000"));
    }

    #[test]
    fn chrome_trace_of_empty_recorder_is_empty_array() {
        let r = TraceRecorder::new(true);
        assert_eq!(r.to_chrome_trace(), "[]");
    }
}

//! `dcheck`: an independent correctness-analysis layer for the runtime —
//! a vector-clock race oracle plus a drain-time invariant auditor.
//!
//! # The race oracle
//!
//! Under [`RuntimeConfig::with_dcheck`](crate::RuntimeConfig::with_dcheck)
//! every spawned task carries a *vector clock*, represented as a dense
//! happens-before bitset over the tasks of the current epoch (the window
//! since the last quiescent `taskwait`/`barrier`). The clock is built from
//! exactly two sources, both independent of the dependence tracker's own
//! edge bookkeeping:
//!
//! * **Edge merges at completion.** When a predecessor completes,
//!   [`graph::complete_into`](crate::graph) folds the predecessor's clock —
//!   plus its own bit — into every still-linked successor. A task's clock is
//!   final by the time it becomes ready, because a task cannot start until
//!   every predecessor has completed.
//! * **The completed snapshot at registration.** Immediately after a task
//!   registers with the tracker (single spawn or replay batch alike), the
//!   global set of already-completed tasks is OR-ed into its clock. This is
//!   what orders a fresh task after predecessors that completed — and were
//!   possibly tombstoned and garbage-collected — before the task ever
//!   existed: completion is published to the snapshot *before* the
//!   predecessor's successor list closes, so any edge the tracker declined
//!   to add (`add_edge` on a completed node) is covered by the snapshot
//!   instead. The snapshot is transitively closed by construction: a task
//!   only completes after everything that happened before it completed.
//!
//! Meanwhile every **bind-time-resolved region access** a task body performs
//! (`ctx.read`/`ctx.write`/chunk and whole-array guards) appends one record
//! to a per-worker shadow log: the bound version's region — renamed versions
//! carry fresh allocation ids, so "same version" falls out of the region
//! identity — the access direction, and whether the declared access was
//! `concurrent`. At a quiescent `taskwait`/`barrier` the checker verifies
//! that every conflicting pair of records (W-W, W-R, R-W on overlapping
//! byte ranges of the same allocation, not both `concurrent`) is ordered by
//! the happens-before relation above, reporting a [`RaceReport`] for every
//! pair that is not. This catches both missed tracker edges (the clock never
//! learned an ordering the data required) and bodies touching versions in
//! ways their declared accesses do not order.
//!
//! # Interaction with replay batches and poison
//!
//! Replay-stamped tasks flow through the same two clock sources: batch
//! registration assigns indices in stamp order before the batch gate, and
//! the completed snapshot is merged per node after `register_batch` /
//! `register_batch_prewired` returns — pre-wired edges need no special
//! handling because clocks merge at *completion* time along the live
//! successor lists, which pre-wiring populates like any other edge. Poisoned
//! and cancelled tasks complete through
//! [`complete_into_poison`](crate::graph), which performs the same clock
//! merges — a task retired without running logs no accesses, so poison can
//! suppress log records but never invents an unordered pair.
//!
//! After each check the epoch resets: quiescence orders everything before
//! the barrier ahead of everything after it, so clocks, logs and the
//! completed snapshot all restart empty — keeping the oracle's memory
//! proportional to one epoch, not the whole run.
//!
//! # The invariant auditor
//!
//! [`Runtime::audit`](crate::Runtime::audit) unifies the drain-time
//! identities that were previously asserted piecemeal across the test
//! suites: the task ledger (`executed + poisoned + cancelled == spawned`),
//! every tracker shard gate even at quiescence, tombstones and by-alloc
//! maps scrubbed after GC, slab `outstanding == 0`, and version-ticket
//! bind/release balance. Under dcheck the audit runs automatically at every
//! quiescent `taskwait`/`barrier`; the service layer's stall watchdog calls
//! it on stuck runtimes to separate ledger corruption from genuine
//! slowness (a non-quiescent audit checks the one direction that must hold
//! mid-run: the completion ledger never overtakes the spawn counter).
//!
//! When dcheck is off the runtime carries a single `Option` check per hook
//! site and no allocations — the steady-state spawn path stays
//! allocation-free (`tests/spawn_alloc.rs`).

use std::ops::Range;
use std::sync::atomic::Ordering;

use parking_lot::Mutex;

use crate::region::Region;
use crate::task::{TaskId, TaskNode};

/// Sentinel for "not registered with the oracle" (dcheck off, or a node
/// recycled since its last registration).
pub(crate) const NO_INDEX: u64 = u64::MAX;

/// One bind-time access performed by a task body, recorded in a per-worker
/// shadow log.
#[derive(Debug, Clone)]
struct AccessRecord {
    /// Dense per-epoch index of the performing task.
    index: u64,
    /// Public id of the performing task (for reporting).
    task: TaskId,
    /// Allocation of the bound version (fresh per renamed version, so this
    /// also identifies the version).
    alloc: u64,
    /// Byte range touched within the allocation.
    bytes: Range<usize>,
    /// Whether the guard was a write.
    write: bool,
    /// Whether the declared access was `concurrent` (unordered by design).
    concurrent: bool,
}

/// A happens-before bitset: bit `i` set means epoch-task `i` is ordered
/// before the owner.
type Clock = Vec<u64>;

fn set_bit(clock: &mut Clock, bit: u64) {
    let word = (bit / 64) as usize;
    if clock.len() <= word {
        clock.resize(word + 1, 0);
    }
    clock[word] |= 1 << (bit % 64);
}

fn has_bit(clock: &Clock, bit: u64) -> bool {
    let word = (bit / 64) as usize;
    clock.get(word).is_some_and(|w| w & (1 << (bit % 64)) != 0)
}

fn or_into(dst: &mut Clock, src: &Clock) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d |= *s;
    }
}

fn clear_bit(clock: &mut Clock, bit: u64) {
    let word = (bit / 64) as usize;
    if let Some(w) = clock.get_mut(word) {
        *w &= !(1 << (bit % 64));
    }
}

/// Per-epoch clock table. All clock state lives centrally (indexed by the
/// dense per-epoch task index) so task nodes only carry one `AtomicU64` and
/// recycling stays trivial.
#[derive(Default)]
struct ClockTable {
    /// Index of the first task of the current epoch; indices below this are
    /// from before the last quiescent check and are ordered before
    /// everything current, so operations on them are no-ops.
    epoch_base: u64,
    /// Next dense index to assign.
    next: u64,
    /// Happens-before set per epoch task (`clocks[i - epoch_base]`), bits
    /// relative to `epoch_base`.
    clocks: Vec<Clock>,
    /// Bits of epoch tasks whose completion has been published. OR-ing this
    /// into a freshly registered task's clock is sound and transitively
    /// closed: a task completes only after everything ordered before it has.
    completed: Clock,
}

impl ClockTable {
    fn slot(&self, index: u64) -> Option<usize> {
        if index == NO_INDEX || index < self.epoch_base {
            return None;
        }
        let slot = (index - self.epoch_base) as usize;
        (slot < self.clocks.len()).then_some(slot)
    }
}

/// A conflicting, happens-before-unordered pair of accesses found by the
/// race oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The task registered first (lower epoch index).
    pub first: TaskId,
    /// Whether the first task's conflicting access was a write.
    pub first_write: bool,
    /// The task registered second.
    pub second: TaskId,
    /// Whether the second task's conflicting access was a write.
    pub second_write: bool,
    /// Raw allocation id of the contested version.
    pub alloc: u64,
    /// Overlapping byte range of the two accesses.
    pub bytes: Range<usize>,
}

impl RaceReport {
    /// The conflict shape: `"W-W"`, `"W-R"` or `"R-W"` in registration
    /// order.
    pub fn kind(&self) -> &'static str {
        match (self.first_write, self.second_write) {
            (true, true) => "W-W",
            (true, false) => "W-R",
            (false, true) => "R-W",
            (false, false) => "R-R",
        }
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} race on alloc {} bytes {}..{}: task {:?} and task {:?} are not ordered by happens-before",
            self.kind(),
            self.alloc,
            self.bytes.start,
            self.bytes.end,
            self.first,
            self.second,
        )
    }
}

/// Snapshot of the audited runtime counters (see
/// [`Runtime::audit`](crate::Runtime::audit)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Whether the runtime was quiescent (`in_flight == 0`) when audited —
    /// only then are the full drain-time identities checkable.
    pub quiescent: bool,
    /// Tasks spawned (fresh and replay-stamped).
    pub spawned: u64,
    /// Tasks that ran their bodies.
    pub executed: u64,
    /// Tasks retired without running due to upstream poison.
    pub poisoned: u64,
    /// Tasks retired without running due to cancellation.
    pub cancelled: u64,
    /// Tasks in flight at audit time.
    pub in_flight: u64,
    /// Regions still tracked after a quiescent GC sweep (0 expected).
    pub tracked_regions: usize,
    /// Allocations still tracked after a quiescent GC sweep (0 expected).
    pub tracked_allocs: usize,
    /// Task nodes checked out of the slab (0 expected at quiescence).
    pub slab_outstanding: usize,
    /// Version tickets bound to spawned tasks so far.
    pub ticket_refs_bound: u64,
    /// Version tickets released by retired tasks so far.
    pub ticket_refs_released: u64,
}

/// A broken drain-time identity found by [`Runtime::audit`](crate::Runtime::audit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// `executed + poisoned + cancelled` disagrees with `spawned` (at
    /// quiescence: not equal; mid-run: the completion ledger overtook the
    /// spawn counter).
    LedgerMismatch {
        /// Tasks spawned.
        spawned: u64,
        /// Tasks that ran their bodies.
        executed: u64,
        /// Tasks retired poisoned.
        poisoned: u64,
        /// Tasks retired cancelled.
        cancelled: u64,
        /// Tasks in flight at audit time.
        in_flight: u64,
    },
    /// A tracker shard's sequence gate read odd at quiescence — some
    /// registration or retirement never released it.
    GateHeld {
        /// Index of the held shard.
        shard: usize,
    },
    /// The tracker still holds region or allocation history after a
    /// quiescent GC sweep (tombstones or by-alloc entries leaked).
    TrackerResidue {
        /// Regions still tracked.
        regions: usize,
        /// Allocations still tracked.
        allocs: usize,
    },
    /// Task nodes still checked out of the slab at quiescence (a node
    /// leak: some retirement path dropped the accounting token).
    SlabLeak {
        /// Nodes outstanding.
        outstanding: usize,
    },
    /// Version tickets bound at spawn were not all released at retirement.
    TicketImbalance {
        /// Tickets bound to spawned tasks.
        bound: u64,
        /// Tickets released by retired tasks.
        released: u64,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The `Debug` form (variant + named fields) is already the most
        // useful rendering for logs and error messages.
        write!(f, "audit violation: {self:?}")
    }
}

/// Shared state of the race oracle + auditor for one runtime. Present only
/// when [`RuntimeConfig::with_dcheck`](crate::RuntimeConfig::with_dcheck)
/// was set; every hook in the spawn/complete/bind paths is a single
/// `Option` check when absent.
pub(crate) struct DcheckState {
    table: Mutex<ClockTable>,
    /// Per-worker shadow logs (slot `workers` catches bindings performed
    /// outside a worker thread, e.g. a main-thread `taskwait` helper).
    logs: Box<[Mutex<Vec<AccessRecord>>]>,
    reports: Mutex<Vec<RaceReport>>,
    audits: Mutex<Vec<AuditViolation>>,
    /// Test-only mutation hook: a `(pred, succ)` epoch-index pair whose
    /// completion-time clock merge (and snapshot bit) is suppressed,
    /// simulating a missed tracker edge so tests can prove the oracle
    /// actually detects one (see `tests/dcheck_oracle.rs`).
    suppress: Mutex<Option<(u64, u64)>>,
}

impl DcheckState {
    pub(crate) fn new(workers: usize) -> Self {
        DcheckState {
            table: Mutex::new(ClockTable::default()),
            logs: (0..=workers).map(|_| Mutex::new(Vec::new())).collect(),
            reports: Mutex::new(Vec::new()),
            audits: Mutex::new(Vec::new()),
            suppress: Mutex::new(None),
        }
    }

    /// Assign the next dense epoch index to `node`. Must run before the
    /// node's tracker registration, so no edge or completion can reference
    /// an unassigned task.
    pub(crate) fn register_task(&self, node: &TaskNode) {
        let mut t = self.table.lock();
        let index = t.next;
        t.next += 1;
        t.clocks.push(Clock::new());
        node.dcheck_index.store(index, Ordering::Relaxed);
    }

    /// Fold the completed-task snapshot into `node`'s clock. Must run after
    /// the node's tracker registration returned: any predecessor the
    /// tracker saw as already completed published its completion bit before
    /// closing its successor list, so the snapshot covers exactly the edges
    /// `add_edge` declined.
    pub(crate) fn merge_completed_snapshot(&self, node: &TaskNode) {
        let index = node.dcheck_index.load(Ordering::Relaxed);
        // Lock order: `suppress` strictly before `table` (as in
        // `merge_edge`).
        let suppress = *self.suppress.lock();
        let mut t = self.table.lock();
        let Some(slot) = t.slot(index) else { return };
        let completed = std::mem::take(&mut t.completed);
        or_into(&mut t.clocks[slot], &completed);
        t.completed = completed;
        if let Some((pred, succ)) = suppress {
            if succ == index && pred >= t.epoch_base {
                let bit = pred - t.epoch_base;
                clear_bit(&mut t.clocks[slot], bit);
            }
        }
    }

    /// Publish `node`'s completion to the snapshot. Must run before the
    /// node's successor list closes (`links.completed = true`), so a
    /// registration that races with this completion either gets the edge or
    /// sees the snapshot bit.
    pub(crate) fn mark_completed(&self, node: &TaskNode) {
        let index = node.dcheck_index.load(Ordering::Relaxed);
        let mut t = self.table.lock();
        if index == NO_INDEX || index < t.epoch_base {
            return;
        }
        let bit = index - t.epoch_base;
        set_bit(&mut t.completed, bit);
    }

    /// Merge `pred`'s clock (plus its own bit) into `succ` — called at
    /// `pred`'s completion for every still-linked successor.
    pub(crate) fn merge_edge(&self, pred: &TaskNode, succ: &TaskNode) {
        let p = pred.dcheck_index.load(Ordering::Relaxed);
        let s = succ.dcheck_index.load(Ordering::Relaxed);
        if *self.suppress.lock() == Some((p, s)) {
            return;
        }
        let mut t = self.table.lock();
        let (Some(ps), Some(ss)) = (t.slot(p), t.slot(s)) else {
            return;
        };
        if ps == ss {
            return;
        }
        let pred_bit = p - t.epoch_base;
        let pred_clock = std::mem::take(&mut t.clocks[ps]);
        or_into(&mut t.clocks[ss], &pred_clock);
        t.clocks[ps] = pred_clock;
        set_bit(&mut t.clocks[ss], pred_bit);
    }

    /// Append one bind-time access to the calling worker's shadow log.
    pub(crate) fn log_access(
        &self,
        worker: Option<usize>,
        node: &TaskNode,
        region: &Region,
        write: bool,
        concurrent: bool,
    ) {
        let index = node.dcheck_index.load(Ordering::Relaxed);
        if index == NO_INDEX || region.is_empty() {
            return;
        }
        let last = self.logs.len() - 1;
        let slot = worker.map_or(last, |w| w.min(last));
        self.logs[slot].lock().push(AccessRecord {
            index,
            task: node.id,
            alloc: region.id.alloc.raw(),
            bytes: region.bytes.clone(),
            write,
            concurrent,
        });
    }

    /// Run the happens-before check over the epoch's shadow logs, append any
    /// races found to the report list, and reset the epoch. Call only at
    /// quiescence (every logged task completed).
    pub(crate) fn run_check(&self) {
        let mut records: Vec<AccessRecord> = Vec::new();
        for log in self.logs.iter() {
            records.append(&mut log.lock());
        }
        let mut t = self.table.lock();
        // Group by allocation so the pairwise scan only compares records
        // that can conflict at all.
        records.sort_by(|a, b| {
            (a.alloc, a.index, a.bytes.start).cmp(&(b.alloc, b.index, b.bytes.start))
        });
        records.dedup_by(|a, b| {
            a.alloc == b.alloc
                && a.index == b.index
                && a.bytes == b.bytes
                && a.write == b.write
                && a.concurrent == b.concurrent
        });
        let mut reports = self.reports.lock();
        let mut seen_pairs: Vec<(u64, u64, u64)> = Vec::new();
        let mut start = 0;
        while start < records.len() {
            let alloc = records[start].alloc;
            let mut end = start;
            while end < records.len() && records[end].alloc == alloc {
                end += 1;
            }
            let group = &records[start..end];
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    let (a, b) = (&group[i], &group[j]);
                    if a.index == b.index
                        || (!a.write && !b.write)
                        || (a.concurrent && b.concurrent)
                    {
                        continue;
                    }
                    let overlap =
                        a.bytes.start.max(b.bytes.start)..a.bytes.end.min(b.bytes.end);
                    if overlap.start >= overlap.end {
                        continue;
                    }
                    let ordered = match (t.slot(a.index), t.slot(b.index)) {
                        (Some(sa), Some(sb)) => {
                            has_bit(&t.clocks[sb], a.index - t.epoch_base)
                                || has_bit(&t.clocks[sa], b.index - t.epoch_base)
                        }
                        // A record from before the epoch base is ordered
                        // before everything current by the barrier itself.
                        _ => true,
                    };
                    if ordered {
                        continue;
                    }
                    let key = (a.index.min(b.index), a.index.max(b.index), alloc);
                    if seen_pairs.contains(&key) {
                        continue;
                    }
                    seen_pairs.push(key);
                    reports.push(RaceReport {
                        first: a.task,
                        first_write: a.write,
                        second: b.task,
                        second_write: b.write,
                        alloc,
                        bytes: overlap,
                    });
                }
            }
            start = end;
        }
        // Epoch reset: quiescence orders everything before this check ahead
        // of everything after it, so the oracle's memory restarts empty.
        t.epoch_base = t.next;
        t.clocks.clear();
        t.completed.clear();
    }

    /// Copy of the race reports accumulated so far.
    pub(crate) fn reports(&self) -> Vec<RaceReport> {
        self.reports.lock().clone()
    }

    /// Drain the accumulated race reports.
    pub(crate) fn take_reports(&self) -> Vec<RaceReport> {
        std::mem::take(&mut self.reports.lock())
    }

    /// Record an audit violation found by the automatic quiescent audit.
    pub(crate) fn note_audit(&self, violation: AuditViolation) {
        self.audits.lock().push(violation);
    }

    /// Drain the audit violations recorded by the automatic quiescent audit.
    pub(crate) fn take_audit_violations(&self) -> Vec<AuditViolation> {
        std::mem::take(&mut self.audits.lock())
    }

    /// Test-only: suppress the clock merge of the `(pred, succ)` epoch-index
    /// pair, simulating a missed tracker edge.
    pub(crate) fn suppress_edge(&self, pred: u64, succ: u64) {
        *self.suppress.lock() = Some((pred, succ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_ops() {
        let mut c = Clock::new();
        assert!(!has_bit(&c, 0));
        set_bit(&mut c, 0);
        set_bit(&mut c, 70);
        assert!(has_bit(&c, 0) && has_bit(&c, 70) && !has_bit(&c, 69));
        clear_bit(&mut c, 70);
        assert!(!has_bit(&c, 70));
        let mut d = Clock::new();
        set_bit(&mut d, 3);
        or_into(&mut d, &c);
        assert!(has_bit(&d, 0) && has_bit(&d, 3));
    }
}

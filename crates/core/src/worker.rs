//! Worker threads: the polling execution loop and task execution.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam::deque::Worker as WorkerDeque;

use crate::error::Error;
use crate::failpoint::FaultClass;
use crate::graph;
use crate::runtime::{RuntimeInner, TaskContext};
use crate::stats::StatField;
use crate::task::{TaskId, TaskNode, TaskState};
use crate::trace::TraceEvent;

/// Main loop of one worker thread.
///
/// The loop polls for ready tasks (own deque → global queue → stealing) and
/// only terminates once the runtime has been shut down *and* no task is in
/// flight — mirroring the always-polling Nanos++ workers described in the
/// paper.
pub(crate) fn worker_loop(
    inner: Arc<RuntimeInner>,
    deque: WorkerDeque<Arc<TaskNode>>,
    worker_id: usize,
) {
    // Reused across every task this worker executes, so the steady-state
    // wakeup path allocates nothing (see `graph::complete_into`).
    let mut ready = Vec::new();
    loop {
        match inner.sched.pop(worker_id, Some(&deque)) {
            Some(node) => {
                execute_task(&inner, node, Some(worker_id), Some(&deque), &mut ready);
            }
            None => {
                if inner.shutdown.load(Ordering::SeqCst)
                    && inner.in_flight.load(Ordering::SeqCst) == 0
                {
                    break;
                }
                inner.sched.idle_wait();
            }
        }
    }
}

/// Execute one task: run the body, notify successors, update counters, and
/// hand the node back to the slab when this worker held its last reference.
///
/// Also used by nested `taskwait` helpers (with `deque = None`), in which
/// case woken successors go to the global queue instead of a local deque.
/// `ready` is the caller's reusable wakeup buffer; it is drained before
/// returning.
pub(crate) fn execute_task(
    inner: &Arc<RuntimeInner>,
    node: Arc<TaskNode>,
    worker: Option<usize>,
    deque: Option<&WorkerDeque<Arc<TaskNode>>>,
    ready: &mut Vec<Arc<TaskNode>>,
) {
    // Poison / cancellation short-circuit: the node is retired through the
    // exact same tracker/ticket tail as an executed task — only the body is
    // skipped — so diagnostics still drain to zero and versions recycle.
    if let Some(origin) = node.poison_origin() {
        retire_without_run(inner, node, worker, deque, ready, Some(origin));
        return;
    }
    if node.is_cancelled() {
        retire_without_run(inner, node, worker, deque, ready, None);
        return;
    }

    node.set_state(TaskState::Running);
    // Snapshot the identity: the node must not be re-initialised (a recycle
    // would mint a new id and bump the generation) while we execute it.
    let (task_id, generation) = (node.id, node.generation);
    let trace_enabled = inner.trace.is_enabled();
    if trace_enabled {
        inner.trace.record(TraceEvent::Started {
            task: task_id,
            worker: worker.unwrap_or(usize::MAX),
            at_ns: inner.trace.now_ns(),
        });
    }

    // A missing body means the node was already executed (a duplicate
    // wakeup would be a scheduler bug, surfaced loudly in debug builds) —
    // whoever ran the body also owns the completion tail, so the only safe
    // move here is to drop this reference without double-retiring.
    let Some(body) = node.body.lock().take() else {
        debug_assert!(false, "task body executed more than once");
        return;
    };
    let inject_panic = inner
        .fault
        .as_ref()
        .is_some_and(|plan| plan.roll(FaultClass::TaskPanic, task_id.raw()));
    let panicked = {
        let ctx = TaskContext {
            inner,
            node: &node,
            worker,
            deque,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                // lint: allow(panic) — deliberate fault injection, caught by
                // the surrounding catch_unwind (see failpoint.rs).
                panic!("injected fault: task panic");
            }
            body.run(&ctx)
        }));
        match result {
            Ok(()) => false,
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                inner.record_panic(Error::TaskPanicked {
                    task: node.display_name(),
                    message,
                });
                true
            }
        }
    };

    if trace_enabled {
        inner.trace.record(TraceEvent::Finished {
            task: task_id,
            worker: worker.unwrap_or(usize::MAX),
            at_ns: inner.trace.now_ns(),
            panicked,
        });
    }

    // Deterministic completion delay: widens the window between "body done"
    // and "successors woken / history retired" to shake out ordering bugs,
    // without touching the wall clock.
    if let Some(plan) = inner.fault.as_ref() {
        if plan.roll(FaultClass::DelayedCompletion, task_id.raw()) {
            for _ in 0..plan.delay_spins() {
                std::thread::yield_now();
            }
        }
    }

    // Wake successors. A panicked task still releases its dependants so the
    // graph always drains — but it *poisons* them on the way out: they flow
    // through the scheduler and the retire tail below like any other task,
    // they just never run their bodies (see `retire_without_run`).
    debug_assert!(ready.is_empty());
    let dcheck = inner.dcheck.as_ref();
    if panicked {
        inner.note_poison(task_id);
        graph::complete_into_poison(&node, ready, task_id, dcheck);
    } else {
        graph::complete_into(&node, ready, dcheck);
    }

    inner.stats.add(StatField::TasksExecuted, 1);
    retire_node(inner, node, worker, deque, ready, task_id, generation);
}

/// Retire a poisoned or cancelled task without running its body.
///
/// `poisoned_by` is `Some(origin)` for a node poisoned by an upstream
/// failure and `None` for a node whose cancel flag was raised — in the
/// latter case this node becomes the poison origin for everything
/// downstream. Either way the node takes the exact same completion tail as
/// an executed task (poison-propagate → retire → release tickets →
/// recycle), which is what keeps `in_flight`, the tracker diagnostics and
/// the slab ledger balanced after a failed run.
fn retire_without_run(
    inner: &Arc<RuntimeInner>,
    node: Arc<TaskNode>,
    worker: Option<usize>,
    deque: Option<&WorkerDeque<Arc<TaskNode>>>,
    ready: &mut Vec<Arc<TaskNode>>,
    poisoned_by: Option<TaskId>,
) {
    let (task_id, generation) = (node.id, node.generation);
    // Drop the unrun closure now: a skipped task must release its captured
    // data handles exactly like an executed one, or `into_inner` could
    // never regain exclusivity after a poisoned drain.
    node.body.lock().clear();

    let origin = match poisoned_by {
        Some(origin) => {
            inner.stats.add(StatField::TasksPoisoned, 1);
            if inner.trace.is_enabled() {
                inner.trace.record(TraceEvent::Poisoned {
                    task: task_id,
                    origin,
                    at_ns: inner.trace.now_ns(),
                });
            }
            origin
        }
        None => {
            inner.stats.add(StatField::TasksCancelled, 1);
            inner.note_poison(task_id);
            if inner.trace.is_enabled() {
                inner.trace.record(TraceEvent::Cancelled {
                    task: task_id,
                    at_ns: inner.trace.now_ns(),
                });
            }
            task_id
        }
    };

    debug_assert!(ready.is_empty());
    graph::complete_into_poison(&node, ready, origin, inner.dcheck.as_ref());
    retire_node(inner, node, worker, deque, ready, task_id, generation);
}

/// The shared completion tail: wake (already-drained-into-`ready`)
/// successors, retire the dependence history, release version tickets, and
/// hand the node back to the slab. Identical for executed, panicked,
/// poisoned and cancelled tasks — the ordering here is load-bearing (see
/// the comments inline).
fn retire_node(
    inner: &Arc<RuntimeInner>,
    node: Arc<TaskNode>,
    worker: Option<usize>,
    deque: Option<&WorkerDeque<Arc<TaskNode>>>,
    ready: &mut Vec<Arc<TaskNode>>,
    task_id: TaskId,
    generation: u32,
) {
    let trace_enabled = inner.trace.is_enabled();
    let affinity = inner.config.policy == crate::scheduler::SchedulerPolicy::ShardAffinity;

    // Under shard-affinity scheduling each successor carries its dominant
    // tracker shard as a placement hint.
    for succ in ready.drain(..) {
        if trace_enabled {
            inner.trace.record(TraceEvent::Ready {
                task: succ.id,
                at_ns: inner.trace.now_ns(),
            });
        }
        let shard = if affinity {
            succ.accesses
                .first()
                .map(|a| inner.tracker.shard_of(a.region.id.alloc))
        } else {
            None
        };
        inner.sched.push_wakeup(succ, deque, worker, shard);
    }

    // Retire the task's dependence history through the sharded router:
    // its live references become tombstones under the owning shards' locks
    // only, so completions on disjoint allocations never contend (and the
    // node — closure, successors, tickets — is released now, not at the
    // next garbage collection).
    inner.tracker.retire(&node);

    // Only now release the version bindings, so superseded versions can be
    // recycled (see rename.rs; successors bound to the same versions hold
    // their own tickets). Releasing strictly *after* retirement is what
    // makes first-write rename elision deterministic: a binding count of
    // zero then guarantees every earlier task on the version is already a
    // tombstone in the tracker — an elided overwrite can inherit no WAR/WAW
    // edge.
    let released = node.release_tickets();
    if released != 0 {
        inner.rename.note_tickets_released(released as u64);
    }

    // Record this worker as the shard's last completer (the shard-affinity
    // locality key) — after retirement, so the data really is done here.
    if affinity {
        if let (Some(w), Some(access)) = (worker, node.accesses.first()) {
            inner
                .sched
                .note_shard_completion(inner.tracker.shard_of(access.region.id.alloc), w);
        }
    }

    debug_assert!(
        node.id == task_id && node.generation == generation,
        "task node was recycled while executing"
    );

    // Retired, tickets released, bookkeeping done: if this worker holds the
    // last reference, the node's storage goes back to the slab for the next
    // spawn (transient holders — a `taskwait_on` spinner, a fetch — simply
    // make it drop normally; recycling is best-effort). This happens
    // *before* the completion counters tick over, so once `taskwait`
    // observes a drained runtime every node really is parked or freed —
    // `task_slab_diagnostics().outstanding == 0` is a firm post-drain
    // invariant, not a race. The parent tracker comes back out of the node
    // (the worker still owes it the `child_done` below).
    let parent_children = inner.slab.try_recycle(node, worker);

    parent_children.child_done();
    inner.in_flight.fetch_sub(1, Ordering::SeqCst);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

//! Deterministic, seeded fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a pure function from `(seed, fault class, serial)` to
//! "inject or not": no wall clock, no global RNG state, no environment
//! variables. The serial is the task's spawn id for task-granular faults
//! (task-body panics, delayed completions) and a per-class call counter for
//! infrastructure faults (forced rename-budget exhaustion, forced tracker
//! fast-path fallbacks, queue-full bursts), so a plan replays the *same*
//! decisions for the same workload shape — a chaos counterexample found in
//! CI reproduces locally from nothing but the seed.
//!
//! Rates are expressed per million rolls. The decision is
//! `splitmix64(seed ⊕ class ⊕ serial) mod 1_000_000 < rate`, which makes
//! every class an independent Bernoulli stream over serials.
//!
//! When no plan is installed ([`RuntimeConfig`](crate::RuntimeConfig) default)
//! the hooks cost a single `Option` check on an `Arc` field — no atomics, no
//! hashing.
//!
//! # Worked example: a chaos test
//!
//! Inject a panic into roughly 1 in 50 task bodies and delay 1 in 20
//! completions, then assert the failure semantics: the graph drains (no
//! stranded successor hangs the `taskwait`), poisoned work never commits,
//! and the tracker/slab diagnostics return to zero.
//!
//! ```
//! use ompss::{FaultClass, FaultPlan, Runtime, RuntimeConfig};
//!
//! let plan = FaultPlan::seeded(0xC4A05)
//!     .panic_one_in(50)
//!     .delay_one_in(20, 64);
//! let rt = Runtime::new(
//!     RuntimeConfig::default()
//!         .with_workers(2)
//!         .with_fault_plan(plan.clone()),
//! );
//! let sum = rt.data(0u64);
//! for i in 0..200u64 {
//!     let sum = sum.clone();
//!     rt.task().inout(&sum).spawn(move |ctx| {
//!         *ctx.write(&sum) += i;
//!     });
//! }
//! // The chain is serialised on `sum`: the first injected panic poisons
//! // every later task, so the surviving prefix sum is still exact.
//! let poisoned = rt.try_taskwait().is_err();
//! assert_eq!(poisoned, plan.injected(FaultClass::TaskPanic) > 0);
//! assert_eq!(rt.in_flight_tasks(), 0);
//! assert_eq!(rt.task_slab_diagnostics().outstanding, 0);
//! assert!(rt.tracker_diagnostics().total_regions() == 0);
//! rt.shutdown();
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The classes of fault a [`FaultPlan`] can inject. Each class draws from an
/// independent deterministic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Panic injected into a task body just as it starts executing (the
    /// body's captures are dropped unrun; successors are poisoned exactly as
    /// for a genuine body panic). Serial: the task's spawn id.
    TaskPanic = 0,
    /// Spin/yield delay inserted between a task body finishing and its
    /// completion being published, widening the window in which successors
    /// are registered against a finished-but-incomplete predecessor.
    /// Serial: the task's spawn id.
    DelayedCompletion = 1,
    /// An `output` rename forced to behave as if the byte budget were
    /// exhausted: the access falls back to serialising in place (the
    /// documented backpressure path). Serial: per-class call counter.
    RenameExhaustion = 2,
    /// A tracker registration (or single-access retirement) forced off the
    /// optimistic fast path onto the shard mutex. Serial: per-class call
    /// counter.
    TrackerFallback = 3,
    /// An ingest-queue push forced to report the queue as full, shedding the
    /// job even below capacity. Serial: per-class call counter.
    QueueFull = 4,
}

const NUM_CLASSES: usize = 5;

/// SplitMix64: a full-period mixer; consecutive serials map to
/// statistically independent outputs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, deterministic fault-injection plan. See the [module
/// docs](crate::failpoint) for the indexing discipline and a worked example.
///
/// Cheap to share: install one plan into a
/// [`RuntimeConfig`](crate::RuntimeConfig::with_fault_plan) and keep a clone
/// to read the injection counters after the run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

#[derive(Debug)]
struct PlanInner {
    seed: u64,
    /// Injection rate per million rolls, per class.
    rates: [u32; NUM_CLASSES],
    /// Yields inserted per delayed completion.
    delay_spins: u32,
    /// Per-class call counters for classes without a natural serial.
    serials: [AtomicU64; NUM_CLASSES],
    /// Per-class count of faults actually injected.
    injected: [AtomicU64; NUM_CLASSES],
}

impl FaultPlan {
    /// A plan with the given seed and every rate zero.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed,
                rates: [0; NUM_CLASSES],
                delay_spins: 32,
                serials: Default::default(),
                injected: Default::default(),
            }),
        }
    }

    /// The seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    fn with_rate(self, class: FaultClass, per_million: u32) -> Self {
        let mut inner = PlanInner {
            seed: self.inner.seed,
            rates: self.inner.rates,
            delay_spins: self.inner.delay_spins,
            serials: Default::default(),
            injected: Default::default(),
        };
        inner.rates[class as usize] = per_million.min(1_000_000);
        FaultPlan {
            inner: Arc::new(inner),
        }
    }

    /// Set an explicit per-million injection rate for `class`.
    pub fn rate_per_million(self, class: FaultClass, per_million: u32) -> Self {
        self.with_rate(class, per_million)
    }

    /// Inject a task-body panic roughly once per `n` tasks.
    pub fn panic_one_in(self, n: u64) -> Self {
        self.with_rate(FaultClass::TaskPanic, one_in(n))
    }

    /// Delay roughly one in `n` completions by `spins` scheduler yields.
    pub fn delay_one_in(self, n: u64, spins: u32) -> Self {
        let mut plan = self.with_rate(FaultClass::DelayedCompletion, one_in(n));
        // The Arc was just freshly minted by `with_rate`.
        Arc::get_mut(&mut plan.inner)
            .expect("freshly built plan is unshared")
            .delay_spins = spins;
        plan
    }

    /// Force roughly one in `n` renames to see an exhausted byte budget.
    pub fn rename_exhaust_one_in(self, n: u64) -> Self {
        self.with_rate(FaultClass::RenameExhaustion, one_in(n))
    }

    /// Force roughly one in `n` tracker operations off the fast path.
    pub fn tracker_fallback_one_in(self, n: u64) -> Self {
        self.with_rate(FaultClass::TrackerFallback, one_in(n))
    }

    /// Force roughly one in `n` ingest-queue pushes to see a full queue.
    pub fn queue_full_one_in(self, n: u64) -> Self {
        self.with_rate(FaultClass::QueueFull, one_in(n))
    }

    /// Decide (and record) whether to inject `class` at `serial`. Pure in
    /// `(seed, class, serial)`; the only mutation is the injected counter.
    pub fn roll(&self, class: FaultClass, serial: u64) -> bool {
        let rate = self.inner.rates[class as usize];
        if rate == 0 {
            return false;
        }
        let key = self
            .inner
            .seed
            .wrapping_add((class as u64).wrapping_mul(0xA076_1D64_78BD_642F))
            ^ serial.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        let hit = splitmix64(key) % 1_000_000 < rate as u64;
        if hit {
            self.inner.injected[class as usize].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// As [`FaultPlan::roll`] with the class's own call counter as serial —
    /// for hooks without a natural serial (rename, tracker, queue).
    pub fn roll_next(&self, class: FaultClass) -> bool {
        if self.inner.rates[class as usize] == 0 {
            return false;
        }
        let serial = self.inner.serials[class as usize].fetch_add(1, Ordering::Relaxed);
        self.roll(class, serial)
    }

    /// Yields inserted per delayed completion.
    pub fn delay_spins(&self) -> u32 {
        self.inner.delay_spins
    }

    /// Faults of `class` injected so far.
    pub fn injected(&self, class: FaultClass) -> u64 {
        self.inner.injected[class as usize].load(Ordering::Relaxed)
    }

    /// Faults injected so far, all classes.
    pub fn total_injected(&self) -> u64 {
        self.inner
            .injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// `1/n` as a per-million rate (`n = 0` means never, `n = 1` always).
fn one_in(n: u64) -> u32 {
    match n {
        0 => 0,
        n => (1_000_000 / n).max(1) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_in_seed_class_serial() {
        let a = FaultPlan::seeded(7).panic_one_in(10);
        let b = FaultPlan::seeded(7).panic_one_in(10);
        let decisions_a: Vec<bool> = (0..1000).map(|s| a.roll(FaultClass::TaskPanic, s)).collect();
        let decisions_b: Vec<bool> = (0..1000).map(|s| b.roll(FaultClass::TaskPanic, s)).collect();
        assert_eq!(decisions_a, decisions_b);
        assert_eq!(
            a.injected(FaultClass::TaskPanic),
            b.injected(FaultClass::TaskPanic)
        );
        assert!(a.injected(FaultClass::TaskPanic) > 0, "1-in-10 over 1000");
    }

    #[test]
    fn different_seeds_differ_and_classes_are_independent() {
        let a = FaultPlan::seeded(1).panic_one_in(4);
        let b = FaultPlan::seeded(2).panic_one_in(4);
        let da: Vec<bool> = (0..256).map(|s| a.roll(FaultClass::TaskPanic, s)).collect();
        let db: Vec<bool> = (0..256).map(|s| b.roll(FaultClass::TaskPanic, s)).collect();
        assert_ne!(da, db, "seed must matter");
        // A class with rate 0 never fires even at a hot serial.
        assert!((0..256).all(|s| !a.roll(FaultClass::QueueFull, s)));
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan::seeded(42).rate_per_million(FaultClass::TaskPanic, 100_000);
        let hits = (0..10_000)
            .filter(|&s| plan.roll(FaultClass::TaskPanic, s))
            .count();
        // 10% of 10k = 1000 expected; allow a generous deterministic band.
        assert!((600..1400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn roll_next_advances_the_class_serial() {
        let plan = FaultPlan::seeded(3).queue_full_one_in(2);
        let first: Vec<bool> = (0..100).map(|_| plan.roll_next(FaultClass::QueueFull)).collect();
        assert!(first.iter().any(|&h| h) && first.iter().any(|&h| !h));
        // Re-seeded plan replays the same stream.
        let replay = FaultPlan::seeded(3).queue_full_one_in(2);
        let second: Vec<bool> = (0..100)
            .map(|_| replay.roll_next(FaultClass::QueueFull))
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn one_in_bounds() {
        assert_eq!(one_in(0), 0);
        assert_eq!(one_in(1), 1_000_000);
        assert_eq!(one_in(2), 500_000);
        assert_eq!(one_in(10_000_000), 1, "sub-ppm clamps to 1");
    }
}

//! `taskloop`-style helpers: spawn one task per chunk of an index range.
//!
//! OmpSs (and later OpenMP versions) provide a `taskloop` construct that
//! splits a loop into tasks. The benchmarks in this repository mostly spawn
//! their per-chunk tasks by hand (as the paper's code does), but the helper
//! here captures the common pattern — one task per fixed-size block of
//! iterations, each declaring an `output` access on its chunk of a
//! [`PartitionedData`] — with far less boilerplate.

use crate::capture::CaptureScope;
use crate::handle::PartitionedData;
use crate::runtime::Runtime;
use crate::task::TaskId;

/// Spawn one task per chunk of `data`; each task receives `(chunk_index,
/// &mut [T])` and fills its chunk. Returns the spawned task ids.
///
/// Equivalent to a `#pragma omp taskloop` over the chunks with an `output`
/// dependence on each chunk. The caller still decides when to `taskwait`.
pub fn taskloop_fill<T, F>(rt: &Runtime, data: &PartitionedData<T>, body: F) -> Vec<TaskId>
where
    T: Send + 'static,
    F: Fn(usize, &mut [T]) + Send + Sync + Clone + 'static,
{
    let mut ids = Vec::with_capacity(data.num_chunks());
    for (i, chunk) in data.chunk_handles().enumerate() {
        let body = body.clone();
        let id = rt
            .task()
            .name("taskloop_fill")
            .output(&chunk)
            .spawn(move |ctx| {
                let mut slice = ctx.write_chunk(&chunk);
                body(i, &mut slice);
            });
        ids.push(id);
    }
    ids
}

/// As [`taskloop_fill`], but spawned through a [`CaptureScope`]: the fill
/// runs now (the capture iteration) *and* is recorded into the scope's
/// template, so later [`Runtime::replay`](crate::Runtime::replay) passes
/// re-run the whole per-chunk fill as one batch. `body` receives
/// `(chunk_index, &mut [T])` like the uncaptured helper; per-pass state can
/// be derived from
/// [`TaskContext::replay_pass`](crate::TaskContext::replay_pass) inside it.
/// Returns the capture iteration's task ids.
pub fn taskloop_fill_captured<T, F>(
    scope: &mut CaptureScope<'_>,
    data: &PartitionedData<T>,
    body: F,
) -> Vec<TaskId>
where
    T: Send + 'static,
    F: Fn(usize, &mut [T]) + Send + Sync + Clone + 'static,
{
    let mut ids = Vec::with_capacity(data.num_chunks());
    for (i, chunk) in data.chunk_handles().enumerate() {
        let body = body.clone();
        let id = scope
            .task()
            .name("taskloop_fill")
            .output(&chunk)
            .spawn(move |ctx| {
                let mut slice = ctx.write_chunk(&chunk);
                body(i, &mut slice);
            });
        ids.push(id);
    }
    ids
}

/// Spawn one task per chunk of `input`, reducing each chunk to a value with
/// `map`, then a final task combining the per-chunk values with `fold`
/// (starting from `init`). Returns a handle-like result once the graph
/// drains: the function performs a `taskwait_on` internally and returns the
/// reduced value.
///
/// This is the "map over chunks + reduction task" idiom used by the kmeans
/// and bodytrack benchmarks, packaged as a single call.
pub fn taskloop_reduce<T, A, M, F>(
    rt: &Runtime,
    input: &PartitionedData<T>,
    init: A,
    map: M,
    fold: F,
) -> A
where
    T: Send + 'static,
    A: Send + Clone + 'static,
    M: Fn(usize, &[T]) -> A + Send + Sync + Clone + 'static,
    F: Fn(A, A) -> A + Send + Sync + 'static,
{
    let partials = rt.partitioned(vec![None::<A>; input.num_chunks()], 1);
    for (i, chunk) in input.chunk_handles().enumerate() {
        let map = map.clone();
        let slot = partials.chunk(i);
        rt.task()
            .name("taskloop_map")
            .input(&chunk)
            .output(&slot)
            .spawn(move |ctx| {
                let data = ctx.read_chunk(&chunk);
                ctx.write_chunk(&slot)[0] = Some(map(i, &data));
            });
    }
    let result = rt.data(Some(init));
    {
        let whole = partials.whole();
        let result = result.clone();
        rt.task()
            .name("taskloop_reduce")
            .input(&whole)
            .inout(&result)
            .spawn(move |ctx| {
                let parts = ctx.read_whole(&whole);
                let mut acc = ctx.write(&result);
                let mut value = acc.take().expect("reduction seed present");
                for p in parts.iter() {
                    let p = p.clone().expect("map task filled its slot");
                    value = fold(value, p);
                }
                *acc = Some(value);
            });
    }
    rt.fetch(&result).expect("reduction task ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeConfig;

    #[test]
    fn taskloop_fill_writes_every_chunk() {
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        let data = rt.partitioned(vec![0u32; 100], 9);
        let ids = taskloop_fill(&rt, &data, |chunk_idx, slice| {
            for (j, v) in slice.iter_mut().enumerate() {
                *v = (chunk_idx * 100 + j) as u32;
            }
        });
        assert_eq!(ids.len(), data.num_chunks());
        rt.taskwait();
        let out = rt.into_vec(data);
        assert_eq!(out[0], 0);
        assert_eq!(out[9], 100); // second chunk, first element
        // Element 99 is the only element of chunk 11 (chunks of 9 over 100).
        assert_eq!(out[99], 1_100);
    }

    #[test]
    fn taskloop_reduce_computes_a_sum() {
        let rt = Runtime::new(RuntimeConfig::default().with_workers(3));
        let data = rt.partitioned((1..=1000u64).collect::<Vec<_>>(), 64);
        let sum = taskloop_reduce(
            &rt,
            &data,
            0u64,
            |_i, chunk| chunk.iter().sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(sum, 500_500);
        rt.taskwait();
    }

    #[test]
    fn taskloop_reduce_depends_on_prior_writers() {
        // Fill the data with tasks, then reduce: the reduction must observe
        // the fills through the dependence graph, with no explicit barrier in
        // between.
        let rt = Runtime::new(RuntimeConfig::default().with_workers(2));
        let data = rt.partitioned(vec![0u64; 256], 32);
        taskloop_fill(&rt, &data, |_c, slice| {
            for v in slice.iter_mut() {
                *v = 3;
            }
        });
        let sum = taskloop_reduce(&rt, &data, 0u64, |_i, c| c.iter().sum(), |a, b| a + b);
        assert_eq!(sum, 3 * 256);
        rt.taskwait();
    }
}

//! Runtime dependence analysis and the task graph.
//!
//! This module is the OmpSs "superscalar" piece: just like an out-of-order
//! processor renames and tracks register dependences between in-flight
//! instructions, the tracker here records, per memory region, which in-flight
//! tasks last wrote it and which have read it since, and derives the
//! dependence edges of every newly spawned task from its declared accesses.
//!
//! The rules implemented (for a *later* task L registering after an *earlier*
//! task E, on overlapping regions):
//!
//! * L reads (`input`): L depends on E if E writes (RAW) — including
//!   `concurrent` writers.
//! * L writes (`output`/`inout`): L depends on every earlier reader (WAR) and
//!   writer (WAW).
//! * L is `concurrent`: L depends on earlier plain writers and readers, but
//!   **not** on earlier `concurrent` accesses (commutative updates may
//!   reorder among themselves).
//!
//! WAR/WAW edges serialise tasks on a given data *version* — the behaviour
//! the paper works around with circular buffers in the H.264 pipeline
//! (Listing 1). With automatic renaming (see [`crate::rename`]), `output`
//! accesses on versioned handles resolve to a **fresh version** (a fresh
//! allocation identity) *before* they reach this tracker, so the WAR/WAW
//! edges that would serialise them simply never arise here: the renamed
//! writer overlaps nothing in flight. The tracker itself needs no renaming
//! special-case; it classifies every edge it does insert (RAW / WAR / WAW)
//! so the effect of renaming is visible in the statistics.
//!
//! ## Sharding
//!
//! The tracker is the insertion-side critical path: every spawned task takes
//! it to register, and (since the retire path landed) every completed task
//! takes it again to retire its history. A single map behind a single lock
//! serialises all of that, so the tracker is **sharded by allocation id**:
//! [`ShardedTracker`] routes every region to the shard
//! `alloc_id % num_shards`, and each [`TrackerShard`] owns its own lock,
//! `entries` map, `by_alloc` index and retire path. Renaming gives every data
//! version a fresh allocation id, so shards stay naturally balanced.
//!
//! A registration that touches several allocations locks every involved
//! shard **in canonical order** (ascending shard index) and holds them all
//! for the whole registration, which keeps multi-shard registration atomic
//! (the linearisation point of the spawn) and deadlock-free. Because regions
//! of one allocation always live in exactly one shard, the per-registration
//! outcome — predecessors discovered, edges added, and their order — is
//! identical for every shard count; `tests/tracker_equivalence.rs` pins this.
//!
//! ## The optimistic fast path
//!
//! Most tasks declare one or two accesses on a single allocation (renaming
//! makes this the steady state: every version is a fresh allocation), so the
//! dominant registration touches exactly one shard. For that case each shard
//! carries a seqlock-style **sequence gate** (`AtomicU64`; even = quiescent,
//! odd = a mutator holds the shard): a single-shard registration publishes
//! itself with **one CAS** on the gate — no mutex, no blocking — walks the
//! shard history to discover its RAW/WAR/WAW predecessors exactly as the
//! locked path would, records its accesses, and releases the gate with one
//! store. Per-shard scratch buffers make the steady-state fast path
//! allocation-free. The CAS either succeeds immediately or the registration
//! **falls back** to the mutex path; fallbacks happen on
//!
//! * contention (another registration, retirement or `taskwait on` lookup
//!   holds the shard),
//! * multi-allocation spans (accesses mapping to more than one shard), and
//! * garbage collection in progress (GC locks every shard, which holds every
//!   gate odd for the duration of the sweep).
//!
//! The mutex path *also* acquires the gate (after the mutex, waiting out at
//! most one short fast-path publication), so the gate is the single point of
//! mutual exclusion per shard and both paths mutate the same history maps —
//! which is why the edge multiset is byte-identical between the optimistic
//! and the forced-locked configuration
//! ([`RuntimeConfig::with_tracker_fast_path`](crate::RuntimeConfig::with_tracker_fast_path));
//! `tests/tracker_equivalence.rs` pins that too. Hits and fallbacks are
//! counted (`tracker_fast_path_hits` / `tracker_fast_path_fallbacks` in
//! [`RuntimeStats`](crate::RuntimeStats)), and traced edges carry a
//! `fast_path` flag. Completion retirement of single-access tasks uses the
//! same single-CAS protocol.
//!
//! ## Retirement
//!
//! When a task completes, the worker retires it through the router: each of
//! its history references is replaced, under the owning shard's lock only, by
//! a lightweight *tombstone* (its [`TaskId`]). Tombstones keep
//! `predecessors_seen` deterministic (a completed-but-conflicting predecessor
//! is still *seen*, exactly as before the retire path existed) while
//! releasing the task node itself — closures, successor lists, version
//! tickets — as soon as the task finishes. [`TrackerShard::garbage_collect`]
//! then drops tombstoned entries and scrubs `by_alloc`, so fully retired
//! allocations leave both maps; it runs per shard, periodically from the
//! spawn path and at every quiescent `taskwait`.
//!
//! [`crate::rename`]: crate::rename

use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::access::{Access, AccessKind, AccessVec, Dependence};
use crate::region::{AllocId, Region, RegionId};
use crate::stats::TrackerCounters;
use crate::task::{TaskId, TaskNode, TaskState};

/// A cheap multiply–xorshift hasher for the tracker's id-keyed maps.
/// Allocation and region ids are small sequential counters minted by the
/// runtime itself (never attacker-controlled), so SipHash's DoS resistance
/// buys nothing here while its latency sits directly on the task-insertion
/// hot path — every registration performs several map operations per access.
#[derive(Default, Clone)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the id key types, which are u64/u32).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        // Golden-ratio multiply + xorshift: sequential ids spread over the
        // whole table.
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }
}

type IdBuildHasher = std::hash::BuildHasherDefault<IdHasher>;

/// One in-flight (or retired) access recorded in a region's history.
enum HistoryRef {
    /// The task is still live: edges can be added to it and `taskwait on`
    /// must wait for it.
    Live(Arc<TaskNode>),
    /// The task completed and was retired: only its identity is kept, so
    /// that `predecessors_seen` stays deterministic until the next garbage
    /// collection (see [`Registration::predecessors_seen`]).
    Retired(TaskId),
}

impl HistoryRef {
    fn id(&self) -> TaskId {
        match self {
            HistoryRef::Live(t) => t.id,
            HistoryRef::Retired(id) => *id,
        }
    }

    fn live(&self) -> Option<&Arc<TaskNode>> {
        match self {
            HistoryRef::Live(t) => Some(t),
            HistoryRef::Retired(_) => None,
        }
    }

    /// Whether the reference still pins a live, incomplete task (everything
    /// else is garbage-collectable).
    fn is_live_incomplete(&self) -> bool {
        match self {
            HistoryRef::Live(t) => !t.is_completed(),
            HistoryRef::Retired(_) => false,
        }
    }
}

/// Per-region bookkeeping of in-flight accesses.
#[derive(Default)]
struct RegionEntry {
    /// The byte range this region id refers to (recorded on first sight).
    region: Option<Region>,
    /// Tasks forming the last "writer generation".
    writers: Vec<HistoryRef>,
    /// Tasks that have read the region since the last writer generation.
    readers: Vec<HistoryRef>,
    /// Tasks with `concurrent` access since the last plain writer.
    concurrent: Vec<HistoryRef>,
}

impl RegionEntry {
    fn lists_mut(&mut self) -> [&mut Vec<HistoryRef>; 3] {
        [&mut self.writers, &mut self.readers, &mut self.concurrent]
    }
}

/// A predecessor discovered during registration: its identity, the live node
/// (when an edge can still be added), the dependence class of the first
/// conflict that introduced it, and the shard it was found in.
struct PredRef {
    id: TaskId,
    live: Option<Arc<TaskNode>>,
    dependence: Dependence,
    shard: usize,
}

/// One shard of the dependence tracker: the region history and per-allocation
/// index for every allocation routed to it. All methods expect the caller
/// (the [`ShardedTracker`] router) to hold this shard's lock.
#[derive(Default)]
pub(crate) struct TrackerShard {
    entries: HashMap<RegionId, RegionEntry, IdBuildHasher>,
    /// All region ids currently tracked per allocation, used for overlap
    /// scans.
    by_alloc: HashMap<AllocId, Vec<RegionId>, IdBuildHasher>,
    /// Scratch buffers reused by every single-shard registration — the
    /// optimistic fast path *and* the mutex path — so the steady-state
    /// registration allocates nothing on either tier. Only ever touched
    /// while the shard's gate is held (exclusive access), and always left
    /// empty.
    scratch_preds: Vec<PredRef>,
    scratch_seen: Vec<TaskId>,
    /// Scratch set reused by [`TrackerShard::garbage_collect`], so periodic
    /// and quiescent sweeps stay allocation-free in steady state too.
    scratch_gc: HashSet<RegionId, IdBuildHasher>,
}

impl TrackerShard {
    /// Pass 1 of registration: collect the predecessors `access` conflicts
    /// with from this shard's history, deduplicated across `seen`.
    fn collect_preds(
        &self,
        access: &Access,
        shard: usize,
        preds: &mut Vec<PredRef>,
        seen: &mut Vec<TaskId>,
    ) {
        // Iterate the allocation's region ids in place (same order as
        // `overlapping_ids`, without materialising the id list — this runs
        // once per access on the insertion hot path).
        let Some(ids) = self.by_alloc.get(&access.region.id.alloc) else {
            return;
        };
        for rid in ids {
            let entry = match self.entries.get(rid) {
                Some(e) => e,
                None => continue,
            };
            match &entry.region {
                Some(r) if r.overlaps(&access.region) => {}
                _ => continue,
            }
            let later = access.kind;
            // Statistics classification. This deliberately diverges from
            // `access::classify` for read-modify-writes: an `inout` (or
            // `concurrent`) after a writer *reads* the written data, so
            // the edge carries a genuine data flow and is counted RAW —
            // it is not serialisation that renaming could remove. WAR and
            // WAW are reserved for edges where the successor overwrites
            // without reading (the renameable false dependences).
            let vs_writer = if later.reads() {
                Dependence::ReadAfterWrite
            } else {
                Dependence::WriteAfterWrite
            };
            // Earlier writers always order later readers and writers.
            for w in &entry.writers {
                push_pred(preds, seen, w, vs_writer, shard);
            }
            match later {
                AccessKind::Input => {
                    // RAW only; concurrent accumulators count as writers.
                    for c in &entry.concurrent {
                        push_pred(preds, seen, c, Dependence::ReadAfterWrite, shard);
                    }
                }
                AccessKind::Output | AccessKind::InOut => {
                    for r in &entry.readers {
                        push_pred(preds, seen, r, Dependence::WriteAfterRead, shard);
                    }
                    for c in &entry.concurrent {
                        push_pred(preds, seen, c, vs_writer, shard);
                    }
                }
                AccessKind::Concurrent => {
                    // Order against plain readers, not against other
                    // concurrent accesses.
                    for r in &entry.readers {
                        push_pred(preds, seen, r, Dependence::WriteAfterRead, shard);
                    }
                }
            }
        }
    }

    /// Pass 3 of registration: record `access` of `node` in this shard's
    /// history so that future tasks depend on `node` where required.
    fn record_access(&mut self, access: &Access, node: &Arc<TaskNode>) {
        let rid = access.region.id;
        let ids = self.by_alloc.entry(rid.alloc).or_default();
        ids.retain(|r| *r != rid);
        ids.push(rid);
        let entry = self.entries.entry(rid).or_default();
        if entry.region.is_none() {
            entry.region = Some(access.region.clone());
        }
        match access.kind {
            AccessKind::Input => entry.readers.push(HistoryRef::Live(node.clone())),
            AccessKind::Output | AccessKind::InOut => {
                entry.writers.clear();
                entry.writers.push(HistoryRef::Live(node.clone()));
                entry.readers.clear();
                entry.concurrent.clear();
            }
            AccessKind::Concurrent => entry.concurrent.push(HistoryRef::Live(node.clone())),
        }
    }

    /// Bulk-publish one [`FrozenInstall`]: replace the region's history with
    /// the batch's baked net effect — exactly the state the per-task
    /// `record_access` interleave of a resolved registration would have left
    /// (an in-batch overwrite rebuilds the lists from scratch, so the final
    /// state is a pure function of the batch). `nodes` is the current
    /// iteration's node slice; the install's positions index into it. In the
    /// warm steady state this allocates nothing: the entry, its list
    /// capacities and the `by_alloc` slot all survive from the previous
    /// pass.
    fn apply_install(&mut self, inst: &FrozenInstall, nodes: &[Arc<TaskNode>]) {
        let rid = inst.region.id;
        let ids = self.by_alloc.entry(rid.alloc).or_default();
        ids.retain(|r| *r != rid);
        ids.push(rid);
        let entry = self.entries.entry(rid).or_default();
        if entry.region.is_none() {
            entry.region = Some(inst.region.clone());
        }
        entry.writers.clear();
        entry.readers.clear();
        entry.concurrent.clear();
        for &p in &inst.writers {
            entry.writers.push(HistoryRef::Live(nodes[p].clone()));
        }
        for &p in &inst.readers {
            entry.readers.push(HistoryRef::Live(nodes[p].clone()));
        }
        for &p in &inst.concurrent {
            entry.concurrent.push(HistoryRef::Live(nodes[p].clone()));
        }
    }

    /// Replace every live history reference of task `id` under region `rid`
    /// with a tombstone (the retire path). A reference already cleared by a
    /// later writer generation is silently gone — that is fine.
    fn retire_region(&mut self, rid: RegionId, id: TaskId) {
        if let Some(entry) = self.entries.get_mut(&rid) {
            for list in entry.lists_mut() {
                for r in list.iter_mut() {
                    if r.id() == id && r.live().is_some() {
                        *r = HistoryRef::Retired(id);
                    }
                }
            }
        }
    }

    /// All in-flight tasks in this shard currently accessing a region
    /// overlapping `region` (used by `taskwait on`).
    fn tasks_touching(&self, region: &Region) -> Vec<Arc<TaskNode>> {
        let mut out: Vec<Arc<TaskNode>> = Vec::new();
        let mut seen: Vec<TaskId> = Vec::new();
        for rid in self.overlapping_ids(region) {
            if let Some(entry) = self.entries.get(&rid) {
                for t in entry
                    .writers
                    .iter()
                    .chain(entry.readers.iter())
                    .chain(entry.concurrent.iter())
                    .filter_map(HistoryRef::live)
                {
                    if !t.is_completed() && !seen.contains(&t.id) {
                        seen.push(t.id);
                        out.push(t.clone());
                    }
                }
            }
        }
        out
    }

    /// Drop history references that no longer pin anything (tombstones and
    /// completed tasks), then entries left empty, then the `by_alloc` ids of
    /// dropped entries — so a fully retired allocation leaves **both** maps
    /// (`tests` pin this; `by_alloc` held stale region ids otherwise).
    fn garbage_collect(&mut self) {
        self.entries.retain(|_, e| {
            e.writers.retain(HistoryRef::is_live_incomplete);
            e.readers.retain(HistoryRef::is_live_incomplete);
            e.concurrent.retain(HistoryRef::is_live_incomplete);
            !(e.writers.is_empty() && e.readers.is_empty() && e.concurrent.is_empty())
        });
        let mut live = std::mem::take(&mut self.scratch_gc);
        debug_assert!(live.is_empty());
        live.extend(self.entries.keys().copied());
        self.by_alloc.retain(|_, ids| {
            ids.retain(|r| live.contains(r));
            !ids.is_empty()
        });
        live.clear();
        self.scratch_gc = live;
    }

    fn overlapping_ids(&self, region: &Region) -> Vec<RegionId> {
        let mut out = Vec::new();
        if let Some(ids) = self.by_alloc.get(&region.id.alloc) {
            for rid in ids {
                if let Some(entry) = self.entries.get(rid) {
                    if let Some(r) = &entry.region {
                        if r.overlaps(region) {
                            out.push(*rid);
                        }
                    }
                }
            }
        }
        // The exact region id may not be recorded yet; that is fine — no
        // history means no predecessors.
        out
    }
}

/// Result of registering a task with the tracker.
pub(crate) struct Registration {
    /// Number of predecessor edges actually added (predecessors that had not
    /// yet completed).
    pub edges: usize,
    /// Added edges that are true (read-after-write) dependences.
    pub raw_edges: usize,
    /// Added edges that are anti (write-after-read) dependences.
    pub war_edges: usize,
    /// Added edges that are output (write-after-write) dependences.
    pub waw_edges: usize,
    /// Number of distinct conflicting predecessors discovered at
    /// registration, whether or not they had already completed (retired
    /// predecessors are counted through their tombstones). Unlike `edges`
    /// this does not depend on execution timing (until history is
    /// garbage-collected), which makes it the right counter for tests and
    /// comparisons that must be deterministic under load.
    pub predecessors_seen: usize,
    /// The added edges, for trace recording: predecessor id plus the tracker
    /// shard the conflict was found in. Populated only when the caller asked
    /// for it (tracing enabled).
    pub edge_list: Vec<EdgeRecord>,
    /// Whether this registration went through the optimistic (gate-CAS)
    /// single-shard fast path rather than the mutex path.
    pub fast_path: bool,
}

/// One added dependence edge, as reported to the trace.
pub(crate) struct EdgeRecord {
    /// The predecessor task of the edge.
    pub pred: TaskId,
    /// Tracker shard in which the conflict was discovered.
    pub shard: usize,
}

/// Result of registering a whole template-replay batch with the tracker
/// under a single multi-gate acquisition: the [`Registration`] counters
/// summed over the batch, plus optional per-task edge records for tracing.
pub(crate) struct BatchRegistration {
    /// Predecessor edges actually added, summed over the batch
    /// (intra-batch edges included).
    pub edges: usize,
    /// Added true (read-after-write) dependences, summed.
    pub raw_edges: usize,
    /// Added anti (write-after-read) dependences, summed.
    pub war_edges: usize,
    /// Added output (write-after-write) dependences, summed.
    pub waw_edges: usize,
    /// Distinct conflicting predecessors seen, summed (see
    /// [`Registration::predecessors_seen`]).
    pub predecessors_seen: usize,
    /// `(batch index, added edges)` per task, in batch order. Populated only
    /// when the caller asked for edge records (tracing enabled); empty — and
    /// allocation-free — otherwise. The pre-wired path records only the
    /// *frontier* tasks here (interior edges come from the plan), so entries
    /// are sparse: index by the stored batch position, not by vector offset.
    pub per_task: Vec<(usize, Vec<EdgeRecord>)>,
}

/// One pre-resolved intra-batch dependence edge of a [`FrozenPlan`]: both
/// endpoints are batch positions (stable across passes — task ids are not),
/// plus the shard label the live scan would have produced, so traces stay
/// byte-identical with re-derivation. The dependence *class* is not stored
/// per edge — the per-pass RAW/WAR/WAW contributions are pre-summed into
/// the plan's counters at freeze time.
pub(crate) struct FrozenEdge {
    pub pred: usize,
    pub succ: usize,
    pub shard: usize,
}

/// A replay batch frozen into pre-wired form by [`build_frozen_plan`]: the
/// per-task resolved accesses (pass-invariant — freezing requires a pass
/// with zero renames, tickets or binding substitutions, so every clause
/// resolves to the same plain region every time), the intra-batch edges and
/// dep counts of every *interior* task baked in, and the validation keys
/// that let [`ShardedTracker::register_batch_prewired`] prove, under the
/// gate, that the baked edges are still the edges a live scan would derive.
///
/// A task is **interior** when every one of its accesses lands on a region
/// some earlier in-batch task fully overwrote (`output`/`inout` clears the
/// region's history and installs itself as the sole writer): from that point
/// the region's history is a pure function of the batch prefix, so the
/// task's predecessors — found by shadow-registering the batch against an
/// *empty* history — are its real predecessors on every pass. Every other
/// task is **frontier**: its history scan can see pre-batch state (the
/// previous iteration's tasks still in flight), so it is registered live
/// under the gate each pass. In an iterative workload the frontier is the
/// first write per region — a small fixed fringe of the batch.
pub(crate) struct FrozenPlan {
    /// Resolved accesses per task, cloned into each pass's nodes.
    pub accesses: Vec<AccessVec>,
    /// Sorted, deduplicated union of tracker shards the batch touches.
    pub sids: Vec<usize>,
    /// The region ids the batch uses on each allocation it touches —
    /// pairwise **disjoint** by construction (chunked partitions qualify,
    /// sub-region mixes do not: an overlapping pair would let one region's
    /// pre-batch history reach an interior task through the other's scan).
    pub allocs: Vec<(AllocId, Vec<RegionId>)>,
    /// Whether each task (by batch position) must be registered live.
    pub frontier: Vec<bool>,
    /// Position after the last frontier task. Tasks before it register
    /// their history live (a later frontier scan may need the prefix);
    /// tasks at and after it — the interior tail — never touch the history
    /// maps per task at all: their net effect is applied by the per-region
    /// bulk [`FrozenInstall`]s below, after each iteration's live prefix.
    pub scan_upto: usize,
    /// Per-region bulk history installs (one per region the batch touches,
    /// when there is anything the live prefix did not already record).
    pub installs: Vec<FrozenInstall>,
    /// Baked intra-batch edges into interior tasks.
    pub edges: Vec<FrozenEdge>,
    /// Baked in-edge count per task (zero for frontier tasks).
    pub baked_in: Vec<usize>,
    /// Baked per-pass counter contributions (interior tasks only).
    pub baked_raw: usize,
    pub baked_war: usize,
    pub baked_waw: usize,
    pub baked_preds: usize,
}

// SAFETY: `FrozenPlan` stops being auto-Send/Sync only because the resolved
// per-task `Access`es carry the raw storage pointer of the version each
// clause bound (see `crate::access::BoundPtr`). Freezing requires a pass
// with zero renames or binding substitutions, so those pointers target the
// sole, address-stable version of each handle, kept alive by the owning
// `GraphTemplate`'s recorded clauses for as long as the plan exists; the
// plan itself is immutable after construction, and the accesses are only
// *cloned* into pass nodes, where `TaskNode`'s own Send/Sync argument
// governs dereferencing. Sharing the plan across threads (templates are
// replayed concurrently) is therefore sound.
unsafe impl Send for FrozenPlan {}
unsafe impl Sync for FrozenPlan {}

impl FrozenPlan {
    /// Number of tasks one pass of the plan stamps.
    pub fn len(&self) -> usize {
        self.frontier.len()
    }
}

/// The net history effect of one batch pass on one region, baked at freeze
/// time so the interior tail can be published in O(regions + final refs)
/// instead of O(accesses) per-task `record_access` calls. Only regions an
/// in-batch `output`/`inout` overwrote get an install (interior tasks touch
/// no other kind — a task on a never-overwritten region is frontier by
/// definition, hence inside the live prefix), and an overwrite rebuilds the
/// region's history from scratch, so every install *replaces* the entry's
/// lists with the batch's final state. Positions index into the iteration's
/// node slice.
pub(crate) struct FrozenInstall {
    /// The region (carries the id; the range seeds a fresh entry).
    pub region: Region,
    /// Live tracker shard of the region's allocation.
    pub shard: usize,
    /// Final writer generation (a single position: the last overwriter).
    pub writers: Vec<usize>,
    /// Readers since the last writer generation, in batch order.
    pub readers: Vec<usize>,
    /// Concurrent accessors since the last plain writer, in batch order.
    pub concurrent: Vec<usize>,
}

/// Try to freeze a replay batch into a [`FrozenPlan`]. `nodes` are the
/// freshly resolved nodes of a pass that performed **zero** renames, version
/// tickets or binding substitutions (the caller checks — that is what makes
/// clause resolution pass-invariant). Returns `None` when the batch cannot
/// be frozen: two *overlapping* regions on one allocation (a sub-region mix
/// would let the live overlap scan reach history through one region that
/// the other's baked edges cannot see). Disjoint region ids on one
/// allocation — the chunks of a partition — freeze fine: no scan of one
/// chunk ever reaches another's history.
///
/// The plan is built by *shadow registration*: the batch runs the very same
/// `collect_preds`/`record_access` passes a live registration runs, against
/// a throwaway empty shard. For interior tasks the shadow history at their
/// position equals the live history (both were rebuilt from scratch by the
/// same in-batch writes), so the shadow edges are the real edges — the
/// classification logic is shared with the live path, not re-implemented.
pub(crate) fn build_frozen_plan(
    nodes: &[Arc<TaskNode>],
    tracker: &ShardedTracker,
) -> Option<FrozenPlan> {
    let n = nodes.len();
    if n == 0 {
        return None;
    }
    let mut regions: Vec<(AllocId, Vec<Region>)> = Vec::new();
    for node in nodes {
        for access in node.accesses.iter() {
            let rid = access.region.id;
            match regions.iter_mut().find(|(a, _)| *a == rid.alloc) {
                Some((_, seen)) => {
                    if !seen.iter().any(|r| r.id == rid) {
                        if seen.iter().any(|r| r.overlaps(&access.region)) {
                            return None;
                        }
                        seen.push(access.region.clone());
                    }
                }
                None => regions.push((rid.alloc, vec![access.region.clone()])),
            }
        }
    }
    let allocs = regions
        .into_iter()
        .map(|(a, rs)| (a, rs.into_iter().map(|r| r.id).collect()))
        .collect();
    let mut shadow = TrackerShard::default();
    // Regions fully overwritten by an earlier in-batch `output`/`inout`.
    let mut cleared: Vec<RegionId> = Vec::new();
    let mut index_of: HashMap<TaskId, usize, IdBuildHasher> = HashMap::default();
    let mut plan = FrozenPlan {
        accesses: Vec::with_capacity(n),
        sids: Vec::new(),
        allocs,
        frontier: vec![false; n],
        scan_upto: 0,
        installs: Vec::new(),
        edges: Vec::new(),
        baked_in: vec![0; n],
        baked_raw: 0,
        baked_war: 0,
        baked_waw: 0,
        baked_preds: 0,
    };
    let mut preds: Vec<PredRef> = Vec::new();
    let mut seen: Vec<TaskId> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        index_of.insert(node.id, i);
        let is_frontier = node
            .accesses
            .iter()
            .any(|a| !cleared.contains(&a.region.id));
        plan.frontier[i] = is_frontier;
        preds.clear();
        seen.clear();
        for access in node.accesses.iter() {
            let sid = tracker.shard_of(access.region.id.alloc);
            plan.sids.push(sid);
            // The shard label is the live shard of the access, not the
            // shadow's — traces must match the live scan's labelling.
            shadow.collect_preds(access, sid, &mut preds, &mut seen);
        }
        if !is_frontier {
            for pred in &preds {
                if pred.id == node.id {
                    continue;
                }
                let p = *index_of
                    .get(&pred.id)
                    .expect("shadow history only ever holds in-batch tasks");
                plan.edges.push(FrozenEdge {
                    pred: p,
                    succ: i,
                    shard: pred.shard,
                });
                plan.baked_in[i] += 1;
                match pred.dependence {
                    Dependence::ReadAfterWrite => plan.baked_raw += 1,
                    Dependence::WriteAfterRead => plan.baked_war += 1,
                    Dependence::WriteAfterWrite => plan.baked_waw += 1,
                    Dependence::None => {}
                }
            }
            plan.baked_preds += preds.len();
        }
        for access in node.accesses.iter() {
            shadow.record_access(access, node);
            if matches!(access.kind, AccessKind::Output | AccessKind::InOut)
                && !cleared.contains(&access.region.id)
            {
                cleared.push(access.region.id);
            }
        }
        plan.accesses.push(node.accesses.clone());
    }
    plan.sids.sort_unstable();
    plan.sids.dedup();
    plan.scan_upto = plan.frontier.iter().rposition(|&f| f).map_or(0, |p| p + 1);
    // Bake the batch's net history effect per overwritten region from the
    // shadow's final state. `cleared` (first-overwrite order) keeps the
    // install list deterministic across freezes.
    let to_positions = |refs: &[HistoryRef]| -> Vec<usize> {
        refs.iter()
            .map(|r| *index_of.get(&r.id()).expect("shadow refs are in-batch"))
            .collect()
    };
    for &rid in &cleared {
        let entry = shadow
            .entries
            .get(&rid)
            .expect("an overwritten region has a shadow entry");
        plan.installs.push(FrozenInstall {
            region: entry.region.clone().expect("recorded regions carry bytes"),
            shard: tracker.shard_of(rid.alloc),
            writers: to_positions(&entry.writers),
            readers: to_positions(&entry.readers),
            concurrent: to_positions(&entry.concurrent),
        });
    }
    // Never-overwritten regions need no install: every task touching one is
    // frontier, so all their refs land inside the live prefix.
    debug_assert!(shadow.entries.iter().all(|(rid, entry)| {
        cleared.contains(rid)
            || entry
                .writers
                .iter()
                .chain(entry.readers.iter())
                .chain(entry.concurrent.iter())
                .all(|r| index_of[&r.id()] < plan.scan_upto)
    }));
    Some(plan)
}

/// Wire the baked edges of `plan` into `iterations` consecutive copies of
/// the batch **before** any gate is taken: push each interior successor onto
/// its predecessor's link list, bump its `pending`, and store the baked
/// in-edge counts. Nothing here touches tracker state — the nodes are
/// unpublished (their registration sentinel is still up), so no predecessor
/// can complete out from under the wiring and `add_edge` semantics are
/// preserved exactly.
pub(crate) fn prewire_batch(nodes: &[Arc<TaskNode>], plan: &FrozenPlan, iterations: usize) {
    let per = plan.len();
    debug_assert_eq!(nodes.len(), per * iterations);
    for m in 0..iterations {
        let base = m * per;
        for e in &plan.edges {
            let succ = &nodes[base + e.succ];
            nodes[base + e.pred]
                .links
                .lock()
                .successors
                .push(succ.clone());
            succ.pending.fetch_add(1, Ordering::SeqCst);
        }
        for (t, &baked) in plan.baked_in.iter().enumerate() {
            if !plan.frontier[t] {
                nodes[base + t].in_edges.store(baked, Ordering::Relaxed);
            }
        }
    }
}

/// Undo [`prewire_batch`] after the plan failed live validation: drop the
/// baked successor links and reset every node's registration sentinel so an
/// ordinary [`ShardedTracker::register_batch`] can start from scratch.
pub(crate) fn unwire_batch(nodes: &[Arc<TaskNode>]) {
    for node in nodes {
        node.links.lock().successors.clear();
        node.pending.store(1, Ordering::SeqCst);
        node.in_edges.store(0, Ordering::Relaxed);
    }
}

/// Shard-count-aware diagnostics of the dependence tracker, from
/// [`Runtime::tracker_diagnostics`](crate::Runtime::tracker_diagnostics).
/// Counts *currently tracked* state — after a quiescent `taskwait` (which
/// garbage-collects) everything should read zero; a monotonically growing
/// count across quiescent points is a leak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerDiagnostics {
    /// Regions currently tracked, per shard.
    pub regions_per_shard: Vec<usize>,
    /// Allocations currently indexed in `by_alloc`, per shard.
    pub allocs_per_shard: Vec<usize>,
    /// Registrations that went through the optimistic single-shard fast path
    /// (monotonic; see the module docs).
    pub fast_path_hits: u64,
    /// Registrations that wanted the fast path but fell back to the mutex
    /// path (contention, multi-allocation span, or GC in progress).
    pub fast_path_fallbacks: u64,
}

impl TrackerDiagnostics {
    /// Number of tracker shards.
    pub fn shards(&self) -> usize {
        self.regions_per_shard.len()
    }

    /// Total regions tracked across all shards.
    pub fn total_regions(&self) -> usize {
        self.regions_per_shard.iter().sum()
    }

    /// Total allocations indexed across all shards.
    pub fn total_allocs(&self) -> usize {
        self.allocs_per_shard.iter().sum()
    }
}

/// One shard cell of the tracker: the history data plus the two-tier
/// exclusion protecting it.
///
/// * `gate` is the seqlock-style sequence counter and the **single point of
///   mutual exclusion**: even = quiescent, odd = some mutator (fast path or
///   mutex path) owns the shard. The optimistic fast path acquires it with
///   one CAS and never blocks (CAS failure → fallback).
/// * `queue` is the blocking tier for the mutex path: it serialises slow
///   acquirers so that, once a thread holds `queue`, the only competitor for
///   the gate is a short fast-path publication — the gate spin is bounded.
///
/// All access to `data` — reads included — happens with the gate held odd.
struct ShardSlot {
    gate: AtomicU64,
    queue: Mutex<()>,
    data: UnsafeCell<TrackerShard>,
}

/// Flag bit in the gate word set by a mutex-path acquirer while it waits:
/// fast-path publications refuse while it is set, so the (single — the
/// queue mutex serialises slow acquirers) waiter cannot be starved by a
/// stream of fast publications. The sequence occupies the remaining bits.
const GATE_WAITER: u64 = 1 << 63;

// SAFETY: `data` is only ever accessed while the shard's gate is held odd
// (acquired with an Acquire CAS, released with a Release store), which makes
// every access exclusive; `TrackerShard` itself is `Send` (task nodes are
// `Send + Sync`).
unsafe impl Sync for ShardSlot {}

// lint: hot-path-begin — gate/guard tier: every task registration and
// completion passes through here; no panicking calls allowed (see
// `cargo xtask lint`).
impl ShardSlot {
    fn new() -> Self {
        ShardSlot {
            gate: AtomicU64::new(0),
            queue: Mutex::new(()),
            data: UnsafeCell::new(TrackerShard::default()),
        }
    }

    /// Spin until the gate is acquired. Callers hold `queue`, so at most one
    /// thread runs this per shard at a time; it first raises [`GATE_WAITER`],
    /// which makes every new fast-path publication fall back, so the wait is
    /// bounded by the one publication already in flight (the fast path never
    /// blocks while holding the gate).
    fn acquire_gate(&self) {
        self.gate.fetch_or(GATE_WAITER, Ordering::Relaxed);
        let mut spins = 0u32;
        loop {
            let seq = self.gate.load(Ordering::Relaxed);
            if seq & 1 == 0
                && self
                    .gate
                    .compare_exchange_weak(
                        seq,
                        (seq & !GATE_WAITER) + 1,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                return;
            }
            if spins < 64 {
                std::hint::spin_loop();
                spins += 1;
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// As [`ShardSlot::acquire_gate`], but safe to call *without* holding
    /// `queue`: the batch replay path takes a whole set of gates directly
    /// (collecting the queue mutex guards would allocate), so several
    /// waiters may spin here concurrently. Re-raising [`GATE_WAITER`] on
    /// every failed iteration keeps fast-path publications locked out even
    /// after another waiter's acquisition cleared the flag, so the wait
    /// stays bounded by real mutator work rather than a publication stream.
    fn acquire_gate_unqueued(&self) {
        let mut spins = 0u32;
        loop {
            let seq = self.gate.fetch_or(GATE_WAITER, Ordering::Relaxed) | GATE_WAITER;
            if seq & 1 == 0
                && self
                    .gate
                    .compare_exchange_weak(
                        seq,
                        (seq & !GATE_WAITER) + 1,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                return;
            }
            if spins < 64 {
                std::hint::spin_loop();
                spins += 1;
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Try to acquire the gate for one non-blocking fast-path publication.
    /// Succeeds only when the gate is free *and* no mutex-path acquirer is
    /// waiting; the returned guard releases the gate on drop (so a panic
    /// mid-publication cannot wedge the shard), and dereferences to the
    /// shard data.
    fn try_fast_gate(&self) -> Option<FastGate<'_>> {
        let seq = self.gate.load(Ordering::Relaxed);
        if seq & 1 != 0 || seq & GATE_WAITER != 0 {
            return None;
        }
        self.gate
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .ok()?;
        Some(FastGate { slot: self })
    }
}

/// Exclusive access to one shard through the optimistic tier: holds only the
/// gate (odd), acquired with a single CAS. Dropping releases it.
struct FastGate<'a> {
    slot: &'a ShardSlot,
}

impl std::ops::Deref for FastGate<'_> {
    type Target = TrackerShard;
    fn deref(&self) -> &TrackerShard {
        // SAFETY: the gate is held odd for the guard's lifetime.
        unsafe { &*self.slot.data.get() }
    }
}

impl std::ops::DerefMut for FastGate<'_> {
    fn deref_mut(&mut self) -> &mut TrackerShard {
        // SAFETY: as above; gate exclusivity makes the access unique.
        unsafe { &mut *self.slot.data.get() }
    }
}

impl Drop for FastGate<'_> {
    fn drop(&mut self) {
        // Bumps odd → even; a concurrently raised GATE_WAITER bit survives.
        self.slot.gate.fetch_add(1, Ordering::Release);
    }
}

/// Exclusive access to one shard through the blocking (mutex) tier: holds
/// the queue mutex *and* the gate. Dropping releases the gate (bumping the
/// sequence back to even) before the queue.
struct ShardGuard<'a> {
    slot: &'a ShardSlot,
    _queue: MutexGuard<'a, ()>,
}

impl std::ops::Deref for ShardGuard<'_> {
    type Target = TrackerShard;
    fn deref(&self) -> &TrackerShard {
        // SAFETY: the gate is held for the guard's lifetime.
        unsafe { &*self.slot.data.get() }
    }
}

impl std::ops::DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut TrackerShard {
        // SAFETY: as above, and the guard is unique (gate + queue held).
        unsafe { &mut *self.slot.data.get() }
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        self.slot.gate.fetch_add(1, Ordering::Release);
    }
}

/// Exclusive access to a whole *set* of shards for one template-replay
/// batch, through their gates only — no queue mutexes (a `Vec` of mutex
/// guards would allocate on the replay hot path). Gates are acquired in
/// canonical ascending shard order, the same global order `lock_for` uses
/// for its multi-shard guards, so the batch tier cannot deadlock against
/// the mutex tier. Dropping releases every gate (odd → even), panics
/// included.
struct BatchGuard<'a> {
    shards: &'a [ShardSlot],
    sids: &'a [usize],
}

impl<'a> BatchGuard<'a> {
    /// Acquire the gates of `sids` (which must be sorted ascending and
    /// deduplicated) in order.
    fn acquire(tracker: &'a ShardedTracker, sids: &'a [usize]) -> Self {
        debug_assert!(
            sids.windows(2).all(|w| w[0] < w[1]),
            "batch shard ids must be sorted and deduplicated"
        );
        for &sid in sids {
            tracker.shards[sid].acquire_gate_unqueued();
        }
        BatchGuard {
            shards: &tracker.shards,
            sids,
        }
    }

    /// The shard data of `sid`, which must be one of the held shards.
    ///
    /// Takes `&mut self` so the borrow checker serialises access through the
    /// guard; the underlying exclusivity comes from the held gate.
    fn shard_mut(&mut self, sid: usize) -> &mut TrackerShard {
        debug_assert!(self.sids.contains(&sid), "shard {sid} is not held");
        // SAFETY: the gate of every shard in `sids` is held odd for the
        // guard's lifetime, making this access exclusive.
        unsafe { &mut *self.shards[sid].data.get() }
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        for &sid in self.sids {
            // Odd → even; a concurrently raised GATE_WAITER bit survives.
            self.shards[sid].gate.fetch_add(1, Ordering::Release);
        }
    }
}
// lint: hot-path-end

/// The sharded dependence tracker: routes every allocation to one
/// [`TrackerShard`] and coordinates multi-shard registrations (canonical
/// lock order), the optimistic single-shard fast path, and the completion
/// retire path. See the module docs.
pub(crate) struct ShardedTracker {
    shards: Box<[ShardSlot]>,
    counters: TrackerCounters,
    /// Whether single-shard registrations may take the optimistic gate-CAS
    /// path. `false` forces every registration through the mutex path (the
    /// equivalence-suite reference configuration).
    fast_path: bool,
    /// Chaos-test hook: when set, individual operations may be forced off
    /// the fast path ([`FaultClass::TrackerFallback`](crate::failpoint::FaultClass)).
    /// `None` in production — a single pointer check on the hot path.
    fault: Option<crate::failpoint::FaultPlan>,
}

/// The shard locks one registration holds: the allocation-free singleton
/// case stays on the allocation-free fast path.
enum LockedShards<'a> {
    /// Every access maps to this one shard.
    One(usize, ShardGuard<'a>),
    /// Canonically ordered shard indices with their guards (parallel
    /// vectors); also the empty no-access case.
    Many(Vec<usize>, Vec<ShardGuard<'a>>),
}

impl LockedShards<'_> {
    fn shard_mut(&mut self, sid: usize) -> &mut TrackerShard {
        match self {
            LockedShards::One(s, guard) => {
                debug_assert_eq!(*s, sid);
                guard
            }
            LockedShards::Many(ids, guards) => {
                let pos = ids
                    .binary_search(&sid)
                    .expect("every access shard was locked");
                &mut guards[pos]
            }
        }
    }
}

impl ShardedTracker {
    pub(crate) fn new(shards: usize, fast_path: bool) -> Self {
        assert!(shards >= 1, "the tracker needs at least one shard");
        ShardedTracker {
            shards: (0..shards).map(|_| ShardSlot::new()).collect(),
            counters: TrackerCounters::new(shards),
            fast_path,
            fault: None,
        }
    }

    /// Install a fault-injection plan (chaos tests only; see
    /// [`crate::failpoint`]). Called before the tracker is shared.
    pub(crate) fn set_fault_plan(&mut self, plan: crate::failpoint::FaultPlan) {
        self.fault = Some(plan);
    }

    /// Whether the installed fault plan (if any) forces this operation off
    /// the optimistic fast path.
    fn forced_fallback(&self) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|p| p.roll_next(crate::failpoint::FaultClass::TrackerFallback))
    }

    /// Number of shards.
    pub(crate) fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard an allocation is routed to. Allocation ids are handed out
    /// sequentially (and renaming mints a fresh one per version), so plain
    /// modulo spreads concurrent workloads evenly.
    pub(crate) fn shard_of(&self, alloc: AllocId) -> usize {
        (alloc.raw() % self.shards.len() as u64) as usize
    }

    /// Per-shard hit / contention counters.
    pub(crate) fn counters(&self) -> &TrackerCounters {
        &self.counters
    }

    /// Lock one shard through the blocking tier, try-lock-first so contended
    /// acquisitions are counted, then acquire the gate (waiting out at most
    /// one fast-path publication).
    fn lock_shard(&self, shard: usize) -> ShardGuard<'_> {
        self.counters.hit(shard);
        self.lock_shard_uncounted(shard)
    }

    /// As [`ShardedTracker::lock_shard`] but without touching the hit
    /// counter (GC sweeps and diagnostics reads would drown the signal).
    fn lock_shard_uncounted(&self, shard: usize) -> ShardGuard<'_> {
        let slot = &self.shards[shard];
        let queue = match slot.queue.try_lock() {
            Some(guard) => guard,
            None => {
                self.counters.contended();
                slot.queue.lock()
            }
        };
        slot.acquire_gate();
        ShardGuard {
            slot,
            _queue: queue,
        }
    }

    /// Try to register `node` through the optimistic fast path: all accesses
    /// on one shard, whose gate is free right now. Returns `None` (and
    /// mutates nothing) when the registration must take the mutex path.
    fn try_register_fast(&self, node: &Arc<TaskNode>, record_edges: bool) -> Option<Registration> {
        let mut shards = node.accesses.iter().map(|a| self.shard_of(a.region.id.alloc));
        let sid = shards.next()?;
        if !shards.all(|s| s == sid) {
            return None; // multi-allocation span: canonical-order mutex path
        }
        // Gate held (or a mutator/GC/waiter present → fallback); the guard
        // grants exclusive access and releases on drop, panics included.
        let mut gate = self.shards[sid].try_fast_gate()?;
        self.counters.hit(sid);
        Some(register_single_shard(&mut gate, sid, node, record_edges, true))
    }

    /// Lock every shard the accesses touch, in canonical (ascending index)
    /// order. The dominant case — every access on one allocation, or several
    /// allocations that happen to share a shard — takes exactly one lock and
    /// allocates nothing.
    fn lock_for(&self, accesses: &[Access]) -> LockedShards<'_> {
        let mut shards = accesses.iter().map(|a| self.shard_of(a.region.id.alloc));
        let Some(first) = shards.next() else {
            return LockedShards::Many(Vec::new(), Vec::new());
        };
        if shards.all(|s| s == first) {
            return LockedShards::One(first, self.lock_shard(first));
        }
        let mut ids: Vec<usize> = accesses
            .iter()
            .map(|a| self.shard_of(a.region.id.alloc))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let guards = ids.iter().map(|&s| self.lock_shard(s)).collect();
        LockedShards::Many(ids, guards)
    }

    /// Register the declared accesses of `node`, adding dependence edges from
    /// every conflicting in-flight task, and updating the per-region history
    /// so that future tasks depend on `node` where required.
    ///
    /// Every shard touched by the accesses is locked in canonical (ascending
    /// index) order and held for the whole registration, making it atomic
    /// with respect to concurrent registrations and retirements on
    /// overlapping allocations. `record_edges` asks for [`EdgeRecord`]s (only
    /// the tracing path wants them).
    pub(crate) fn register(&self, node: &Arc<TaskNode>, record_edges: bool) -> Registration {
        if node.accesses.is_empty() {
            node.in_edges.store(0, Ordering::Relaxed);
            return Registration {
                edges: 0,
                raw_edges: 0,
                war_edges: 0,
                waw_edges: 0,
                predecessors_seen: 0,
                edge_list: Vec::new(),
                fast_path: false,
            };
        }
        if self.fast_path {
            if self.forced_fallback() {
                self.counters.fast_fallback();
            } else {
                match self.try_register_fast(node, record_edges) {
                    Some(registration) => {
                        self.counters.fast_hit();
                        return registration;
                    }
                    None => self.counters.fast_fallback(),
                }
            }
        }
        let mut locked = self.lock_for(&node.accesses);
        // Single shard behind the mutex: exactly the three fast-path passes,
        // via the same per-shard scratch buffers — the mutex tier is
        // allocation-free in steady state too.
        if let LockedShards::One(sid, ref mut guard) = locked {
            return register_single_shard(guard, sid, node, record_edges, false);
        }
        // Multi-shard span: run the passes across the canonically locked
        // shards, borrowing the first access's shard scratch buffers (every
        // involved gate is held, so the scratch is exclusively ours).
        let first = self.shard_of(node.accesses[0].region.id.alloc);
        let (mut preds, mut seen_pred_ids) = {
            let shard = locked.shard_mut(first);
            (
                std::mem::take(&mut shard.scratch_preds),
                std::mem::take(&mut shard.scratch_seen),
            )
        };
        debug_assert!(preds.is_empty() && seen_pred_ids.is_empty());

        // Pass 1: collect predecessors from every overlapping region entry,
        // in access-declaration order. Each predecessor is remembered with
        // the dependence class of the (first) conflict that introduced it,
        // so added edges can be attributed to RAW / WAR / WAW.
        for access in node.accesses.iter() {
            let sid = self.shard_of(access.region.id.alloc);
            locked
                .shard_mut(sid)
                .collect_preds(access, sid, &mut preds, &mut seen_pred_ids);
        }

        // Pass 2: add the edges (only live predecessors can take one).
        let (edges, raw_edges, war_edges, waw_edges, edge_list) =
            add_pred_edges(&preds, node, record_edges);
        node.in_edges.store(edges, Ordering::Relaxed);

        // Pass 3: update the history on the *exact* region entries.
        for access in node.accesses.iter() {
            let sid = self.shard_of(access.region.id.alloc);
            locked.shard_mut(sid).record_access(access, node);
        }

        let predecessors_seen = preds.len();
        preds.clear();
        seen_pred_ids.clear();
        let shard = locked.shard_mut(first);
        shard.scratch_preds = preds;
        shard.scratch_seen = seen_pred_ids;

        Registration {
            edges,
            raw_edges,
            war_edges,
            waw_edges,
            predecessors_seen,
            edge_list,
            fast_path: false,
        }
    }

    /// Register a whole template-replay batch under **one** multi-gate
    /// acquisition: every shard in `sids` (the sorted, deduplicated union of
    /// the shards the batch's accesses touch — computed by the caller so the
    /// buffer can be reused across replays) is gated once, then the three
    /// registration passes run per node in batch order. Because pass 3
    /// (history update) of node *i* runs before pass 1 (predecessor
    /// collection) of node *i+1*, intra-batch dependences fall out of the
    /// ordinary history scan — the edges are re-derived, not copied from the
    /// template, so they stay correct when per-replay renaming resolves
    /// clauses to different versions than the captured iteration did.
    ///
    /// The scratch buffers of the first involved shard are borrowed for the
    /// whole batch (its gate is held, so they are exclusively ours), keeping
    /// a warm replay allocation-free. Equivalence with per-task
    /// registration: the batch is one legal linearization of the same
    /// per-node pass sequence, and gate exclusion makes it atomic against
    /// concurrent registrations and retirements on the involved shards.
    pub(crate) fn register_batch(
        &self,
        nodes: &[Arc<TaskNode>],
        sids: &[usize],
        record_edges: bool,
    ) -> BatchRegistration {
        let mut batch = BatchRegistration {
            edges: 0,
            raw_edges: 0,
            war_edges: 0,
            waw_edges: 0,
            predecessors_seen: 0,
            per_task: Vec::new(),
        };
        if sids.is_empty() {
            // Access-free batch: nothing to track, nothing to gate.
            for node in nodes {
                node.in_edges.store(0, Ordering::Relaxed);
            }
            return batch;
        }
        let mut guard = BatchGuard::acquire(self, sids);
        for &sid in sids {
            self.counters.hit(sid);
        }
        let first = sids[0];
        let (mut preds, mut seen) = {
            let shard = guard.shard_mut(first);
            (
                std::mem::take(&mut shard.scratch_preds),
                std::mem::take(&mut shard.scratch_seen),
            )
        };
        debug_assert!(preds.is_empty() && seen.is_empty());
        for (i, node) in nodes.iter().enumerate() {
            preds.clear();
            seen.clear();
            for access in node.accesses.iter() {
                let sid = self.shard_of(access.region.id.alloc);
                guard
                    .shard_mut(sid)
                    .collect_preds(access, sid, &mut preds, &mut seen);
            }
            let (edges, raw_edges, war_edges, waw_edges, edge_list) =
                add_pred_edges(&preds, node, record_edges);
            node.in_edges.store(edges, Ordering::Relaxed);
            for access in node.accesses.iter() {
                let sid = self.shard_of(access.region.id.alloc);
                guard.shard_mut(sid).record_access(access, node);
            }
            batch.edges += edges;
            batch.raw_edges += raw_edges;
            batch.war_edges += war_edges;
            batch.waw_edges += waw_edges;
            batch.predecessors_seen += preds.len();
            if record_edges {
                batch.per_task.push((i, edge_list));
            }
        }
        preds.clear();
        seen.clear();
        let shard = guard.shard_mut(first);
        shard.scratch_preds = preds;
        shard.scratch_seen = seen;
        batch
    }

    /// Register `iterations` consecutive copies of a [`FrozenPlan`] batch
    /// whose interior edges were already wired by [`prewire_batch`]: under
    /// one multi-gate acquisition, **validate** the plan against live state,
    /// then stamp each iteration in two steps. The *live prefix* — batch
    /// positions up to the last frontier task — runs the ordinary
    /// scan/record interleave (frontier tasks scan live history; every
    /// prefix task records its accesses, since a later frontier scan may
    /// need them). The *interior tail* after it never touches the history
    /// maps per task: the plan's baked [`FrozenInstall`]s publish the
    /// iteration's net per-region effect in one pass, so the next
    /// iteration's frontier scan picks up this iteration's final writers —
    /// exactly the carried inter-iteration dependence of a fused replay.
    /// Interior tasks' edges and counters come pre-summed from the plan.
    ///
    /// Validation: for each allocation the plan touches, the live
    /// `by_alloc` index must hold no region id outside the plan's (pairwise
    /// disjoint) set. Any other id — a sub-region access or a rename minted
    /// elsewhere since the freeze — would be visible to a live overlap scan
    /// but not to the baked edges, so the batch returns `None` (having
    /// touched nothing) and the caller unwires and falls back to
    /// [`ShardedTracker::register_batch`].
    pub(crate) fn register_batch_prewired(
        &self,
        nodes: &[Arc<TaskNode>],
        plan: &FrozenPlan,
        iterations: usize,
        record_edges: bool,
    ) -> Option<BatchRegistration> {
        let per = plan.len();
        debug_assert_eq!(nodes.len(), per * iterations);
        let mut batch = BatchRegistration {
            edges: plan.edges.len() * iterations,
            raw_edges: plan.baked_raw * iterations,
            war_edges: plan.baked_war * iterations,
            waw_edges: plan.baked_waw * iterations,
            predecessors_seen: plan.baked_preds * iterations,
            per_task: Vec::new(),
        };
        if plan.sids.is_empty() {
            // Access-free batch: nothing to validate, nothing to gate; the
            // pre-wiring already stored every (zero) in-edge count.
            return Some(batch);
        }
        let mut guard = BatchGuard::acquire(self, &plan.sids);
        for (alloc, rids) in &plan.allocs {
            let sid = self.shard_of(*alloc);
            if let Some(ids) = guard.shard_mut(sid).by_alloc.get(alloc) {
                if ids.iter().any(|r| !rids.contains(r)) {
                    return None;
                }
            }
        }
        for &sid in &plan.sids {
            self.counters.hit(sid);
        }
        let first = plan.sids[0];
        let (mut preds, mut seen) = {
            let shard = guard.shard_mut(first);
            (
                std::mem::take(&mut shard.scratch_preds),
                std::mem::take(&mut shard.scratch_seen),
            )
        };
        debug_assert!(preds.is_empty() && seen.is_empty());
        for m in 0..iterations {
            let base = m * per;
            // Live prefix: up to (and including) the last frontier task,
            // scan and record in batch order — a frontier task's scan may
            // need any earlier prefix task's history entry.
            for t in 0..plan.scan_upto {
                let node = &nodes[base + t];
                if plan.frontier[t] {
                    preds.clear();
                    seen.clear();
                    for access in node.accesses.iter() {
                        let sid = self.shard_of(access.region.id.alloc);
                        guard
                            .shard_mut(sid)
                            .collect_preds(access, sid, &mut preds, &mut seen);
                    }
                    let (edges, raw_edges, war_edges, waw_edges, edge_list) =
                        add_pred_edges(&preds, node, record_edges);
                    node.in_edges.store(edges, Ordering::Relaxed);
                    batch.edges += edges;
                    batch.raw_edges += raw_edges;
                    batch.war_edges += war_edges;
                    batch.waw_edges += waw_edges;
                    batch.predecessors_seen += preds.len();
                    if record_edges {
                        batch.per_task.push((base + t, edge_list));
                    }
                }
                for access in node.accesses.iter() {
                    let sid = self.shard_of(access.region.id.alloc);
                    guard.shard_mut(sid).record_access(access, node);
                }
            }
            // Interior tail: no per-task history work at all — the baked
            // installs publish the iteration's net effect per region, so the
            // next iteration's frontier (and post-batch registrations) see
            // exactly the state a full per-task interleave would have left.
            for inst in &plan.installs {
                guard
                    .shard_mut(inst.shard)
                    .apply_install(inst, &nodes[base..base + per]);
            }
        }
        preds.clear();
        seen.clear();
        let shard = guard.shard_mut(first);
        shard.scratch_preds = preds;
        shard.scratch_seen = seen;
        Some(batch)
    }

    // lint: hot-path-begin — completion tier: retire + successor wakeup run
    // once per task; no panicking calls allowed (see `cargo xtask lint`).
    /// Retire a completed task from the history: every live reference it
    /// still holds in any shard is replaced by a tombstone, releasing the
    /// node. Locks one shard at a time (retirement needs no cross-shard
    /// atomicity), and is idempotent per task.
    pub(crate) fn retire(&self, node: &Arc<TaskNode>) {
        if node.accesses.is_empty() || !node.mark_retired() {
            return;
        }
        // Fast path for the dominant single-access task: one shard, no sort,
        // no allocation — and, when the gate is free, no mutex either (the
        // same single-CAS protocol as the registration fast path).
        if let [access] = &*node.accesses {
            let rid = access.region.id;
            let sid = self.shard_of(rid.alloc);
            if self.fast_path && !self.forced_fallback() {
                if let Some(mut gate) = self.shards[sid].try_fast_gate() {
                    self.counters.hit(sid);
                    gate.retire_region(rid, node.id);
                    return;
                }
            }
            self.lock_shard(sid).retire_region(rid, node.id);
            return;
        }
        let mut rids: Vec<RegionId> = node.accesses.iter().map(|a| a.region.id).collect();
        rids.sort_unstable_by_key(|r| (self.shard_of(r.alloc), *r));
        rids.dedup();
        let mut i = 0;
        while i < rids.len() {
            let sid = self.shard_of(rids[i].alloc);
            let mut guard = self.lock_shard(sid);
            while i < rids.len() && self.shard_of(rids[i].alloc) == sid {
                guard.retire_region(rids[i], node.id);
                i += 1;
            }
        }
    }

    /// All in-flight tasks that currently access a region overlapping
    /// `region` (used by `taskwait on`). A region lives in exactly one shard.
    pub(crate) fn tasks_touching(&self, region: &Region) -> Vec<Arc<TaskNode>> {
        let sid = self.shard_of(region.id.alloc);
        self.lock_shard(sid).tasks_touching(region)
    }

    /// Garbage-collect every shard (one lock at a time): drop tombstones,
    /// completed tasks, emptied entries and their `by_alloc` ids. Called
    /// periodically from the spawn path (cadence:
    /// [`RuntimeConfig::with_tracker_gc_interval`](crate::RuntimeConfig::with_tracker_gc_interval))
    /// and from quiescent `taskwait`s to bound memory on long-running
    /// programs. Bypasses the hit/contention counters: those attribute lock
    /// traffic to the registration, retire and `taskwait on` paths only, and
    /// a sweep touching every shard would drown the signal (uniform hits,
    /// phantom contention). Taking each shard's lock holds its gate odd, so
    /// optimistic registrations on a shard being swept fall back to the
    /// mutex path and queue behind the sweep.
    pub(crate) fn garbage_collect(&self) {
        for sid in 0..self.shards.len() {
            self.lock_shard_uncounted(sid).garbage_collect();
        }
    }

    /// Index of the first shard whose sequence gate currently reads odd
    /// (held by some mutator), or `None` when every gate is quiescent. At
    /// runtime quiescence no registration or retirement can be
    /// mid-publication, so a held gate is an invariant violation (see
    /// [`crate::Runtime::audit`]). The waiter flag is advisory and masked
    /// out; only the low sequence bit decides held vs quiescent.
    pub(crate) fn first_held_gate(&self) -> Option<usize> {
        self.shards
            .iter()
            .position(|slot| slot.gate.load(Ordering::Acquire) & 1 == 1)
    }

    /// Current per-shard map sizes plus the fast-path hit/fallback counters.
    /// Reading diagnostics leaves the hit/contention counters untouched (see
    /// [`ShardedTracker::garbage_collect`]).
    pub(crate) fn diagnostics(&self) -> TrackerDiagnostics {
        let mut regions = Vec::with_capacity(self.shards.len());
        let mut allocs = Vec::with_capacity(self.shards.len());
        for sid in 0..self.shards.len() {
            let guard = self.lock_shard_uncounted(sid);
            regions.push(guard.entries.len());
            allocs.push(guard.by_alloc.len());
        }
        TrackerDiagnostics {
            regions_per_shard: regions,
            allocs_per_shard: allocs,
            fast_path_hits: self.counters.fast_hits(),
            fast_path_fallbacks: self.counters.fast_fallbacks(),
        }
    }

    /// Number of regions currently tracked across all shards (diagnostics;
    /// exercised by unit tests).
    #[allow(dead_code)]
    pub(crate) fn tracked_regions(&self) -> usize {
        self.diagnostics().total_regions()
    }
}

/// Pass 2 of registration, shared verbatim by the mutex path and the
/// optimistic fast path (so both produce byte-identical edge sets): add an
/// edge from every live predecessor, classifying it RAW / WAR / WAW.
fn add_pred_edges(
    preds: &[PredRef],
    node: &Arc<TaskNode>,
    record_edges: bool,
) -> (usize, usize, usize, usize, Vec<EdgeRecord>) {
    let mut edges = 0usize;
    let (mut raw_edges, mut war_edges, mut waw_edges) = (0usize, 0usize, 0usize);
    let mut edge_list = Vec::new();
    for pred in preds {
        if pred.id == node.id {
            continue;
        }
        let Some(live) = &pred.live else { continue };
        if add_edge(live, node) {
            edges += 1;
            match pred.dependence {
                Dependence::ReadAfterWrite => raw_edges += 1,
                Dependence::WriteAfterRead => war_edges += 1,
                Dependence::WriteAfterWrite => waw_edges += 1,
                Dependence::None => {}
            }
            if record_edges {
                edge_list.push(EdgeRecord {
                    pred: pred.id,
                    shard: pred.shard,
                });
            }
        }
    }
    (edges, raw_edges, war_edges, waw_edges, edge_list)
}

/// The three registration passes against a single shard, using the shard's
/// scratch buffers so the steady state allocates nothing. Shared by the
/// optimistic fast path and the single-shard mutex path (`fast` records
/// which tier obtained exclusion — the passes are byte-identical).
fn register_single_shard(
    shard: &mut TrackerShard,
    sid: usize,
    node: &Arc<TaskNode>,
    record_edges: bool,
    fast: bool,
) -> Registration {
    let mut preds = std::mem::take(&mut shard.scratch_preds);
    let mut seen = std::mem::take(&mut shard.scratch_seen);
    debug_assert!(preds.is_empty() && seen.is_empty());
    for access in node.accesses.iter() {
        shard.collect_preds(access, sid, &mut preds, &mut seen);
    }
    let (edges, raw_edges, war_edges, waw_edges, edge_list) =
        add_pred_edges(&preds, node, record_edges);
    node.in_edges.store(edges, Ordering::Relaxed);
    for access in node.accesses.iter() {
        shard.record_access(access, node);
    }
    let predecessors_seen = preds.len();
    preds.clear();
    seen.clear();
    shard.scratch_preds = preds;
    shard.scratch_seen = seen;
    Registration {
        edges,
        raw_edges,
        war_edges,
        waw_edges,
        predecessors_seen,
        edge_list,
        fast_path: fast,
    }
}

fn push_pred(
    preds: &mut Vec<PredRef>,
    seen: &mut Vec<TaskId>,
    t: &HistoryRef,
    dependence: Dependence,
    shard: usize,
) {
    let id = t.id();
    if !seen.contains(&id) {
        seen.push(id);
        preds.push(PredRef {
            id,
            live: t.live().cloned(),
            dependence,
            shard,
        });
    }
}

/// Add a dependence edge `pred -> succ`. Returns `false` (and adds nothing)
/// if `pred` already completed.
pub(crate) fn add_edge(pred: &Arc<TaskNode>, succ: &Arc<TaskNode>) -> bool {
    let mut links = pred.links.lock();
    if links.completed {
        return false;
    }
    links.successors.push(succ.clone());
    succ.pending.fetch_add(1, Ordering::SeqCst);
    true
}

/// Release the registration sentinel of a freshly registered task. Returns
/// `true` if the task became ready (no unresolved predecessors).
pub(crate) fn finish_registration(node: &Arc<TaskNode>) -> bool {
    let prev = node.pending.fetch_sub(1, Ordering::SeqCst);
    debug_assert!(prev >= 1);
    let ready = prev == 1;
    if ready {
        node.set_state(TaskState::Ready);
    }
    ready
}

/// Mark `node` completed and notify its successors, appending those that
/// became ready onto `ready`. The successor list is drained **in place** —
/// its capacity stays with the node for its next (recycled) life, and the
/// caller's `ready` buffer is reused across completions, so the steady-state
/// wakeup path allocates nothing. Decrementing `pending` under the
/// predecessor's links lock is the same single-lock+atomic pattern
/// [`add_edge`] uses, so no lock ordering is introduced.
pub(crate) fn complete_into(
    node: &Arc<TaskNode>,
    ready: &mut Vec<Arc<TaskNode>>,
    dcheck: Option<&crate::dcheck::DcheckState>,
) {
    node.set_state(TaskState::Completed);
    // Publish completion to the race oracle's snapshot *before* the
    // successor list closes: a registration racing with this completion then
    // either gets a live edge (merged below) or observes `links.completed`
    // and inherits the ordering from the snapshot instead.
    if let Some(d) = dcheck {
        d.mark_completed(node);
    }
    let mut links = node.links.lock();
    links.completed = true;
    for succ in links.successors.drain(..) {
        if let Some(d) = dcheck {
            d.merge_edge(node, &succ);
        }
        let prev = succ.pending.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev >= 1);
        if prev == 1 {
            succ.set_state(TaskState::Ready);
            ready.push(succ);
        }
    }
}

/// Mark `node` completed and notify its successors. Returns the successors
/// that became ready as a result. Allocating convenience wrapper around
/// [`complete_into`] for tests and benches; the worker hot path passes its
/// own reusable buffer.
pub(crate) fn complete(node: &Arc<TaskNode>) -> Vec<Arc<TaskNode>> {
    let mut ready = Vec::new();
    complete_into(node, &mut ready, None);
    ready
}

/// The poisoning counterpart of [`complete_into`]: mark `node` completed,
/// poison every still-linked successor with `origin`, and release them
/// exactly as a normal completion would. Poisoning under the predecessor's
/// links lock before the `pending` decrement is race-free: a successor
/// cannot become ready (and so cannot start running) until every
/// predecessor has completed, so the poison mark is always visible to the
/// worker that eventually dequeues it. Transitive propagation is inductive —
/// each poisoned node passes the *same* origin to its own successors when it
/// is retired without running (see `worker::retire_without_run`).
pub(crate) fn complete_into_poison(
    node: &Arc<TaskNode>,
    ready: &mut Vec<Arc<TaskNode>>,
    origin: TaskId,
    dcheck: Option<&crate::dcheck::DcheckState>,
) {
    node.set_state(TaskState::Completed);
    // Same snapshot-before-close ordering as `complete_into`: poisoned
    // completions participate in happens-before like any other (their
    // bodies never ran, so they log no accesses — but their successors
    // still inherit the ordering).
    if let Some(d) = dcheck {
        d.mark_completed(node);
    }
    let mut links = node.links.lock();
    links.completed = true;
    for succ in links.successors.drain(..) {
        if let Some(d) = dcheck {
            d.merge_edge(node, &succ);
        }
        succ.poison_with(origin);
        let prev = succ.pending.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev >= 1);
        if prev == 1 {
            succ.set_state(TaskState::Ready);
            ready.push(succ);
        }
    }
}
// lint: hot-path-end

/// Benchmark support: drives the tracker's register→complete→retire cycle
/// directly, without workers or scheduling, so the insertion-side cost being
/// compared (optimistic fast path vs forced-locked mutex path) dominates the
/// measurement. Used by `insertion_bench` and the `rename_ablation`
/// fast-path scenario; not part of the public API surface.
#[doc(hidden)]
pub mod bench {
    use super::{complete, finish_registration, ShardedTracker};
    use crate::access::{Access, AccessKind, AccessVec};
    use crate::region::{AllocId, Region};
    use crate::task::{ChildTracker, TaskNode, TaskPriority};
    use std::sync::Arc;

    /// Register, complete and retire `per_spawner` single-`output`-access
    /// tasks per spawner thread (each thread cycling through `cells` private
    /// allocations) against a fresh tracker. Returns operations per second
    /// over the whole storm. This is the tracker's full insertion round
    /// trip: predecessor discovery, history update, readiness release,
    /// completion and retirement.
    pub fn register_retire_rate(
        shards: usize,
        fast_path: bool,
        spawners: usize,
        per_spawner: usize,
        cells: usize,
    ) -> f64 {
        let tracker = ShardedTracker::new(shards, fast_path);
        // Node construction (a handful of allocations per task) is hoisted
        // out of the timed region: it is identical for both configurations
        // and would otherwise dilute the path being compared.
        let batches: Vec<Vec<Arc<TaskNode>>> = (0..spawners)
            .map(|_| {
                let allocs: Vec<AllocId> = (0..cells).map(|_| AllocId::fresh()).collect();
                let parent = ChildTracker::new();
                (0..per_spawner)
                    .map(|i| {
                        let region = Region::new(allocs[i % cells], 0, 0..64);
                        TaskNode::new(
                            None,
                            TaskPriority::default(),
                            AccessVec::one(Access::new(region, AccessKind::Output)),
                            |_| {},
                            parent.clone(),
                            crate::task::INLINE_BODY_BYTES,
                            &mut false,
                        )
                    })
                    .collect()
            })
            .collect();
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for batch in &batches {
                let tracker = &tracker;
                scope.spawn(move || {
                    for node in batch {
                        tracker.register(node, false);
                        finish_registration(node);
                        complete(node);
                        tracker.retire(node);
                    }
                });
            }
        });
        (spawners * per_spawner) as f64 / start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessKind};
    use crate::region::AllocId;
    use crate::task::{ChildTracker, TaskPriority};
    use proptest::prelude::*;

    fn node_with(accesses: Vec<Access>) -> Arc<TaskNode> {
        TaskNode::new(
            None,
            TaskPriority::default(),
            accesses.into_iter().collect(),
            |_ctx| {},
            ChildTracker::new(),
            crate::task::INLINE_BODY_BYTES,
            &mut false,
        )
    }

    fn region(alloc: u64, chunk: u32, range: std::ops::Range<usize>) -> Region {
        Region::new(AllocId(alloc), chunk, range)
    }

    fn acc(alloc: u64, chunk: u32, range: std::ops::Range<usize>, kind: AccessKind) -> Access {
        Access::new(region(alloc, chunk, range), kind)
    }

    fn tracker(shards: usize) -> ShardedTracker {
        ShardedTracker::new(shards, true)
    }

    fn tracker_locked(shards: usize) -> ShardedTracker {
        ShardedTracker::new(shards, false)
    }

    /// Drain a node as if it executed (without a runtime).
    fn finish(node: &Arc<TaskNode>) -> Vec<Arc<TaskNode>> {
        complete(node)
    }

    #[test]
    fn raw_dependence_creates_edge() {
        let tr = tracker(4);
        let producer = node_with(vec![acc(1, 0, 0..100, AccessKind::Output)]);
        let consumer = node_with(vec![acc(1, 0, 0..100, AccessKind::Input)]);

        let r1 = tr.register(&producer, false);
        assert_eq!(r1.edges, 0);
        assert!(finish_registration(&producer));

        let r2 = tr.register(&consumer, false);
        assert_eq!(r2.edges, 1);
        assert!(!finish_registration(&consumer));
        assert_eq!(consumer.task_state(), TaskState::WaitingDeps);

        let ready = finish(&producer);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].id, consumer.id);
        assert_eq!(consumer.task_state(), TaskState::Ready);
    }

    #[test]
    fn war_and_waw_serialise_without_renaming() {
        let tr = tracker(2);
        let reader = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        let writer1 = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let writer2 = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);

        tr.register(&reader, false);
        finish_registration(&reader);
        let r_w1 = tr.register(&writer1, false);
        // WAR edge from reader.
        assert_eq!(r_w1.edges, 1);
        finish_registration(&writer1);
        let r_w2 = tr.register(&writer2, false);
        // WAW edge from writer1 only (reader history cleared by writer1).
        assert_eq!(r_w2.edges, 1);
        finish_registration(&writer2);

        assert!(finish(&reader).iter().any(|t| t.id == writer1.id));
        assert!(finish(&writer1).iter().any(|t| t.id == writer2.id));
    }

    #[test]
    fn independent_regions_do_not_serialise() {
        let tr = tracker(3);
        let a = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let b = node_with(vec![acc(1, 1, 10..20, AccessKind::Output)]);
        let c = node_with(vec![acc(2, 0, 0..10, AccessKind::Output)]);
        tr.register(&a, false);
        tr.register(&b, false);
        tr.register(&c, false);
        assert!(finish_registration(&a));
        assert!(finish_registration(&b));
        assert!(finish_registration(&c));
    }

    #[test]
    fn readers_do_not_serialise_with_each_other() {
        let tr = tracker(1);
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let r1 = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        let r2 = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        tr.register(&w, false);
        finish_registration(&w);
        let e1 = tr.register(&r1, false);
        let e2 = tr.register(&r2, false);
        assert_eq!(e1.edges, 1);
        assert_eq!(e2.edges, 1);
        finish_registration(&r1);
        finish_registration(&r2);
        let ready = finish(&w);
        assert_eq!(ready.len(), 2, "both readers become ready together");
    }

    #[test]
    fn concurrent_accesses_commute_but_order_against_writers() {
        let tr = tracker(2);
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let c1 = node_with(vec![acc(1, 0, 0..10, AccessKind::Concurrent)]);
        let c2 = node_with(vec![acc(1, 0, 0..10, AccessKind::Concurrent)]);
        let r = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);

        tr.register(&w, false);
        finish_registration(&w);
        let e1 = tr.register(&c1, false);
        let e2 = tr.register(&c2, false);
        assert_eq!(e1.edges, 1, "concurrent waits for plain writer");
        assert_eq!(e2.edges, 1, "concurrent does not wait for other concurrent");
        let er = tr.register(&r, false);
        assert_eq!(er.edges, 3, "reader waits for writer and both accumulators");
        finish_registration(&c1);
        finish_registration(&c2);
        finish_registration(&r);
    }

    #[test]
    fn overlapping_chunk_and_whole_regions_serialise() {
        let tr = tracker(4);
        // Whole-array write, then chunk write, then whole read.
        let whole_w = node_with(vec![acc(1, 0, 0..100, AccessKind::Output)]);
        let chunk_w = node_with(vec![acc(1, 3, 20..30, AccessKind::Output)]);
        let whole_r = node_with(vec![acc(1, 0, 0..100, AccessKind::Input)]);
        tr.register(&whole_w, false);
        finish_registration(&whole_w);
        let e_chunk = tr.register(&chunk_w, false);
        assert_eq!(e_chunk.edges, 1, "chunk write depends on whole write (WAW)");
        finish_registration(&chunk_w);
        let e_read = tr.register(&whole_r, false);
        assert_eq!(
            e_read.edges, 2,
            "whole read depends on both the whole write and the chunk write"
        );
        finish_registration(&whole_r);
    }

    #[test]
    fn disjoint_chunk_writes_to_same_alloc_run_in_parallel() {
        let tr = tracker(4);
        let chunks: Vec<_> = (0..8u32)
            .map(|i| {
                node_with(vec![acc(
                    5,
                    i + 1,
                    (i as usize) * 10..(i as usize + 1) * 10,
                    AccessKind::Output,
                )])
            })
            .collect();
        for c in &chunks {
            tr.register(c, false);
            assert!(finish_registration(c), "chunk writes must be independent");
        }
    }

    #[test]
    fn completed_predecessors_do_not_create_edges() {
        let tr = tracker(2);
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        tr.register(&w, false);
        finish_registration(&w);
        finish(&w); // completes before the consumer is spawned
        let r = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        let reg = tr.register(&r, false);
        assert_eq!(reg.edges, 0);
        assert_eq!(reg.predecessors_seen, 1);
        assert!(finish_registration(&r));
    }

    #[test]
    fn retired_predecessors_are_still_seen_until_gc() {
        let tr = tracker(2);
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        tr.register(&w, false);
        finish_registration(&w);
        finish(&w);
        // The retire path replaces the live reference with a tombstone …
        tr.retire(&w);
        let r1 = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        let reg = tr.register(&r1, false);
        assert_eq!(reg.edges, 0, "a tombstone can take no edge");
        assert_eq!(
            reg.predecessors_seen, 1,
            "a retired conflicting predecessor still counts as seen"
        );
        finish_registration(&r1);
        finish(&r1);
        tr.retire(&r1);
        // … and garbage collection drops the tombstones.
        tr.garbage_collect();
        let r2 = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        let reg = tr.register(&r2, false);
        assert_eq!(reg.predecessors_seen, 0);
        finish_registration(&r2);
    }

    #[test]
    fn retire_is_idempotent_and_skips_access_free_tasks() {
        let tr = tracker(2);
        let free = node_with(vec![]);
        finish_registration(&free);
        finish(&free);
        tr.retire(&free); // no accesses: nothing to do, must not panic
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        tr.register(&w, false);
        finish_registration(&w);
        finish(&w);
        tr.retire(&w);
        tr.retire(&w); // second retire is a no-op
        let r = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        assert_eq!(tr.register(&r, false).predecessors_seen, 1);
        finish_registration(&r);
    }

    #[test]
    fn fully_retired_allocations_leave_by_alloc() {
        // Regression test for the retire path: once every task of an
        // allocation has retired and a GC ran, the allocation must be gone
        // from `entries` *and* from the `by_alloc` overlap index — a stale
        // `by_alloc` region id is a leak that also slows every future
        // overlap scan on that shard.
        let tr = tracker(3);
        let nodes: Vec<_> = (0..6u64)
            .map(|a| {
                let w = node_with(vec![acc(100 + a, 0, 0..10, AccessKind::Output)]);
                tr.register(&w, false);
                finish_registration(&w);
                w
            })
            .collect();
        let diag = tr.diagnostics();
        assert_eq!(diag.total_regions(), 6);
        assert_eq!(diag.total_allocs(), 6);
        assert_eq!(diag.shards(), 3);
        for n in &nodes {
            finish(n);
            tr.retire(n);
        }
        // Tombstones keep the maps populated (deterministic counting) …
        assert_eq!(tr.diagnostics().total_regions(), 6);
        tr.garbage_collect();
        // … and GC must empty both maps in every shard.
        let diag = tr.diagnostics();
        assert_eq!(diag.total_regions(), 0, "entries leak after full retire");
        assert_eq!(
            diag.total_allocs(),
            0,
            "by_alloc holds stale region ids after full retire"
        );
    }

    #[test]
    fn writer_clear_plus_gc_cleans_by_alloc_of_superseded_history() {
        let tr = tracker(2);
        let w1 = node_with(vec![acc(7, 0, 0..10, AccessKind::Output)]);
        tr.register(&w1, false);
        finish_registration(&w1);
        finish(&w1);
        tr.retire(&w1);
        // A later writer generation clears the tombstoned history in place.
        let w2 = node_with(vec![acc(7, 0, 0..10, AccessKind::Output)]);
        tr.register(&w2, false);
        finish_registration(&w2);
        finish(&w2);
        tr.retire(&w2);
        tr.garbage_collect();
        let diag = tr.diagnostics();
        assert_eq!((diag.total_regions(), diag.total_allocs()), (0, 0));
    }

    #[test]
    fn registration_outcome_is_shard_count_invariant() {
        // The same program must produce identical registrations (edge count,
        // classification, predecessors seen, and edge order) whatever the
        // shard count — regions of one allocation live in exactly one shard.
        let program: Vec<Vec<Access>> = vec![
            vec![acc(11, 0, 0..64, AccessKind::Output)],
            vec![
                acc(11, 0, 0..64, AccessKind::Input),
                acc(12, 0, 0..64, AccessKind::Output),
            ],
            vec![acc(12, 0, 0..64, AccessKind::InOut), acc(13, 0, 0..8, AccessKind::Output)],
            vec![acc(11, 0, 0..64, AccessKind::Output)],
            vec![
                acc(13, 0, 0..8, AccessKind::Concurrent),
                acc(11, 0, 0..64, AccessKind::Input),
            ],
        ];
        let outcome = |tr: ShardedTracker| {
            let mut out = Vec::new();
            let mut nodes = Vec::new();
            for accesses in &program {
                let n = node_with(accesses.clone());
                let reg = tr.register(&n, true);
                out.push((
                    reg.edges,
                    reg.raw_edges,
                    reg.war_edges,
                    reg.waw_edges,
                    reg.predecessors_seen,
                    reg.edge_list.iter().map(|e| e.pred).collect::<Vec<_>>(),
                ));
                finish_registration(&n);
                nodes.push(n);
            }
            // Map TaskIds to per-run spawn indices so runs compare equal.
            let index_of = |id: TaskId| nodes.iter().position(|n| n.id == id).unwrap();
            out.into_iter()
                .map(|(e, r, w, ww, seen, preds)| {
                    (e, r, w, ww, seen, preds.into_iter().map(index_of).collect::<Vec<_>>())
                })
                .collect::<Vec<_>>()
        };
        // Reference: single shard, forced-locked (the historical tracker).
        let reference = outcome(tracker_locked(1));
        for shards in [1, 2, 3, 7, 16] {
            assert_eq!(outcome(tracker(shards)), reference, "optimistic, shards = {shards}");
            assert_eq!(
                outcome(tracker_locked(shards)),
                reference,
                "forced-locked, shards = {shards}"
            );
        }
    }

    #[test]
    fn fast_path_hits_and_fallbacks_are_counted() {
        let tr = tracker(4);
        // Single-allocation registrations take the fast path.
        let a = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let b = node_with(vec![
            acc(1, 0, 0..10, AccessKind::Input),
            acc(1, 1, 0..4, AccessKind::Output),
        ]);
        assert!(tr.register(&a, false).fast_path);
        assert!(tr.register(&b, false).fast_path, "same-shard two-access task");
        finish_registration(&a);
        finish_registration(&b);
        // A span over two shards falls back to the mutex path.
        assert_ne!(tr.shard_of(AllocId(1)), tr.shard_of(AllocId(2)));
        let c = node_with(vec![
            acc(1, 0, 0..10, AccessKind::Input),
            acc(2, 0, 0..10, AccessKind::Output),
        ]);
        assert!(!tr.register(&c, false).fast_path);
        finish_registration(&c);
        let diag = tr.diagnostics();
        assert_eq!(diag.fast_path_hits, 2);
        assert_eq!(diag.fast_path_fallbacks, 1);
        // Access-free tasks neither hit nor fall back.
        let free = node_with(vec![]);
        tr.register(&free, false);
        finish_registration(&free);
        let diag = tr.diagnostics();
        assert_eq!((diag.fast_path_hits, diag.fast_path_fallbacks), (2, 1));
    }

    #[test]
    fn forced_locked_tracker_never_takes_the_fast_path() {
        let tr = tracker_locked(4);
        let a = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        assert!(!tr.register(&a, false).fast_path);
        finish_registration(&a);
        let diag = tr.diagnostics();
        assert_eq!((diag.fast_path_hits, diag.fast_path_fallbacks), (0, 0));
    }

    #[test]
    fn fast_path_falls_back_while_a_shard_is_held() {
        let tr = tracker(2);
        let a = node_with(vec![acc(2, 0, 0..10, AccessKind::Output)]);
        let sid = tr.shard_of(AllocId(2));
        {
            let _guard = tr.lock_shard(sid); // e.g. GC sweeping this shard
            assert!(
                tr.try_register_fast(&a, false).is_none(),
                "the gate is odd: the optimistic path must refuse"
            );
        }
        // Gate released: the fast path works again.
        assert!(tr.register(&a, false).fast_path);
        finish_registration(&a);
    }

    #[test]
    fn multi_alloc_registration_spans_shards() {
        let tr = tracker(4);
        // Allocations 1 and 2 land in different shards; a task reading both
        // must collect predecessors from both shards atomically.
        assert_ne!(tr.shard_of(AllocId(1)), tr.shard_of(AllocId(2)));
        let w1 = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let w2 = node_with(vec![acc(2, 0, 0..10, AccessKind::Output)]);
        tr.register(&w1, false);
        tr.register(&w2, false);
        finish_registration(&w1);
        finish_registration(&w2);
        let r = node_with(vec![
            acc(1, 0, 0..10, AccessKind::Input),
            acc(2, 0, 0..10, AccessKind::Input),
        ]);
        let reg = tr.register(&r, true);
        assert_eq!(reg.edges, 2);
        let shards: Vec<usize> = reg.edge_list.iter().map(|e| e.shard).collect();
        assert_eq!(shards.len(), 2);
        assert_ne!(shards[0], shards[1], "edges found in two distinct shards");
        finish_registration(&r);
    }

    #[test]
    fn shard_routing_covers_all_shards() {
        let tr = tracker(5);
        let mut hit = [false; 5];
        for a in 1..=40u64 {
            let s = tr.shard_of(AllocId(a));
            assert!(s < 5);
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "sequential ids reach every shard");
    }

    #[test]
    fn shard_hit_and_contention_counters_accumulate() {
        let tr = tracker(2);
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        tr.register(&w, false);
        finish_registration(&w);
        let hits: u64 = tr.counters().hits().iter().sum();
        assert!(hits >= 1);
        // Single-threaded use never contends.
        assert_eq!(tr.counters().contention(), 0);
    }

    #[test]
    fn taskwait_on_lists_only_incomplete_tasks() {
        let tr = tracker(3);
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let r = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        tr.register(&w, false);
        finish_registration(&w);
        tr.register(&r, false);
        finish_registration(&r);
        let touching = tr.tasks_touching(&region(1, 9, 0..5));
        assert_eq!(touching.len(), 2);
        finish(&w);
        tr.retire(&w);
        let touching = tr.tasks_touching(&region(1, 9, 0..5));
        assert_eq!(touching.len(), 1);
        assert_eq!(touching[0].id, r.id);
        // A non-overlapping range sees nothing.
        assert!(tr.tasks_touching(&region(1, 9, 50..60)).is_empty());
        assert!(tr.tasks_touching(&region(2, 0, 0..10)).is_empty());
    }

    #[test]
    fn garbage_collect_drops_dead_entries() {
        let tr = tracker(2);
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let w2 = node_with(vec![acc(2, 0, 0..10, AccessKind::Output)]);
        tr.register(&w, false);
        tr.register(&w2, false);
        finish_registration(&w);
        finish_registration(&w2);
        assert_eq!(tr.tracked_regions(), 2);
        finish(&w);
        tr.garbage_collect();
        assert_eq!(tr.tracked_regions(), 1);
        finish(&w2);
        tr.garbage_collect();
        assert_eq!(tr.tracked_regions(), 0);
    }

    #[test]
    fn self_dependence_is_ignored() {
        let tr = tracker(2);
        // A task that both reads and writes the same region through two
        // accesses must not depend on itself.
        let n = node_with(vec![
            acc(1, 0, 0..10, AccessKind::Input),
            acc(1, 0, 0..10, AccessKind::Output),
        ]);
        let reg = tr.register(&n, false);
        assert_eq!(reg.edges, 0);
        assert!(finish_registration(&n));
    }

    #[test]
    fn add_edge_refuses_completed_pred() {
        let a = node_with(vec![]);
        let b = node_with(vec![]);
        finish_registration(&a);
        complete(&a);
        assert!(!add_edge(&a, &b));
        assert!(finish_registration(&b));
    }

    /// Simulate executing every registered task in dependence order and check
    /// liveness: every task eventually becomes ready and runs exactly once.
    fn run_to_completion(nodes: Vec<Arc<TaskNode>>, initially_ready: Vec<Arc<TaskNode>>) {
        use std::collections::VecDeque;
        let mut ready: VecDeque<_> = initially_ready.into();
        let mut executed = 0usize;
        while let Some(n) = ready.pop_front() {
            executed += 1;
            for r in complete(&n) {
                ready.push_back(r);
            }
        }
        assert_eq!(executed, nodes.len(), "every task must execute exactly once");
        for n in &nodes {
            assert!(n.is_completed());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random access patterns over a handful of regions always produce an
        /// acyclic graph in which every task eventually runs (liveness), and
        /// tasks writing the same region are totally ordered — whatever the
        /// shard count.
        #[test]
        fn prop_random_graphs_are_live(
            specs in proptest::collection::vec(
                (0u32..4, prop_oneof![
                    Just(AccessKind::Input),
                    Just(AccessKind::Output),
                    Just(AccessKind::InOut),
                    Just(AccessKind::Concurrent),
                ]),
                1..40,
            ),
            shards in 1usize..9,
        ) {
            let tr = tracker(shards);
            let mut nodes = Vec::new();
            let mut ready = Vec::new();
            for (chunk, kind) in specs {
                let n = node_with(vec![acc(9, chunk, (chunk as usize) * 10..(chunk as usize + 1) * 10, kind)]);
                tr.register(&n, false);
                if finish_registration(&n) {
                    ready.push(n.clone());
                }
                nodes.push(n);
            }
            run_to_completion(nodes, ready);
        }

        /// Multi-access tasks over overlapping regions (and therefore over
        /// multiple shards) also stay live.
        #[test]
        fn prop_multi_access_graphs_are_live(
            specs in proptest::collection::vec(
                proptest::collection::vec(
                    (0usize..50, 1usize..30, prop_oneof![
                        Just(AccessKind::Input),
                        Just(AccessKind::Output),
                        Just(AccessKind::InOut),
                    ]),
                    1..3,
                ),
                1..25,
            ),
            shards in 1usize..9,
        ) {
            let tr = tracker(shards);
            let mut nodes = Vec::new();
            let mut ready = Vec::new();
            for (i, accesses) in specs.into_iter().enumerate() {
                // Spread tasks over several allocations so registrations
                // genuinely span shards.
                let alloc = 7 + (i % 3) as u64;
                let accs: Vec<Access> = accesses
                    .into_iter()
                    .enumerate()
                    .map(|(j, (start, len, kind))| acc(alloc, (i * 4 + j) as u32 + 1, start..start + len, kind))
                    .collect();
                let n = node_with(accs);
                tr.register(&n, false);
                if finish_registration(&n) {
                    ready.push(n.clone());
                }
                nodes.push(n);
            }
            run_to_completion(nodes, ready);
        }
    }
}

//! Runtime dependence analysis and the task graph.
//!
//! This module is the OmpSs "superscalar" piece: just like an out-of-order
//! processor renames and tracks register dependences between in-flight
//! instructions, the tracker here records, per memory region, which in-flight
//! tasks last wrote it and which have read it since, and derives the
//! dependence edges of every newly spawned task from its declared accesses.
//!
//! The rules implemented (for a *later* task L registering after an *earlier*
//! task E, on overlapping regions):
//!
//! * L reads (`input`): L depends on E if E writes (RAW) — including
//!   `concurrent` writers.
//! * L writes (`output`/`inout`): L depends on every earlier reader (WAR) and
//!   writer (WAW).
//! * L is `concurrent`: L depends on earlier plain writers and readers, but
//!   **not** on earlier `concurrent` accesses (commutative updates may
//!   reorder among themselves).
//!
//! WAR/WAW edges serialise tasks on a given data *version* — the behaviour
//! the paper works around with circular buffers in the H.264 pipeline
//! (Listing 1). With automatic renaming (see [`crate::rename`]), `output`
//! accesses on versioned handles resolve to a **fresh version** (a fresh
//! allocation identity) *before* they reach this tracker, so the WAR/WAW
//! edges that would serialise them simply never arise here: the renamed
//! writer overlaps nothing in flight. The tracker itself needs no renaming
//! special-case; it classifies every edge it does insert (RAW / WAR / WAW)
//! so the effect of renaming is visible in the statistics.
//!
//! [`crate::rename`]: crate::rename

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::access::{AccessKind, Dependence};
use crate::region::{AllocId, Region, RegionId};
use crate::task::{TaskNode, TaskState};

/// Per-region bookkeeping of in-flight accesses.
#[derive(Default)]
struct RegionEntry {
    /// The byte range this region id refers to (recorded on first sight).
    region: Option<Region>,
    /// Tasks forming the last "writer generation".
    writers: Vec<Arc<TaskNode>>,
    /// Tasks that have read the region since the last writer generation.
    readers: Vec<Arc<TaskNode>>,
    /// Tasks with `concurrent` access since the last plain writer.
    concurrent: Vec<Arc<TaskNode>>,
}

/// The dependence tracker: maps regions to their in-flight access history and
/// knows which registered regions of an allocation overlap which.
#[derive(Default)]
pub(crate) struct DependencyTracker {
    entries: HashMap<RegionId, RegionEntry>,
    /// All region ids ever registered per allocation, used for overlap scans.
    by_alloc: HashMap<AllocId, Vec<RegionId>>,
}

/// Result of registering a task with the tracker.
pub(crate) struct Registration {
    /// Number of predecessor edges actually added (predecessors that had not
    /// yet completed).
    pub edges: usize,
    /// Added edges that are true (read-after-write) dependences.
    pub raw_edges: usize,
    /// Added edges that are anti (write-after-read) dependences.
    pub war_edges: usize,
    /// Added edges that are output (write-after-write) dependences.
    pub waw_edges: usize,
    /// Number of distinct conflicting predecessors discovered at
    /// registration, whether or not they had already completed. Unlike
    /// `edges` this does not depend on execution timing (until history is
    /// garbage-collected), which makes it the right counter for tests and
    /// comparisons that must be deterministic under load.
    pub predecessors_seen: usize,
}

impl DependencyTracker {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Register the declared accesses of `node`, adding dependence edges from
    /// every conflicting in-flight task, and updating the per-region history
    /// so that future tasks depend on `node` where required.
    pub(crate) fn register(&mut self, node: &Arc<TaskNode>) -> Registration {
        // Each predecessor is remembered together with the dependence class
        // of the (first) conflict that introduced it, so that added edges
        // can be attributed to RAW / WAR / WAW in the statistics.
        let mut preds: Vec<(Arc<TaskNode>, Dependence)> = Vec::new();
        let mut seen_pred_ids: Vec<crate::task::TaskId> = Vec::new();

        // Pass 1: collect predecessors from every overlapping region entry.
        for access in node.accesses.iter() {
            let overlapping = self.overlapping_ids(&access.region);
            for rid in overlapping {
                let entry = match self.entries.get(&rid) {
                    Some(e) => e,
                    None => continue,
                };
                let later = access.kind;
                // Statistics classification. This deliberately diverges from
                // `access::classify` for read-modify-writes: an `inout` (or
                // `concurrent`) after a writer *reads* the written data, so
                // the edge carries a genuine data flow and is counted RAW —
                // it is not serialisation that renaming could remove. WAR and
                // WAW are reserved for edges where the successor overwrites
                // without reading (the renameable false dependences).
                let vs_writer = if later.reads() {
                    Dependence::ReadAfterWrite
                } else {
                    Dependence::WriteAfterWrite
                };
                // Earlier writers always order later readers and writers.
                for w in &entry.writers {
                    push_pred(&mut preds, &mut seen_pred_ids, w, vs_writer);
                }
                match later {
                    AccessKind::Input => {
                        // RAW only; concurrent accumulators count as writers.
                        for c in &entry.concurrent {
                            push_pred(&mut preds, &mut seen_pred_ids, c, Dependence::ReadAfterWrite);
                        }
                    }
                    AccessKind::Output | AccessKind::InOut => {
                        for r in &entry.readers {
                            push_pred(&mut preds, &mut seen_pred_ids, r, Dependence::WriteAfterRead);
                        }
                        for c in &entry.concurrent {
                            push_pred(&mut preds, &mut seen_pred_ids, c, vs_writer);
                        }
                    }
                    AccessKind::Concurrent => {
                        // Order against plain readers, not against other
                        // concurrent accesses.
                        for r in &entry.readers {
                            push_pred(&mut preds, &mut seen_pred_ids, r, Dependence::WriteAfterRead);
                        }
                    }
                }
            }
        }

        // Pass 2: add the edges.
        let mut edges = 0usize;
        let (mut raw_edges, mut war_edges, mut waw_edges) = (0usize, 0usize, 0usize);
        for (pred, dependence) in &preds {
            if pred.id == node.id {
                continue;
            }
            if add_edge(pred, node) {
                edges += 1;
                match dependence {
                    Dependence::ReadAfterWrite => raw_edges += 1,
                    Dependence::WriteAfterRead => war_edges += 1,
                    Dependence::WriteAfterWrite => waw_edges += 1,
                    Dependence::None => {}
                }
            }
        }
        node.in_edges.store(edges, Ordering::Relaxed);

        // Pass 3: update the history on the *exact* region entries.
        for access in node.accesses.iter() {
            let rid = access.region.id;
            self.by_alloc
                .entry(rid.alloc)
                .or_default()
                .retain(|r| *r != rid);
            self.by_alloc.entry(rid.alloc).or_default().push(rid);
            let entry = self.entries.entry(rid).or_default();
            if entry.region.is_none() {
                entry.region = Some(access.region.clone());
            }
            match access.kind {
                AccessKind::Input => entry.readers.push(node.clone()),
                AccessKind::Output | AccessKind::InOut => {
                    entry.writers.clear();
                    entry.writers.push(node.clone());
                    entry.readers.clear();
                    entry.concurrent.clear();
                }
                AccessKind::Concurrent => entry.concurrent.push(node.clone()),
            }
        }

        Registration {
            edges,
            raw_edges,
            war_edges,
            waw_edges,
            predecessors_seen: preds.len(),
        }
    }

    /// All in-flight tasks that currently access a region overlapping
    /// `region` (used by `taskwait on`).
    pub(crate) fn tasks_touching(&self, region: &Region) -> Vec<Arc<TaskNode>> {
        let mut out: Vec<Arc<TaskNode>> = Vec::new();
        let mut seen: Vec<crate::task::TaskId> = Vec::new();
        for rid in self.overlapping_ids(region) {
            if let Some(entry) = self.entries.get(&rid) {
                for t in entry
                    .writers
                    .iter()
                    .chain(entry.readers.iter())
                    .chain(entry.concurrent.iter())
                {
                    if !t.is_completed() && !seen.contains(&t.id) {
                        seen.push(t.id);
                        out.push(t.clone());
                    }
                }
            }
        }
        out
    }

    /// Drop history entries whose every referenced task has completed.
    /// Called opportunistically to bound memory on long-running programs.
    pub(crate) fn garbage_collect(&mut self) {
        self.entries.retain(|_, e| {
            e.writers.retain(|t| !t.is_completed());
            e.readers.retain(|t| !t.is_completed());
            e.concurrent.retain(|t| !t.is_completed());
            !(e.writers.is_empty() && e.readers.is_empty() && e.concurrent.is_empty())
        });
        let live: Vec<RegionId> = self.entries.keys().copied().collect();
        for (_, ids) in self.by_alloc.iter_mut() {
            ids.retain(|r| live.contains(r));
        }
        self.by_alloc.retain(|_, ids| !ids.is_empty());
    }

    /// Number of regions currently tracked (diagnostics; exercised by unit
    /// tests).
    #[allow(dead_code)]
    pub(crate) fn tracked_regions(&self) -> usize {
        self.entries.len()
    }

    fn overlapping_ids(&self, region: &Region) -> Vec<RegionId> {
        let mut out = Vec::new();
        if let Some(ids) = self.by_alloc.get(&region.id.alloc) {
            for rid in ids {
                if let Some(entry) = self.entries.get(rid) {
                    if let Some(r) = &entry.region {
                        if r.overlaps(region) {
                            out.push(*rid);
                        }
                    }
                }
            }
        }
        // The exact region id may not be recorded yet; that is fine — no
        // history means no predecessors.
        out
    }
}

fn push_pred(
    preds: &mut Vec<(Arc<TaskNode>, Dependence)>,
    seen: &mut Vec<crate::task::TaskId>,
    t: &Arc<TaskNode>,
    dependence: Dependence,
) {
    if !seen.contains(&t.id) {
        seen.push(t.id);
        preds.push((t.clone(), dependence));
    }
}

/// Add a dependence edge `pred -> succ`. Returns `false` (and adds nothing)
/// if `pred` already completed.
pub(crate) fn add_edge(pred: &Arc<TaskNode>, succ: &Arc<TaskNode>) -> bool {
    let mut links = pred.links.lock();
    if links.completed {
        return false;
    }
    links.successors.push(succ.clone());
    succ.pending.fetch_add(1, Ordering::SeqCst);
    true
}

/// Release the registration sentinel of a freshly registered task. Returns
/// `true` if the task became ready (no unresolved predecessors).
pub(crate) fn finish_registration(node: &Arc<TaskNode>) -> bool {
    let prev = node.pending.fetch_sub(1, Ordering::SeqCst);
    debug_assert!(prev >= 1);
    let ready = prev == 1;
    if ready {
        node.set_state(TaskState::Ready);
    }
    ready
}

/// Mark `node` completed and notify its successors. Returns the successors
/// that became ready as a result.
pub(crate) fn complete(node: &Arc<TaskNode>) -> Vec<Arc<TaskNode>> {
    node.set_state(TaskState::Completed);
    let successors = {
        let mut links = node.links.lock();
        links.completed = true;
        std::mem::take(&mut links.successors)
    };
    let mut ready = Vec::new();
    for succ in successors {
        let prev = succ.pending.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev >= 1);
        if prev == 1 {
            succ.set_state(TaskState::Ready);
            ready.push(succ);
        }
    }
    ready
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessKind};
    use crate::region::AllocId;
    use crate::task::{ChildTracker, TaskPriority};
    use proptest::prelude::*;

    fn node_with(accesses: Vec<Access>) -> Arc<TaskNode> {
        TaskNode::new(
            None,
            TaskPriority::default(),
            Arc::from(accesses.into_boxed_slice()),
            Box::new(|_ctx| {}),
            ChildTracker::new(),
        )
    }

    fn region(alloc: u64, chunk: u32, range: std::ops::Range<usize>) -> Region {
        Region::new(AllocId(alloc), chunk, range)
    }

    fn acc(alloc: u64, chunk: u32, range: std::ops::Range<usize>, kind: AccessKind) -> Access {
        Access::new(region(alloc, chunk, range), kind)
    }

    /// Drain a node as if it executed (without a runtime).
    fn finish(node: &Arc<TaskNode>) -> Vec<Arc<TaskNode>> {
        complete(node)
    }

    #[test]
    fn raw_dependence_creates_edge() {
        let mut tr = DependencyTracker::new();
        let producer = node_with(vec![acc(1, 0, 0..100, AccessKind::Output)]);
        let consumer = node_with(vec![acc(1, 0, 0..100, AccessKind::Input)]);

        let r1 = tr.register(&producer);
        assert_eq!(r1.edges, 0);
        assert!(finish_registration(&producer));

        let r2 = tr.register(&consumer);
        assert_eq!(r2.edges, 1);
        assert!(!finish_registration(&consumer));
        assert_eq!(consumer.task_state(), TaskState::WaitingDeps);

        let ready = finish(&producer);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].id, consumer.id);
        assert_eq!(consumer.task_state(), TaskState::Ready);
    }

    #[test]
    fn war_and_waw_serialise_without_renaming() {
        let mut tr = DependencyTracker::new();
        let reader = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        let writer1 = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let writer2 = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);

        tr.register(&reader);
        finish_registration(&reader);
        let r_w1 = tr.register(&writer1);
        // WAR edge from reader.
        assert_eq!(r_w1.edges, 1);
        finish_registration(&writer1);
        let r_w2 = tr.register(&writer2);
        // WAW edge from writer1 only (reader history cleared by writer1).
        assert_eq!(r_w2.edges, 1);
        finish_registration(&writer2);

        assert!(finish(&reader).iter().any(|t| t.id == writer1.id));
        assert!(finish(&writer1).iter().any(|t| t.id == writer2.id));
    }

    #[test]
    fn independent_regions_do_not_serialise() {
        let mut tr = DependencyTracker::new();
        let a = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let b = node_with(vec![acc(1, 1, 10..20, AccessKind::Output)]);
        let c = node_with(vec![acc(2, 0, 0..10, AccessKind::Output)]);
        tr.register(&a);
        tr.register(&b);
        tr.register(&c);
        assert!(finish_registration(&a));
        assert!(finish_registration(&b));
        assert!(finish_registration(&c));
    }

    #[test]
    fn readers_do_not_serialise_with_each_other() {
        let mut tr = DependencyTracker::new();
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let r1 = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        let r2 = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        tr.register(&w);
        finish_registration(&w);
        let e1 = tr.register(&r1);
        let e2 = tr.register(&r2);
        assert_eq!(e1.edges, 1);
        assert_eq!(e2.edges, 1);
        finish_registration(&r1);
        finish_registration(&r2);
        let ready = finish(&w);
        assert_eq!(ready.len(), 2, "both readers become ready together");
    }

    #[test]
    fn concurrent_accesses_commute_but_order_against_writers() {
        let mut tr = DependencyTracker::new();
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let c1 = node_with(vec![acc(1, 0, 0..10, AccessKind::Concurrent)]);
        let c2 = node_with(vec![acc(1, 0, 0..10, AccessKind::Concurrent)]);
        let r = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);

        tr.register(&w);
        finish_registration(&w);
        let e1 = tr.register(&c1);
        let e2 = tr.register(&c2);
        assert_eq!(e1.edges, 1, "concurrent waits for plain writer");
        assert_eq!(e2.edges, 1, "concurrent does not wait for other concurrent");
        let er = tr.register(&r);
        assert_eq!(er.edges, 3, "reader waits for writer and both accumulators");
        finish_registration(&c1);
        finish_registration(&c2);
        finish_registration(&r);
    }

    #[test]
    fn overlapping_chunk_and_whole_regions_serialise() {
        let mut tr = DependencyTracker::new();
        // Whole-array write, then chunk write, then whole read.
        let whole_w = node_with(vec![acc(1, 0, 0..100, AccessKind::Output)]);
        let chunk_w = node_with(vec![acc(1, 3, 20..30, AccessKind::Output)]);
        let whole_r = node_with(vec![acc(1, 0, 0..100, AccessKind::Input)]);
        tr.register(&whole_w);
        finish_registration(&whole_w);
        let e_chunk = tr.register(&chunk_w);
        assert_eq!(e_chunk.edges, 1, "chunk write depends on whole write (WAW)");
        finish_registration(&chunk_w);
        let e_read = tr.register(&whole_r);
        assert_eq!(
            e_read.edges, 2,
            "whole read depends on both the whole write and the chunk write"
        );
        finish_registration(&whole_r);
    }

    #[test]
    fn disjoint_chunk_writes_to_same_alloc_run_in_parallel() {
        let mut tr = DependencyTracker::new();
        let chunks: Vec<_> = (0..8u32)
            .map(|i| {
                node_with(vec![acc(
                    5,
                    i + 1,
                    (i as usize) * 10..(i as usize + 1) * 10,
                    AccessKind::Output,
                )])
            })
            .collect();
        for c in &chunks {
            tr.register(c);
            assert!(finish_registration(c), "chunk writes must be independent");
        }
    }

    #[test]
    fn completed_predecessors_do_not_create_edges() {
        let mut tr = DependencyTracker::new();
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        tr.register(&w);
        finish_registration(&w);
        finish(&w); // completes before the consumer is spawned
        let r = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        let reg = tr.register(&r);
        assert_eq!(reg.edges, 0);
        assert_eq!(reg.predecessors_seen, 1);
        assert!(finish_registration(&r));
    }

    #[test]
    fn taskwait_on_lists_only_incomplete_tasks() {
        let mut tr = DependencyTracker::new();
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let r = node_with(vec![acc(1, 0, 0..10, AccessKind::Input)]);
        tr.register(&w);
        finish_registration(&w);
        tr.register(&r);
        finish_registration(&r);
        let touching = tr.tasks_touching(&region(1, 9, 0..5));
        assert_eq!(touching.len(), 2);
        finish(&w);
        let touching = tr.tasks_touching(&region(1, 9, 0..5));
        assert_eq!(touching.len(), 1);
        assert_eq!(touching[0].id, r.id);
        // A non-overlapping range sees nothing.
        assert!(tr.tasks_touching(&region(1, 9, 50..60)).is_empty());
        assert!(tr.tasks_touching(&region(2, 0, 0..10)).is_empty());
    }

    #[test]
    fn garbage_collect_drops_dead_entries() {
        let mut tr = DependencyTracker::new();
        let w = node_with(vec![acc(1, 0, 0..10, AccessKind::Output)]);
        let w2 = node_with(vec![acc(2, 0, 0..10, AccessKind::Output)]);
        tr.register(&w);
        tr.register(&w2);
        finish_registration(&w);
        finish_registration(&w2);
        assert_eq!(tr.tracked_regions(), 2);
        finish(&w);
        tr.garbage_collect();
        assert_eq!(tr.tracked_regions(), 1);
        finish(&w2);
        tr.garbage_collect();
        assert_eq!(tr.tracked_regions(), 0);
    }

    #[test]
    fn self_dependence_is_ignored() {
        let mut tr = DependencyTracker::new();
        // A task that both reads and writes the same region through two
        // accesses must not depend on itself.
        let n = node_with(vec![
            acc(1, 0, 0..10, AccessKind::Input),
            acc(1, 0, 0..10, AccessKind::Output),
        ]);
        let reg = tr.register(&n);
        assert_eq!(reg.edges, 0);
        assert!(finish_registration(&n));
    }

    #[test]
    fn add_edge_refuses_completed_pred() {
        let a = node_with(vec![]);
        let b = node_with(vec![]);
        finish_registration(&a);
        complete(&a);
        assert!(!add_edge(&a, &b));
        assert!(finish_registration(&b));
    }

    /// Simulate executing every registered task in dependence order and check
    /// liveness: every task eventually becomes ready and runs exactly once.
    fn run_to_completion(nodes: Vec<Arc<TaskNode>>, initially_ready: Vec<Arc<TaskNode>>) {
        use std::collections::VecDeque;
        let mut ready: VecDeque<_> = initially_ready.into();
        let mut executed = 0usize;
        while let Some(n) = ready.pop_front() {
            executed += 1;
            for r in complete(&n) {
                ready.push_back(r);
            }
        }
        assert_eq!(executed, nodes.len(), "every task must execute exactly once");
        for n in &nodes {
            assert!(n.is_completed());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random access patterns over a handful of regions always produce an
        /// acyclic graph in which every task eventually runs (liveness), and
        /// tasks writing the same region are totally ordered.
        #[test]
        fn prop_random_graphs_are_live(
            specs in proptest::collection::vec(
                (0u32..4, prop_oneof![
                    Just(AccessKind::Input),
                    Just(AccessKind::Output),
                    Just(AccessKind::InOut),
                    Just(AccessKind::Concurrent),
                ]),
                1..40,
            )
        ) {
            let mut tr = DependencyTracker::new();
            let mut nodes = Vec::new();
            let mut ready = Vec::new();
            for (chunk, kind) in specs {
                let n = node_with(vec![acc(9, chunk, (chunk as usize) * 10..(chunk as usize + 1) * 10, kind)]);
                tr.register(&n);
                if finish_registration(&n) {
                    ready.push(n.clone());
                }
                nodes.push(n);
            }
            run_to_completion(nodes, ready);
        }

        /// Multi-access tasks over overlapping regions also stay live.
        #[test]
        fn prop_multi_access_graphs_are_live(
            specs in proptest::collection::vec(
                proptest::collection::vec(
                    (0usize..50, 1usize..30, prop_oneof![
                        Just(AccessKind::Input),
                        Just(AccessKind::Output),
                        Just(AccessKind::InOut),
                    ]),
                    1..3,
                ),
                1..25,
            )
        ) {
            let mut tr = DependencyTracker::new();
            let mut nodes = Vec::new();
            let mut ready = Vec::new();
            for (i, accesses) in specs.into_iter().enumerate() {
                let accs: Vec<Access> = accesses
                    .into_iter()
                    .enumerate()
                    .map(|(j, (start, len, kind))| acc(7, (i * 4 + j) as u32 + 1, start..start + len, kind))
                    .collect();
                let n = node_with(accs);
                tr.register(&n);
                if finish_registration(&n) {
                    ready.push(n.clone());
                }
                nodes.push(n);
            }
            run_to_completion(nodes, ready);
        }
    }
}

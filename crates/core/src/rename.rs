//! Automatic data renaming: runtime-managed version chains that eliminate
//! WAR/WAW serialisation.
//!
//! ## The problem
//!
//! The dependence rules of the OmpSs model (see [`crate::graph`]) serialise a
//! later writer behind every earlier reader (WAR, anti dependence) and every
//! earlier writer (WAW, output dependence) of the same data. The paper's
//! H.264 pipeline (Listing 1) would therefore serialise completely — every
//! iteration overwrites the same stage buffers — and the programmer has to
//! break the false dependences *manually* with circular buffers
//! ([`crate::pipeline::RenameRing`]).
//!
//! ## The model
//!
//! This module brings the superscalar analogy to its conclusion: exactly as
//! an out-of-order core renames architectural registers onto a larger
//! physical register file, a *versioned* [`Data`](crate::handle::Data)
//! handle is backed by a **chain of storage versions**. Accesses resolve to
//! a concrete version at task-insertion time:
//!
//! * `input` / `inout` / `concurrent` accesses bind to the **current**
//!   version — true (RAW) dependences are preserved, and `inout` chains
//!   still serialise (an in-place update genuinely needs the previous
//!   value).
//! * An `output` access **allocates a fresh version** (or recycles one from
//!   a bounded per-handle pool) and makes it current. Because every version
//!   has its own allocation identity, the new writer conflicts with nothing
//!   in flight: the WAR/WAW edges simply never arise.
//!
//! ## First-write rename elision
//!
//! Allocating a fresh version buys nothing when nobody holds the old one: a
//! single-pass workload (rotate writes every output band exactly once) would
//! pay one allocation per band for versions that never conflict with
//! anything. So an `output` access first checks the current version's
//! in-flight binding count: when it is **zero** — and, because workers
//! release their version tickets only *after* retiring the task from the
//! dependence tracker, zero means every earlier bound task has completed
//! *and* its history references are tombstones — the access **binds the
//! current version in place** instead of renaming. The elided write
//! provably inherits no WAR/WAW edge (tombstones can take none), so the
//! zero-false-dependence property of renaming is preserved deterministically;
//! the elision is counted in
//! [`RuntimeStats::renames_elided`](crate::RuntimeStats::renames_elided)
//! rather than `renames`. Disable with
//! [`RuntimeConfig::with_rename_elision(false)`](crate::RuntimeConfig::with_rename_elision)
//! to force every `output` to allocate, as earlier revisions did.
//!
//! One corner needs care: a task declaring `output(&x)` *before* `input(&x)`
//! on the same versioned handle would bind both clauses to the same storage
//! when the write elides, silently degrading to `inout`-like in-place
//! semantics. The task builder detects this pattern at bind time — an
//! `input` clause arriving after an elided `output` on an overlapping
//! sub-region — and **un-elides** the write ([`VersionTicket::unelide`]):
//! the output binding is transferred to a freshly allocated (or
//! pool-recycled) version before the task is inserted, so the read keeps
//! observing the pre-task value whatever the clause order. Only when
//! renaming is impossible (budget or version-count backpressure) does the
//! in-place aliasing remain — the same degradation the budget-exhaustion
//! fallback (and renaming-off mode) always had.
//!
//! ## Region granularity
//!
//! Version chains are keyed by **sub-region**, not only by whole handles. A
//! [`Data`](crate::handle::Data) handle has a single chain; a *versioned*
//! [`PartitionedData`](crate::handle::PartitionedData)
//! ([`Runtime::versioned_partitioned`](crate::Runtime::versioned_partitioned))
//! gives **every chunk its own chain**, so an `output` access to chunk *i*
//! renames just that chunk while the other chunks stay untouched — the
//! region model the paper's scanline/block pipelines (rotate, rgbcmy,
//! bodytrack weight updates) need. A whole-array access synchronises across
//! all chunk chains: it binds (for `output`: renames) the current version of
//! every chunk. One access clause may therefore resolve to **several**
//! concrete bindings, which is why [`ResolvedAccess`] carries vectors.
//!
//! The chain always has a well-defined *current* version, which is what
//! later tasks, [`Runtime::fetch`](crate::Runtime::fetch) and
//! [`Data::try_into_inner`](crate::handle::Data::try_into_inner) observe; a
//! `taskwait` therefore sees the final version "committed back" as the value
//! of the handle. Superseded versions are reclaimed as soon as their last
//! in-flight task completes: the storage returns to the handle's recycle
//! pool (bounded by [`RuntimeConfig::rename_pool_depth`]) or is dropped.
//!
//! ## Fresh versions hold fresh values
//!
//! A renamed `output` version is produced by the handle's *initialiser*
//! (`T::default()` for [`Runtime::versioned_data`](crate::Runtime::versioned_data),
//! or the closure given to
//! [`Data::versioned_with`](crate::handle::Data::versioned_with)) — or, when
//! storage is recycled, it simply keeps the superseded version's leftover
//! contents. It is never a copy of the current version. This is precisely
//! the `output` contract: the task declares that it overwrites the data
//! without reading it, so the pre-existing contents are unobservable to a
//! correct program. A task that wants to read the previous value must
//! declare `inout`, which binds (and serialises on) the current version.
//!
//! ## Backpressure: version-count bound and memory cap
//!
//! Every version beyond a handle's canonical first one consumes memory, and
//! a producer far ahead of its consumers could allocate without bound. Two
//! bounds apply; hitting either makes an `output` access **fall back to
//! binding the current version**, serialising behind the in-flight readers
//! and writers exactly as without renaming. The program stays correct —
//! renaming is purely a scheduling optimisation — and the fallback is
//! counted in [`RuntimeStats::rename_fallbacks`](crate::RuntimeStats).
//!
//! * **Per-handle version count** ([`RuntimeConfig::rename_max_versions`],
//!   default 16): at most this many versions of one handle may be live at
//!   once. This is the bound that matters for heap-backed types — it limits
//!   a handle's footprint to `max_versions` deep copies, playing the role
//!   of Listing 1's ring depth `N`.
//! * **Global byte budget** ([`RuntimeConfig::rename_memory_cap`], default
//!   256 MiB): all extra versions are accounted against it. Versioned
//!   partitions account the **deep** payload of each chunk version
//!   (`chunk_len * size_of::<T>()`), and scalar handles accept a per-handle
//!   `size_hint`
//!   ([`Data::versioned_with_size`](crate::handle::Data::versioned_with_size))
//!   for heap-backed types; without a hint the accounting falls back to the
//!   shallow `size_of::<T>()`, in which case the version-count bound is the
//!   effective limit.
//!
//! Disabling renaming entirely ([`RuntimeConfig::with_renaming(false)`]
//! [`crate::RuntimeConfig::with_renaming`]) makes every versioned handle
//! behave like a plain one: all accesses bind the single current version and
//! WAR/WAW edges serialise tasks, which is the configuration the
//! `rename_ablation` harness compares against.
//!
//! ## Interplay with graph capture/replay
//!
//! A [`GraphTemplate`](crate::GraphTemplate) records *clauses*, never
//! resolved version bindings: every
//! [`Runtime::replay`](crate::Runtime::replay) pass runs this module's
//! resolution again — fresh renames, elision decisions, and bind-time
//! un-elision are all re-evaluated against the version chains as they stand
//! at replay time. Version state is therefore never a template-invalidation
//! concern, and the elided-output-then-input corner above cannot be "baked
//! in" by capture. Handle substitution happens one step earlier still:
//! [`ReplayBindings`](crate::ReplayBindings) swaps which *handle* a captured
//! clause resolves against (keyed by its canonical
//! [`replay_key`](crate::Accessible::replay_key), which is stable across
//! renames), and only then does the chosen handle's chain decide the
//! concrete version.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::region::AllocId;

/// Default global memory budget for renamed versions (bytes).
pub const DEFAULT_RENAME_MEMORY_CAP: usize = 256 * 1024 * 1024;

/// Default bound on each handle's pool of recycled version slots.
pub const DEFAULT_RENAME_POOL_DEPTH: usize = 8;

/// Default bound on the number of live versions per handle.
pub const DEFAULT_RENAME_MAX_VERSIONS: usize = 16;

/// Global accounting of the memory held by renamed versions, shared by every
/// versioned handle used with one runtime.
///
/// The pool does not own any storage; it is a budget. Version storage is
/// owned by the handles, each extra version holding a [`Reservation`] that
/// returns its bytes to the budget when the storage is dropped.
#[derive(Debug)]
pub struct RenamePool {
    cap: usize,
    held: AtomicUsize,
    renames: AtomicU64,
    chunk_renames: AtomicU64,
    recycled: AtomicU64,
    fallbacks: AtomicU64,
    elided: AtomicU64,
    /// Version tickets moved into spawned task nodes (bind side of the
    /// ticket ledger audited by [`crate::Runtime::audit`]).
    ticket_refs_bound: AtomicU64,
    /// Version tickets released by retired task nodes (release side; at
    /// quiescence the two sides must balance — an imbalance means some
    /// retirement path leaked or double-released a binding).
    ticket_refs_released: AtomicU64,
}

impl RenamePool {
    /// Create a pool with the given byte budget.
    pub fn new(cap: usize) -> Self {
        RenamePool {
            cap,
            held: AtomicUsize::new(0),
            renames: AtomicU64::new(0),
            chunk_renames: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            elided: AtomicU64::new(0),
            ticket_refs_bound: AtomicU64::new(0),
            ticket_refs_released: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Bytes currently held by renamed versions (live and pooled).
    pub fn bytes_held(&self) -> usize {
        self.held.load(Ordering::Relaxed)
    }

    /// Renames performed (fresh or recycled versions).
    pub fn renames(&self) -> u64 {
        self.renames.load(Ordering::Relaxed)
    }

    /// Renames performed at sub-region (chunk) granularity — a subset of
    /// [`RenamePool::renames`].
    pub fn chunk_renames(&self) -> u64 {
        self.chunk_renames.load(Ordering::Relaxed)
    }

    /// Renames served from a handle's recycle pool.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// `output` accesses that fell back to serialising because either the
    /// byte budget was exhausted or the handle was already at its
    /// live-version bound.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// `output` accesses whose rename was **elided**: the current version
    /// had no in-flight bindings (every earlier bound task completed and
    /// retired), so it was bound in place — a first-write that allocates
    /// nothing and still serialises on nothing (the retired history can take
    /// no edge). Disjoint from [`RenamePool::renames`].
    pub fn elided(&self) -> u64 {
        self.elided.load(Ordering::Relaxed)
    }

    /// Version tickets moved into spawned task nodes so far.
    pub fn ticket_refs_bound(&self) -> u64 {
        self.ticket_refs_bound.load(Ordering::Relaxed)
    }

    /// Version tickets released by retired task nodes so far.
    pub fn ticket_refs_released(&self) -> u64 {
        self.ticket_refs_released.load(Ordering::Relaxed)
    }

    /// Account `n` version tickets entering a spawned task node.
    pub(crate) fn note_tickets_bound(&self, n: u64) {
        self.ticket_refs_bound.fetch_add(n, Ordering::Relaxed);
    }

    /// Account `n` version tickets released at task retirement.
    pub(crate) fn note_tickets_released(&self, n: u64) {
        self.ticket_refs_released.fetch_add(n, Ordering::Relaxed);
    }

    /// Try to reserve `bytes` for a new version. Returns the reservation, or
    /// `None` when the budget would be exceeded (backpressure).
    pub fn try_reserve(self: &Arc<Self>, bytes: usize) -> Option<Reservation> {
        let mut held = self.held.load(Ordering::Relaxed);
        loop {
            if held.saturating_add(bytes) > self.cap {
                return None;
            }
            match self.held.compare_exchange_weak(
                held,
                held + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(Reservation {
                        pool: self.clone(),
                        bytes,
                    })
                }
                Err(actual) => held = actual,
            }
        }
    }

    pub(crate) fn note_rename(&self, recycled: bool, chunked: bool) {
        self.renames.fetch_add(1, Ordering::Relaxed);
        if chunked {
            self.chunk_renames.fetch_add(1, Ordering::Relaxed);
        }
        if recycled {
            self.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_elision(&self) {
        self.elided.fetch_add(1, Ordering::Relaxed);
    }

    /// Undo one [`RenamePool::note_elision`]: the builder converted the
    /// elided binding back into a real rename (output-before-input corner),
    /// so `elided` and `renames` stay disjoint and each access is counted
    /// exactly once.
    pub(crate) fn note_unelision(&self) {
        self.elided.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII share of the rename budget: created by [`RenamePool::try_reserve`],
/// returns its bytes on drop.
#[derive(Debug)]
pub struct Reservation {
    pool: Arc<RenamePool>,
    bytes: usize,
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.pool.held.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// Context a handle needs to resolve an access to a concrete version:
/// whether renaming is enabled and which budget to draw from. Built by the
/// runtime for every [`TaskBuilder`](crate::TaskBuilder) access clause.
#[derive(Clone)]
pub struct RenameCx<'a> {
    pub(crate) enabled: bool,
    pub(crate) elision: bool,
    pub(crate) pool: &'a Arc<RenamePool>,
    pub(crate) pool_depth: usize,
    pub(crate) max_versions: usize,
    /// Fault-injection plan, if one is installed: may force a reservation to
    /// see an exhausted budget (see [`crate::failpoint`]).
    pub(crate) fault: Option<&'a crate::failpoint::FaultPlan>,
}

impl<'a> RenameCx<'a> {
    /// Whether `output` accesses should rename.
    pub fn renaming_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether an `output` access may **elide** its rename when the current
    /// version has no in-flight bindings (first-write elision — see
    /// [`crate::rename`], "First-write rename elision").
    pub fn elision_enabled(&self) -> bool {
        self.elision
    }

    /// The budget renamed versions are accounted against.
    pub fn pool(&self) -> &'a Arc<RenamePool> {
        self.pool
    }

    /// Bound on each handle's recycle pool.
    pub fn pool_depth(&self) -> usize {
        self.pool_depth
    }

    /// Bound on the number of live versions per handle.
    pub fn max_versions(&self) -> usize {
        self.max_versions
    }

    /// Reserve `bytes` against the rename budget — the fault-aware front
    /// door every rename-allocation site goes through. An installed
    /// [`FaultPlan`](crate::failpoint::FaultPlan) may force the reservation
    /// to report exhaustion, driving the access down the documented
    /// serialise-in-place backpressure path with the budget untouched.
    pub fn try_reserve(&self, bytes: usize) -> Option<Reservation> {
        if let Some(plan) = self.fault {
            if plan.roll_next(crate::failpoint::FaultClass::RenameExhaustion) {
                // The caller counts the fallback, exactly as for a genuine
                // budget miss.
                return None;
            }
        }
        self.pool.try_reserve(bytes)
    }
}

/// What happened when an access clause was resolved against a handle.
///
/// Returned by [`Accessible::resolve`](crate::handle::Accessible::resolve);
/// consumed by the task builder, which stores the bindings on the task and
/// records rename statistics. One clause usually resolves to one concrete
/// access, but a whole-array clause on a versioned partition resolves to one
/// binding **per chunk chain** — hence the vectors.
pub struct ResolvedAccess {
    /// The concrete accesses (region of each bound version + access kind).
    /// Stored inline (≤2) so the dominant single-binding resolution
    /// allocates nothing.
    pub(crate) accesses: crate::access::AccessVec,
    /// Release hooks decrementing each bound version's in-flight count when
    /// the task completes (empty for unversioned handles). Parallel to the
    /// version-bound (canonical-carrying) subsequence of `accesses`.
    pub(crate) tickets: Vec<Box<dyn VersionTicket>>,
    /// One entry per sub-region the resolution renamed to a new version.
    pub(crate) renamed: Vec<RenameEvent>,
    /// Hooks making each renamed version *current*, run at `spawn()` — see
    /// [`RenameCommit`]. Empty when the resolution did not rename.
    pub(crate) commits: Vec<Box<dyn RenameCommit>>,
}

impl ResolvedAccess {
    /// An access on an unversioned handle: no binding, no rename.
    pub fn plain(access: crate::access::Access) -> Self {
        ResolvedAccess {
            accesses: crate::access::AccessVec::one(access),
            tickets: Vec::new(),
            renamed: Vec::new(),
            commits: Vec::new(),
        }
    }

    /// An access bound to a single version of a versioned handle.
    pub(crate) fn bound(
        access: crate::access::Access,
        ticket: Box<dyn VersionTicket>,
        renamed: Option<RenameEvent>,
        commit: Option<Box<dyn RenameCommit>>,
    ) -> Self {
        ResolvedAccess {
            accesses: crate::access::AccessVec::one(access),
            tickets: vec![ticket],
            renamed: renamed.into_iter().collect(),
            commits: commit.into_iter().collect(),
        }
    }

    /// An empty resolution to merge per-chunk bindings into.
    pub(crate) fn empty() -> Self {
        ResolvedAccess {
            accesses: crate::access::AccessVec::new(),
            tickets: Vec::new(),
            renamed: Vec::new(),
            commits: Vec::new(),
        }
    }

    /// Fold another resolution (e.g. one chunk's binding) into this one.
    pub(crate) fn merge(&mut self, other: ResolvedAccess) {
        self.accesses.append(other.accesses);
        self.tickets.extend(other.tickets);
        self.renamed.extend(other.renamed);
        self.commits.extend(other.commits);
    }

    /// The primary concrete access (single-binding resolutions).
    #[cfg(test)]
    pub(crate) fn access(&self) -> &crate::access::Access {
        &self.accesses[0]
    }
}

/// Record of one rename, reported through the trace as
/// [`TraceEvent::Renamed`](crate::trace::TraceEvent::Renamed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenameEvent {
    /// Allocation id of the superseded version.
    pub from: AllocId,
    /// Allocation id of the new current version.
    pub to: AllocId,
    /// Whether the new version reused pooled storage.
    pub recycled: bool,
    /// For per-chunk renames: index of the renamed chunk within its
    /// partition. `None` for whole-handle renames.
    pub chunk: Option<u32>,
}

/// Release hook held by a task for every version it is bound to; invoked
/// exactly once when the task completes.
pub(crate) trait VersionTicket: Send {
    /// Decrement the bound version's in-flight count (recycling the version
    /// if it became unreferenced and is no longer current).
    fn release(&self);

    /// Convert an **elided** in-place `output` binding into a real rename:
    /// allocate (or pool-recycle) a fresh version, transfer the binding to
    /// it, and return the replacement access/ticket/commit. The handle's
    /// *current* version is untouched until the commit runs at `spawn()`.
    ///
    /// The task builder calls this when it detects the output-before-input
    /// aliasing corner: an `input` clause arriving after an elided `output`
    /// on the same sub-region would otherwise read the very storage the
    /// task overwrites. Returns `None` when renaming is impossible (budget
    /// or version-count backpressure, or the ticket is not an elided output
    /// binding), in which case the in-place binding — and the documented
    /// `inout`-like fallback semantics — stay.
    fn unelide(&self, cx: &RenameCx<'_>) -> Option<ResolvedAccess> {
        let _ = cx;
        None
    }
}

/// Deferred half of a rename. `resolve` *allocates* the new version (so the
/// renaming task is bound to it), but the version only becomes the handle's
/// **current** one when the task is actually inserted — `TaskBuilder::spawn`
/// runs this hook. A builder dropped without spawning never commits: its
/// ticket release reclaims the never-current version and the handle's value
/// is untouched, exactly as if the task had never been written.
pub(crate) trait RenameCommit: Send {
    /// Make the allocated version current, superseding (and possibly
    /// reclaiming) the previous one.
    fn commit(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let pool = Arc::new(RenamePool::new(100));
        let a = pool.try_reserve(60).expect("fits");
        assert_eq!(pool.bytes_held(), 60);
        assert!(pool.try_reserve(50).is_none(), "over budget");
        let b = pool.try_reserve(40).expect("exactly fits");
        assert_eq!(pool.bytes_held(), 100);
        drop(a);
        assert_eq!(pool.bytes_held(), 40);
        drop(b);
        assert_eq!(pool.bytes_held(), 0);
    }

    #[test]
    fn zero_cap_refuses_everything_but_zero() {
        let pool = Arc::new(RenamePool::new(0));
        assert!(pool.try_reserve(1).is_none());
        assert!(pool.try_reserve(0).is_some());
    }

    #[test]
    fn counters_accumulate() {
        let pool = Arc::new(RenamePool::new(10));
        pool.note_rename(false, false);
        pool.note_rename(true, true);
        pool.note_fallback();
        pool.note_elision();
        pool.note_elision();
        assert_eq!(pool.renames(), 2);
        assert_eq!(pool.chunk_renames(), 1);
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.fallbacks(), 1);
        assert_eq!(pool.elided(), 2);
        assert_eq!(pool.cap(), 10);
    }
}

//! Ready-task scheduling policies.
//!
//! Once the dependence graph marks a task *ready* it is handed to the
//! scheduler. The policy determines **where** ready tasks are queued and
//! therefore which worker picks them up:
//!
//! * [`SchedulerPolicy::Fifo`] — one global FIFO queue (breadth-first).
//! * [`SchedulerPolicy::Lifo`] — one global LIFO stack (depth-first).
//! * [`SchedulerPolicy::WorkStealing`] — per-worker deques with stealing;
//!   successor tasks woken by a completing task are pushed to the *global*
//!   queue (no locality preference).
//! * [`SchedulerPolicy::LocalityWorkStealing`] — like `WorkStealing`, but a
//!   successor woken by a completing task is pushed onto the completing
//!   worker's own deque and is typically executed next, back-to-back with its
//!   producer. This is the behaviour the paper credits for the `ray-rot`
//!   speedups ("the runtime scheduler places dependent tasks on the same
//!   core", Section 4) and it is the default.
//! * [`SchedulerPolicy::ShardAffinity`] — like `LocalityWorkStealing`, but
//!   when the completing worker is *not* the last worker to have completed
//!   work on the woken task's dependence-tracker shard, the successor is
//!   routed to that worker's **inbox** instead. The shard of a task's
//!   dominant allocation is a cheap locality key (allocations — and renamed
//!   versions — map to shards round-robin): the worker that last retired a
//!   task on a shard probably still holds that allocation's data warm, and
//!   biasing wakeups toward it pairs the sharded tracker with the locality
//!   wakeup path (what Nanos++ does with socket-aware wakeups).
//!
//! Independently of the policy, tasks with a non-zero priority go to a global
//! priority heap that every worker checks first (the OmpSs `priority`
//! clause).

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker as WorkerDeque};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

use crate::task::TaskNode;

/// Scheduling policy for ready tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Single global FIFO queue.
    Fifo,
    /// Single global LIFO stack.
    Lifo,
    /// Per-worker deques + work stealing, no locality hint for wakeups.
    WorkStealing,
    /// Per-worker deques + work stealing; dependent (woken) tasks are placed
    /// on the waking worker's deque for producer→consumer cache locality.
    #[default]
    LocalityWorkStealing,
    /// `LocalityWorkStealing` plus shard-aware placement: a woken task whose
    /// dependence-tracker shard was last worked on by a *different* worker
    /// is routed to that worker's inbox (see the module docs).
    ShardAffinity,
}

/// What idle workers do while no task is ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdlePolicy {
    /// Spin (with `yield_now` backoff). This is what the Nanos++ runtime of
    /// the paper does: "all used cores are always fully loaded even if there
    /// is insufficient work".
    #[default]
    Polling,
    /// Block on a condition variable until work is pushed. Cheaper for the
    /// system, slower to react — used by the barrier ablation experiment.
    Blocking,
}

/// Scheduler statistics counters (all monotonically increasing).
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Tasks popped from the worker's own deque.
    pub local_pops: AtomicU64,
    /// Tasks obtained from the global injector / queue.
    pub global_pops: AtomicU64,
    /// Tasks stolen from another worker's deque.
    pub steals: AtomicU64,
    /// Wakeups pushed to a local deque (locality hits at scheduling time).
    pub local_wakeups: AtomicU64,
    /// Wakeups pushed to the global queue.
    pub global_wakeups: AtomicU64,
    /// Wakeups routed to another worker's inbox because that worker last
    /// completed work on the woken task's tracker shard
    /// ([`SchedulerPolicy::ShardAffinity`]).
    pub affinity_wakeups: AtomicU64,
    /// Steals served from a *preferred* victim inbox: one whose most
    /// recently routed work belongs to a shard the stealing worker itself
    /// recently completed work on ([`SchedulerPolicy::ShardAffinity`]).
    pub affinity_steals: AtomicU64,
    /// Tasks scheduled through the priority heap.
    pub priority_pops: AtomicU64,
}

struct PrioEntry {
    priority: i32,
    seq: u64,
    node: Arc<TaskNode>,
}

impl PartialEq for PrioEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for PrioEntry {}
impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Higher priority first; for equal priorities, earlier submissions
        // first (smaller seq => greater in the max-heap).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The shared scheduler state.
pub(crate) struct SchedState {
    policy: SchedulerPolicy,
    idle: IdlePolicy,
    injector: Injector<Arc<TaskNode>>,
    lifo: Mutex<Vec<Arc<TaskNode>>>,
    prio: Mutex<BinaryHeap<PrioEntry>>,
    stealers: Vec<Stealer<Arc<TaskNode>>>,
    /// One MPMC inbox per worker: [`SchedulerPolicy::ShardAffinity`] routes
    /// cross-worker wakeups here (a worker's deque can only be pushed by its
    /// owner). Each worker drains its own inbox right after its deque; idle
    /// workers steal from other inboxes last, so routed work never strands.
    inboxes: Vec<Injector<Arc<TaskNode>>>,
    /// Last worker to complete a task on each tracker shard (relaxed;
    /// `usize::MAX` = never). Indexed by shard id.
    shard_homes: Box<[AtomicUsize]>,
    /// Per worker: the tracker shard of the task it most recently completed
    /// (`usize::MAX` = none yet). The thief-side half of the affinity
    /// signal: an idle worker prefers stealing inbox work tagged with its
    /// own recent shard.
    recent_shard: Box<[AtomicUsize]>,
    /// Per worker inbox: the shard of the wakeup most recently routed to it
    /// (`usize::MAX` = never). A cheap single-slot tag — enough to bias the
    /// steal order without inspecting queue contents.
    inbox_last_shard: Box<[AtomicUsize]>,
    prio_seq: AtomicU64,
    /// Number of ready-but-not-yet-executing tasks.
    ready_count: AtomicUsize,
    /// Number of workers currently parked in [`SchedState::idle_wait`]
    /// (always zero under [`IdlePolicy::Polling`]). Pushers consult it
    /// *before* touching `sleep_lock`, so the spawn/replay hot path pays no
    /// mutex round-trip while every worker is busy. The store-buffer race
    /// (pusher misses a just-parking sleeper) is closed by `SeqCst` on both
    /// sides: if the pusher reads no sleepers, the parking worker's
    /// ready-count re-check under the lock sees the pushed work and skips
    /// the wait.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    /// Counters for statistics.
    pub(crate) counters: SchedCounters,
}

impl SchedState {
    /// Create scheduler state for `stealers.len()` workers and
    /// `tracker_shards` dependence-tracker shards.
    pub(crate) fn new(
        policy: SchedulerPolicy,
        idle: IdlePolicy,
        stealers: Vec<Stealer<Arc<TaskNode>>>,
        tracker_shards: usize,
    ) -> Self {
        let workers = stealers.len();
        SchedState {
            policy,
            idle,
            injector: Injector::new(),
            lifo: Mutex::new(Vec::new()),
            prio: Mutex::new(BinaryHeap::new()),
            stealers,
            inboxes: (0..workers).map(|_| Injector::new()).collect(),
            shard_homes: (0..tracker_shards).map(|_| AtomicUsize::new(usize::MAX)).collect(),
            recent_shard: (0..workers).map(|_| AtomicUsize::new(usize::MAX)).collect(),
            inbox_last_shard: (0..workers).map(|_| AtomicUsize::new(usize::MAX)).collect(),
            prio_seq: AtomicU64::new(0),
            ready_count: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            counters: SchedCounters::default(),
        }
    }

    /// Record that `worker` just completed a task whose dominant allocation
    /// lives on tracker shard `shard` (the shard-affinity locality key, on
    /// both sides: the shard remembers its home worker for wakeup routing,
    /// and the worker remembers its recent shard for steal preference).
    pub(crate) fn note_shard_completion(&self, shard: usize, worker: usize) {
        if let Some(home) = self.shard_homes.get(shard) {
            home.store(worker, Ordering::Relaxed);
        }
        if let Some(recent) = self.recent_shard.get(worker) {
            recent.store(shard, Ordering::Relaxed);
        }
    }

    /// The configured policy (diagnostics; exercised by unit tests).
    #[allow(dead_code)]
    pub(crate) fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// The configured idle behaviour (diagnostics; exercised by unit tests).
    #[allow(dead_code)]
    pub(crate) fn idle_policy(&self) -> IdlePolicy {
        self.idle
    }

    /// Number of ready tasks currently queued (diagnostics; exercised by
    /// unit tests).
    #[allow(dead_code)]
    pub(crate) fn ready_tasks(&self) -> usize {
        self.ready_count.load(Ordering::SeqCst)
    }

    fn note_push(&self) {
        self.ready_count.fetch_add(1, Ordering::SeqCst);
        if self.idle == IdlePolicy::Blocking && self.sleepers.load(Ordering::SeqCst) != 0 {
            let _g = self.sleep_lock.lock();
            self.sleep_cv.notify_one();
        }
    }

    fn note_pop(&self) {
        self.ready_count.fetch_sub(1, Ordering::SeqCst);
    }

    fn push_priority(&self, node: Arc<TaskNode>) {
        let seq = self.prio_seq.fetch_add(1, Ordering::Relaxed);
        self.prio.lock().push(PrioEntry {
            priority: node.priority.0,
            seq,
            node,
        });
    }

    /// Queue a freshly spawned (already ready) task. `local` is the deque of
    /// the worker doing the spawning, when spawning from inside a task.
    pub(crate) fn push_spawn(&self, node: Arc<TaskNode>, local: Option<&WorkerDeque<Arc<TaskNode>>>) {
        self.note_push();
        if node.priority.0 != 0 {
            self.push_priority(node);
            return;
        }
        match self.policy {
            SchedulerPolicy::Fifo => self.injector.push(node),
            SchedulerPolicy::Lifo => self.lifo.lock().push(node),
            SchedulerPolicy::WorkStealing
            | SchedulerPolicy::LocalityWorkStealing
            | SchedulerPolicy::ShardAffinity => match local {
                Some(dq) => dq.push(node),
                None => self.injector.push(node),
            },
        }
    }

    /// Queue a whole batch of freshly stamped, already-ready tasks (the
    /// roots of a template replay) with batched bookkeeping: one
    /// `ready_count` bump for the whole batch and — under
    /// [`IdlePolicy::Blocking`] — a single `notify_all` after every node is
    /// queued, instead of a lock/notify round trip per task. The buffer is
    /// drained in place so its capacity stays with the caller's reusable
    /// replay scratch. Replays run from non-worker threads, so there is no
    /// local deque: non-priority nodes go to the shared injector (or the
    /// LIFO stack under [`SchedulerPolicy::Lifo`]).
    pub(crate) fn push_spawn_batch(&self, nodes: &mut Vec<Arc<TaskNode>>) {
        if nodes.is_empty() {
            return;
        }
        self.ready_count.fetch_add(nodes.len(), Ordering::SeqCst);
        for node in nodes.drain(..) {
            if node.priority.0 != 0 {
                self.push_priority(node);
                continue;
            }
            match self.policy {
                SchedulerPolicy::Lifo => self.lifo.lock().push(node),
                SchedulerPolicy::Fifo
                | SchedulerPolicy::WorkStealing
                | SchedulerPolicy::LocalityWorkStealing
                | SchedulerPolicy::ShardAffinity => self.injector.push(node),
            }
        }
        if self.idle == IdlePolicy::Blocking && self.sleepers.load(Ordering::SeqCst) != 0 {
            let _g = self.sleep_lock.lock();
            self.sleep_cv.notify_all();
        }
    }

    /// Queue a task that became ready because one of its predecessors
    /// completed. `local` is the deque (and `worker` the index) of the
    /// worker that completed the predecessor; `shard` is the woken task's
    /// dominant tracker shard, used by [`SchedulerPolicy::ShardAffinity`].
    pub(crate) fn push_wakeup(
        &self,
        node: Arc<TaskNode>,
        local: Option<&WorkerDeque<Arc<TaskNode>>>,
        worker: Option<usize>,
        shard: Option<usize>,
    ) {
        self.note_push();
        if node.priority.0 != 0 {
            self.push_priority(node);
            return;
        }
        match self.policy {
            SchedulerPolicy::Fifo => {
                self.counters.global_wakeups.fetch_add(1, Ordering::Relaxed);
                self.injector.push(node);
            }
            SchedulerPolicy::Lifo => {
                self.counters.global_wakeups.fetch_add(1, Ordering::Relaxed);
                self.lifo.lock().push(node);
            }
            SchedulerPolicy::WorkStealing => {
                self.counters.global_wakeups.fetch_add(1, Ordering::Relaxed);
                self.injector.push(node);
            }
            SchedulerPolicy::LocalityWorkStealing => match local {
                Some(dq) => {
                    self.counters.local_wakeups.fetch_add(1, Ordering::Relaxed);
                    dq.push(node);
                }
                None => {
                    self.counters.global_wakeups.fetch_add(1, Ordering::Relaxed);
                    self.injector.push(node);
                }
            },
            SchedulerPolicy::ShardAffinity => {
                // Bias toward the worker that last completed work on the
                // woken task's shard; when that is the completing worker (or
                // unknown) keep the plain producer→consumer locality push.
                let home = shard
                    .and_then(|s| self.shard_homes.get(s))
                    .map(|h| h.load(Ordering::Relaxed))
                    .filter(|&h| h < self.inboxes.len());
                match (home, worker, local) {
                    // The shard's home is another worker — or the waker is a
                    // helper thread with no deque of its own: route to the
                    // home worker's inbox, tagging it with the shard so
                    // affinity-aware thieves can find the work.
                    (Some(h), w, _) if w != Some(h) => {
                        self.counters.affinity_wakeups.fetch_add(1, Ordering::Relaxed);
                        if let (Some(s), Some(tag)) = (shard, self.inbox_last_shard.get(h)) {
                            tag.store(s, Ordering::Relaxed);
                        }
                        self.inboxes[h].push(node);
                    }
                    (_, _, Some(dq)) => {
                        self.counters.local_wakeups.fetch_add(1, Ordering::Relaxed);
                        dq.push(node);
                    }
                    (_, _, None) => {
                        self.counters.global_wakeups.fetch_add(1, Ordering::Relaxed);
                        self.injector.push(node);
                    }
                }
            }
        }
    }

    /// Try to obtain a ready task for worker `worker_id`. `local` is the
    /// worker's own deque when called from a worker loop; helpers (nested
    /// `taskwait`, the main thread) pass `None`.
    pub(crate) fn pop(
        &self,
        worker_id: usize,
        local: Option<&WorkerDeque<Arc<TaskNode>>>,
    ) -> Option<Arc<TaskNode>> {
        // 1. Priority heap first.
        {
            let mut heap = self.prio.lock();
            if let Some(entry) = heap.pop() {
                drop(heap);
                self.counters.priority_pops.fetch_add(1, Ordering::Relaxed);
                self.note_pop();
                return Some(entry.node);
            }
        }
        // 2. Own inbox (shard-affinity routed wakeups), then own deque. Only
        // the ShardAffinity policy ever pushes to an inbox, so the other
        // policies skip the probe entirely (this is the dispatch hot path).
        let affinity = self.policy == SchedulerPolicy::ShardAffinity;
        if affinity && local.is_some() {
            if let Some(inbox) = self.inboxes.get(worker_id) {
                loop {
                    match inbox.steal() {
                        Steal::Success(node) => {
                            self.counters.local_pops.fetch_add(1, Ordering::Relaxed);
                            self.note_pop();
                            return Some(node);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
            }
        }
        if let Some(dq) = local {
            if let Some(node) = dq.pop() {
                self.counters.local_pops.fetch_add(1, Ordering::Relaxed);
                self.note_pop();
                return Some(node);
            }
        }
        // 3. Global queue.
        match self.policy {
            SchedulerPolicy::Lifo => {
                if let Some(node) = self.lifo.lock().pop() {
                    self.counters.global_pops.fetch_add(1, Ordering::Relaxed);
                    self.note_pop();
                    return Some(node);
                }
            }
            _ => loop {
                match self.injector.steal() {
                    Steal::Success(node) => {
                        self.counters.global_pops.fetch_add(1, Ordering::Relaxed);
                        self.note_pop();
                        return Some(node);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            },
        }
        // 4. Steal from another worker. Under shard affinity, first probe
        // *preferred* inboxes — victims whose most recently routed wakeup
        // belongs to the shard this worker itself last completed work on
        // (the data is warm here; plain round-robin would discard the
        // affinity signal exactly when it matters, at steal time). Then the
        // usual round-robin over deques, then the remaining inboxes (so
        // shard-affinity-routed work never strands on a busy worker).
        let n = self.stealers.len();
        if n > 0 {
            if affinity {
                let recent = self
                    .recent_shard
                    .get(worker_id)
                    .map(|r| r.load(Ordering::Relaxed))
                    .unwrap_or(usize::MAX);
                if recent != usize::MAX {
                    for offset in 1..=n {
                        let victim = (worker_id + offset) % n;
                        if victim == worker_id
                            || self.inbox_last_shard[victim].load(Ordering::Relaxed) != recent
                        {
                            continue;
                        }
                        loop {
                            match self.inboxes[victim].steal() {
                                Steal::Success(node) => {
                                    self.counters.affinity_steals.fetch_add(1, Ordering::Relaxed);
                                    self.counters.steals.fetch_add(1, Ordering::Relaxed);
                                    self.note_pop();
                                    return Some(node);
                                }
                                Steal::Empty => {
                                    // Drop the stale tag (only if it is
                                    // still the one we matched — a racing
                                    // router may have re-tagged the inbox),
                                    // so idle spins stop probing an empty
                                    // inbox ahead of the deque sweep.
                                    let _ = self.inbox_last_shard[victim].compare_exchange(
                                        recent,
                                        usize::MAX,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    );
                                    break;
                                }
                                Steal::Retry => continue,
                            }
                        }
                    }
                }
            }
            for offset in 1..=n {
                let victim = (worker_id + offset) % n;
                if victim == worker_id && local.is_some() {
                    continue;
                }
                loop {
                    match self.stealers[victim].steal() {
                        Steal::Success(node) => {
                            self.counters.steals.fetch_add(1, Ordering::Relaxed);
                            self.note_pop();
                            return Some(node);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
            }
            if affinity {
                for offset in 1..=n {
                    let victim = (worker_id + offset) % n;
                    if victim == worker_id && local.is_some() {
                        continue;
                    }
                    loop {
                        match self.inboxes[victim].steal() {
                            Steal::Success(node) => {
                                self.counters.steals.fetch_add(1, Ordering::Relaxed);
                                self.note_pop();
                                return Some(node);
                            }
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                }
            }
        }
        None
    }

    /// Called by an idle worker after `pop` returned `None`. Under
    /// [`IdlePolicy::Polling`] this spins briefly; under
    /// [`IdlePolicy::Blocking`] it parks until new work is pushed (or a
    /// short timeout elapses so shutdown is always noticed).
    pub(crate) fn idle_wait(&self) {
        match self.idle {
            IdlePolicy::Polling => {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
            IdlePolicy::Blocking => {
                let mut guard = self.sleep_lock.lock();
                // Announce the park *before* re-checking for work (see the
                // `sleepers` field docs); the short timeout bounds any
                // missed wakeup and keeps shutdown responsive.
                self.sleepers.fetch_add(1, Ordering::SeqCst);
                if self.ready_count.load(Ordering::SeqCst) == 0 {
                    self.sleep_cv
                        .wait_for(&mut guard, Duration::from_millis(1));
                }
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Wake every parked worker (used at shutdown).
    pub(crate) fn wake_all(&self) {
        let _g = self.sleep_lock.lock();
        self.sleep_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessVec;
    use crate::task::{ChildTracker, TaskPriority};

    fn node(priority: i32) -> Arc<TaskNode> {
        TaskNode::new(
            None,
            TaskPriority(priority),
            AccessVec::new(),
            |_| {},
            ChildTracker::new(),
            crate::task::INLINE_BODY_BYTES,
            &mut false,
        )
    }

    fn sched(policy: SchedulerPolicy, workers: usize) -> (SchedState, Vec<WorkerDeque<Arc<TaskNode>>>) {
        let deques: Vec<WorkerDeque<Arc<TaskNode>>> =
            (0..workers).map(|_| WorkerDeque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        (
            SchedState::new(policy, IdlePolicy::Polling, stealers, 4),
            deques,
        )
    }

    #[test]
    fn fifo_policy_preserves_order() {
        let (s, _d) = sched(SchedulerPolicy::Fifo, 1);
        let (a, b, c) = (node(0), node(0), node(0));
        s.push_spawn(a.clone(), None);
        s.push_spawn(b.clone(), None);
        s.push_wakeup(c.clone(), None, None, None);
        assert_eq!(s.ready_tasks(), 3);
        assert_eq!(s.pop(0, None).unwrap().id, a.id);
        assert_eq!(s.pop(0, None).unwrap().id, b.id);
        assert_eq!(s.pop(0, None).unwrap().id, c.id);
        assert!(s.pop(0, None).is_none());
        assert_eq!(s.ready_tasks(), 0);
    }

    #[test]
    fn lifo_policy_reverses_order() {
        let (s, _d) = sched(SchedulerPolicy::Lifo, 1);
        let (a, b) = (node(0), node(0));
        s.push_spawn(a.clone(), None);
        s.push_spawn(b.clone(), None);
        assert_eq!(s.pop(0, None).unwrap().id, b.id);
        assert_eq!(s.pop(0, None).unwrap().id, a.id);
    }

    #[test]
    fn priority_tasks_jump_the_queue() {
        let (s, _d) = sched(SchedulerPolicy::Fifo, 1);
        let (a, hi, b) = (node(0), node(5), node(0));
        s.push_spawn(a.clone(), None);
        s.push_spawn(hi.clone(), None);
        s.push_spawn(b.clone(), None);
        assert_eq!(s.pop(0, None).unwrap().id, hi.id);
        assert_eq!(s.pop(0, None).unwrap().id, a.id);
        assert_eq!(s.pop(0, None).unwrap().id, b.id);
    }

    #[test]
    fn equal_priority_is_fifo_among_priority_tasks() {
        let (s, _d) = sched(SchedulerPolicy::Fifo, 1);
        let (p1, p2) = (node(3), node(3));
        s.push_spawn(p1.clone(), None);
        s.push_spawn(p2.clone(), None);
        assert_eq!(s.pop(0, None).unwrap().id, p1.id);
        assert_eq!(s.pop(0, None).unwrap().id, p2.id);
    }

    #[test]
    fn locality_wakeups_go_to_local_deque() {
        let (s, deques) = sched(SchedulerPolicy::LocalityWorkStealing, 2);
        let w = node(0);
        s.push_wakeup(w.clone(), Some(&deques[0]), Some(0), None);
        assert_eq!(s.counters.local_wakeups.load(Ordering::Relaxed), 1);
        // Worker 0 finds it in its own deque.
        let got = s.pop(0, Some(&deques[0])).unwrap();
        assert_eq!(got.id, w.id);
        assert_eq!(s.counters.local_pops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn plain_work_stealing_wakeups_go_global() {
        let (s, deques) = sched(SchedulerPolicy::WorkStealing, 2);
        let w = node(0);
        s.push_wakeup(w.clone(), Some(&deques[0]), Some(0), None);
        assert_eq!(s.counters.global_wakeups.load(Ordering::Relaxed), 1);
        // Worker 1 can grab it from the injector without stealing.
        let got = s.pop(1, Some(&deques[1])).unwrap();
        assert_eq!(got.id, w.id);
    }

    #[test]
    fn shard_affinity_routes_wakeups_to_the_shard_home() {
        let (s, deques) = sched(SchedulerPolicy::ShardAffinity, 2);
        // Worker 1 last completed work on shard 3.
        s.note_shard_completion(3, 1);
        let w = node(0);
        // Worker 0 completes the predecessor: the wakeup goes to worker 1's
        // inbox, not worker 0's deque.
        s.push_wakeup(w.clone(), Some(&deques[0]), Some(0), Some(3));
        assert_eq!(s.counters.affinity_wakeups.load(Ordering::Relaxed), 1);
        assert_eq!(s.counters.local_wakeups.load(Ordering::Relaxed), 0);
        let got = s.pop(1, Some(&deques[1])).unwrap();
        assert_eq!(got.id, w.id);
        assert_eq!(s.counters.local_pops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shard_affinity_keeps_local_push_when_home_matches_or_is_unknown() {
        let (s, deques) = sched(SchedulerPolicy::ShardAffinity, 2);
        // Unknown home: plain locality push onto the waking worker's deque.
        let a = node(0);
        s.push_wakeup(a.clone(), Some(&deques[0]), Some(0), Some(2));
        assert_eq!(s.counters.local_wakeups.load(Ordering::Relaxed), 1);
        assert_eq!(s.pop(0, Some(&deques[0])).unwrap().id, a.id);
        // Home == waking worker: also a local push.
        s.note_shard_completion(2, 0);
        let b = node(0);
        s.push_wakeup(b.clone(), Some(&deques[0]), Some(0), Some(2));
        assert_eq!(s.counters.local_wakeups.load(Ordering::Relaxed), 2);
        assert_eq!(s.counters.affinity_wakeups.load(Ordering::Relaxed), 0);
        assert_eq!(s.pop(0, Some(&deques[0])).unwrap().id, b.id);
    }

    #[test]
    fn thief_prefers_inboxes_holding_its_recent_shard() {
        let (s, deques) = sched(SchedulerPolicy::ShardAffinity, 3);
        // Worker 0 once completed shard-3 work; shard 3's home then moved to
        // worker 1 (it completed shard 3 last), so a shard-3 wakeup from
        // worker 2 is routed to worker 1's inbox.
        s.note_shard_completion(3, 0);
        s.note_shard_completion(3, 1);
        let w = node(0);
        s.push_wakeup(w.clone(), Some(&deques[2]), Some(2), Some(3));
        assert_eq!(s.counters.affinity_wakeups.load(Ordering::Relaxed), 1);
        // Worker 0 is idle: its recent shard (3) matches worker 1's inbox
        // tag, so the steal comes from the preferred inbox — before any
        // round-robin deque steal — and is counted.
        let got = s.pop(0, Some(&deques[0])).unwrap();
        assert_eq!(got.id, w.id);
        assert_eq!(s.counters.affinity_steals.load(Ordering::Relaxed), 1);
        assert_eq!(s.counters.steals.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn thief_without_matching_recent_shard_steals_round_robin() {
        let (s, deques) = sched(SchedulerPolicy::ShardAffinity, 2);
        s.note_shard_completion(1, 1);
        let w = node(0);
        // Routed to worker 1's inbox with tag 1; worker 0 never completed
        // anything, so no preferred probe happens — the last-resort inbox
        // steal still finds the task, but the affinity-steal counter stays 0.
        s.push_wakeup(w.clone(), Some(&deques[0]), Some(0), Some(1));
        let got = s.pop(0, Some(&deques[0])).unwrap();
        assert_eq!(got.id, w.id);
        assert_eq!(s.counters.affinity_steals.load(Ordering::Relaxed), 0);
        assert_eq!(s.counters.steals.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn idle_worker_steals_from_a_busy_workers_inbox() {
        let (s, deques) = sched(SchedulerPolicy::ShardAffinity, 2);
        s.note_shard_completion(1, 0);
        let w = node(0);
        // Routed to worker 0's inbox, but worker 0 never polls: worker 1
        // must still find it (last-resort inbox steal).
        s.push_wakeup(w.clone(), Some(&deques[1]), Some(1), Some(1));
        assert_eq!(s.counters.affinity_wakeups.load(Ordering::Relaxed), 1);
        let got = s.pop(1, Some(&deques[1])).unwrap();
        assert_eq!(got.id, w.id);
        assert_eq!(s.counters.steals.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stealing_from_other_worker() {
        let (s, deques) = sched(SchedulerPolicy::LocalityWorkStealing, 2);
        let w = node(0);
        // Task sits in worker 0's deque; worker 1 must steal it.
        s.push_spawn(w.clone(), Some(&deques[0]));
        let got = s.pop(1, Some(&deques[1])).unwrap();
        assert_eq!(got.id, w.id);
        assert_eq!(s.counters.steals.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn helper_without_local_deque_can_still_pop() {
        let (s, deques) = sched(SchedulerPolicy::LocalityWorkStealing, 1);
        let w = node(0);
        s.push_spawn(w.clone(), Some(&deques[0]));
        // A helper (None local) steals from worker 0.
        let got = s.pop(0, None).unwrap();
        assert_eq!(got.id, w.id);
    }

    #[test]
    fn idle_wait_polling_returns_quickly() {
        let (s, _d) = sched(SchedulerPolicy::Fifo, 1);
        let start = std::time::Instant::now();
        s.idle_wait();
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn idle_wait_blocking_wakes_on_push() {
        let deques: Vec<WorkerDeque<Arc<TaskNode>>> = vec![WorkerDeque::new_lifo()];
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let s = Arc::new(SchedState::new(
            SchedulerPolicy::Fifo,
            IdlePolicy::Blocking,
            stealers,
            2,
        ));
        let s2 = s.clone();
        let handle = std::thread::spawn(move || {
            // Either wakes on notify or on the internal timeout; both fine.
            s2.idle_wait();
        });
        std::thread::sleep(Duration::from_millis(2));
        s.push_spawn(node(0), None);
        s.wake_all();
        handle.join().unwrap();
        assert_eq!(s.ready_tasks(), 1);
    }
}

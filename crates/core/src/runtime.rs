//! The runtime: task spawning, dependence registration, synchronisation.
//!
//! [`Runtime`] owns the worker threads and the shared state (scheduler,
//! dependence tracker, statistics, trace). Tasks are spawned through
//! [`TaskBuilder`] which mirrors the OmpSs pragma clauses; inside a task body
//! a [`TaskContext`] gives checked access to the declared data and allows
//! nested task creation.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::deque::Worker as WorkerDeque;
use parking_lot::{Condvar, Mutex};

use crate::access::{Access, AccessKind};
use crate::critical::CriticalSections;
use crate::error::{Error, Result};
use crate::graph::{self, DependencyTracker};
use crate::handle::{
    Accessible, Chunk, Data, PartitionedData, ReadGuard, SliceReadGuard, SliceWriteGuard, Whole,
    WriteGuard,
};
use crate::scheduler::{IdlePolicy, SchedState, SchedulerPolicy};
use crate::stats::{RuntimeStats, StatCounters, StatField};
use crate::task::{ChildTracker, TaskId, TaskNode, TaskPriority};
use crate::trace::{TraceEvent, TraceRecorder};
use crate::worker;

/// How often (in spawned tasks) the dependence tracker is garbage collected.
const GC_PERIOD: u64 = 512;

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker threads executing tasks. The main (spawning) thread
    /// does not execute tasks, mirroring a dedicated-master configuration.
    pub workers: usize,
    /// Ready-task scheduling policy.
    pub policy: SchedulerPolicy,
    /// Behaviour of idle workers.
    pub idle: IdlePolicy,
    /// Whether to record an execution trace.
    pub tracing: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        RuntimeConfig {
            workers,
            policy: SchedulerPolicy::default(),
            idle: IdlePolicy::default(),
            tracing: false,
        }
    }
}

impl RuntimeConfig {
    /// Set the number of worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the scheduling policy.
    pub fn with_policy(mut self, policy: SchedulerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the idle-worker behaviour.
    pub fn with_idle(mut self, idle: IdlePolicy) -> Self {
        self.idle = idle;
        self
    }

    /// Enable or disable execution tracing.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }
}

pub(crate) struct RuntimeInner {
    pub(crate) config: RuntimeConfig,
    pub(crate) sched: SchedState,
    pub(crate) tracker: Mutex<DependencyTracker>,
    pub(crate) root_children: Arc<ChildTracker>,
    pub(crate) in_flight: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) stats: StatCounters,
    pub(crate) trace: TraceRecorder,
    pub(crate) critical: CriticalSections,
    pub(crate) panics: Mutex<Vec<Error>>,
    spawn_count: AtomicU64,
}

impl RuntimeInner {
    fn spawn_node(
        &self,
        node: Arc<TaskNode>,
        local: Option<&WorkerDeque<Arc<TaskNode>>>,
    ) -> TaskId {
        let id = node.id;
        self.stats.add(StatField::TasksSpawned, 1);
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        node.parent_children.add_child();

        let registration = {
            let mut tracker = self.tracker.lock();
            let reg = tracker.register(&node);
            let count = self.spawn_count.fetch_add(1, Ordering::Relaxed) + 1;
            if count % GC_PERIOD == 0 {
                tracker.garbage_collect();
            }
            reg
        };
        self.stats
            .add(StatField::EdgesAdded, registration.edges as u64);
        if self.trace.is_enabled() {
            self.trace.record(TraceEvent::Spawned {
                task: id,
                name: node.name.clone(),
                at_ns: self.trace.now_ns(),
                deps: registration.edges,
            });
        }
        if graph::finish_registration(&node) {
            self.stats.add(StatField::ImmediatelyReady, 1);
            if self.trace.is_enabled() {
                self.trace.record(TraceEvent::Ready {
                    task: id,
                    at_ns: self.trace.now_ns(),
                });
            }
            self.sched.push_spawn(node, local);
        }
        id
    }

    pub(crate) fn record_panic(&self, err: Error) {
        self.stats.add(StatField::TasksPanicked, 1);
        self.panics.lock().push(err);
    }

    fn quiescent(&self) -> bool {
        self.in_flight.load(Ordering::SeqCst) == 0
    }
}

/// The OmpSs-style task runtime.
///
/// Dropping the runtime shuts the workers down after waiting for all
/// in-flight tasks to finish.
pub struct Runtime {
    inner: Arc<RuntimeInner>,
    threads: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Create a runtime, panicking on invalid configuration.
    ///
    /// See [`Runtime::try_new`] for the fallible variant.
    pub fn new(config: RuntimeConfig) -> Self {
        Self::try_new(config).expect("invalid runtime configuration")
    }

    /// Create a runtime with the given configuration.
    pub fn try_new(config: RuntimeConfig) -> Result<Self> {
        if config.workers == 0 {
            return Err(Error::InvalidConfig(
                "at least one worker thread is required".into(),
            ));
        }
        let deques: Vec<WorkerDeque<Arc<TaskNode>>> = (0..config.workers)
            .map(|_| WorkerDeque::new_lifo())
            .collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let sched = SchedState::new(config.policy, config.idle, stealers);
        let inner = Arc::new(RuntimeInner {
            sched,
            tracker: Mutex::new(DependencyTracker::new()),
            root_children: ChildTracker::new(),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            stats: StatCounters::default(),
            trace: TraceRecorder::new(config.tracing),
            critical: CriticalSections::new(),
            panics: Mutex::new(Vec::new()),
            spawn_count: AtomicU64::new(0),
            config,
        });
        let mut threads = Vec::with_capacity(inner.config.workers);
        for (id, deque) in deques.into_iter().enumerate() {
            let inner = inner.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ompss-worker-{id}"))
                    .spawn(move || worker::worker_loop(inner, deque, id))
                    .expect("failed to spawn worker thread"),
            );
        }
        Ok(Runtime { inner, threads })
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.inner.config.workers
    }

    /// The scheduling policy in use.
    pub fn policy(&self) -> SchedulerPolicy {
        self.inner.config.policy
    }

    /// Register a value with the runtime, obtaining a dependence handle.
    pub fn data<T: Send + 'static>(&self, value: T) -> Data<T> {
        Data::new(value)
    }

    /// Register a vector partitioned into chunks of `chunk_len` elements.
    pub fn partitioned<T: Send + 'static>(
        &self,
        data: Vec<T>,
        chunk_len: usize,
    ) -> PartitionedData<T> {
        PartitionedData::new(data, chunk_len)
    }

    /// Begin building a task spawned from the main program context.
    pub fn task(&self) -> TaskBuilder<'_> {
        TaskBuilder {
            inner: &self.inner,
            parent_children: self.inner.root_children.clone(),
            deque: None,
            name: None,
            priority: TaskPriority::default(),
            accesses: Vec::new(),
        }
    }

    /// Wait until every task spawned from the main context (and transitively
    /// every task those spawned, since children always finish before their
    /// parents' counters drop) has completed.
    ///
    /// This is the polling "task barrier" of the paper: the calling thread
    /// spins (with `yield`) rather than blocking in the kernel.
    pub fn taskwait(&self) {
        self.inner.stats.add(StatField::Taskwaits, 1);
        let mut spins = 0u32;
        while self.inner.root_children.live_children() > 0
            || self.inner.in_flight.load(Ordering::SeqCst) > 0
        {
            backoff(&mut spins);
        }
    }

    /// Wait only for the in-flight tasks that access (a region overlapping)
    /// `handle` — the `#pragma omp taskwait on (x)` of Listing 1.
    pub fn taskwait_on(&self, handle: &impl Accessible) {
        self.inner.stats.add(StatField::TaskwaitOns, 1);
        let region = handle.region();
        let touching = self.inner.tracker.lock().tasks_touching(&region);
        for task in touching {
            let mut spins = 0u32;
            while !task.is_completed() {
                backoff(&mut spins);
            }
        }
    }

    /// Full task barrier: wait for global quiescence (all in-flight tasks,
    /// regardless of spawning context).
    pub fn barrier(&self) {
        self.inner.stats.add(StatField::Taskwaits, 1);
        let mut spins = 0u32;
        while !self.inner.quiescent() {
            backoff(&mut spins);
        }
    }

    /// Execute `f` under the named critical section (the `#pragma omp
    /// critical(name)` used to protect the hidden DPB/PIB buffers in the
    /// paper's H.264 decoder).
    pub fn critical<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.inner.critical.enter(name, f)
    }

    /// Read back a copy of the value behind `data`, respecting dependences:
    /// the copy observes every task spawned before this call that writes
    /// `data`.
    pub fn fetch<T: Clone + Send + 'static>(&self, data: &Data<T>) -> T {
        let slot: Arc<(Mutex<Option<T>>, Condvar)> = Arc::new((Mutex::new(None), Condvar::new()));
        {
            let slot = slot.clone();
            let data = data.clone();
            self.task()
                .name("ompss::fetch")
                .input(&data)
                .spawn(move |ctx| {
                    let value = ctx.read(&data).clone();
                    let (lock, cv) = &*slot;
                    *lock.lock() = Some(value);
                    cv.notify_all();
                });
        }
        let (lock, cv) = &*slot;
        let mut guard = lock.lock();
        while guard.is_none() {
            cv.wait(&mut guard);
        }
        guard.take().expect("fetch task stored a value")
    }

    /// Wait for all tasks touching `data`, then unwrap the value. Panics if
    /// other clones of the handle are still alive.
    pub fn into_inner<T: Send + 'static>(&self, data: Data<T>) -> T {
        self.taskwait_on(&data);
        match data.try_into_inner() {
            Ok(v) => v,
            Err(_) => panic!("Data handle is still shared; drop the other clones first"),
        }
    }

    /// Wait for all tasks touching the partitioned vector, then unwrap it.
    /// Panics if other clones of the handle (or of any chunk) are alive.
    pub fn into_vec<T: Send + 'static>(&self, data: PartitionedData<T>) -> Vec<T> {
        self.taskwait_on(&data.whole());
        match data.try_into_vec() {
            Ok(v) => v,
            Err(_) => panic!("PartitionedData handle is still shared; drop the other clones first"),
        }
    }

    /// Snapshot of the runtime statistics.
    pub fn stats(&self) -> RuntimeStats {
        let c = &self.inner.stats;
        let s = &self.inner.sched.counters;
        RuntimeStats {
            workers: self.inner.config.workers,
            tasks_spawned: c.get(StatField::TasksSpawned),
            tasks_executed: c.get(StatField::TasksExecuted),
            tasks_panicked: c.get(StatField::TasksPanicked),
            edges_added: c.get(StatField::EdgesAdded),
            immediately_ready: c.get(StatField::ImmediatelyReady),
            taskwaits: c.get(StatField::Taskwaits),
            taskwait_ons: c.get(StatField::TaskwaitOns),
            sched_local_pops: s.local_pops.load(Ordering::Relaxed),
            sched_global_pops: s.global_pops.load(Ordering::Relaxed),
            sched_steals: s.steals.load(Ordering::Relaxed),
            sched_local_wakeups: s.local_wakeups.load(Ordering::Relaxed),
            sched_global_wakeups: s.global_wakeups.load(Ordering::Relaxed),
            sched_priority_pops: s.priority_pops.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the execution trace (empty unless tracing was enabled).
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.inner.trace.snapshot()
    }

    /// Busy nanoseconds per worker derived from the trace.
    pub fn busy_ns_per_worker(&self) -> Vec<u64> {
        self.inner.trace.busy_ns_per_worker()
    }

    /// Export the execution trace in Chrome-tracing JSON format (empty array
    /// unless tracing was enabled). Load the string into `chrome://tracing`
    /// or Perfetto to get the per-worker Gantt view the OmpSs toolchain
    /// produces with Paraver.
    pub fn chrome_trace(&self) -> String {
        self.inner.trace.to_chrome_trace()
    }

    /// Errors recorded from panicking task bodies since the last call.
    pub fn take_panics(&self) -> Vec<Error> {
        std::mem::take(&mut *self.inner.panics.lock())
    }

    /// Shut the runtime down explicitly (also happens on drop): waits for all
    /// in-flight tasks and joins the worker threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.barrier();
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.sched.wake_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown_impl();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.inner.config.workers)
            .field("policy", &self.inner.config.policy)
            .field("in_flight", &self.inner.in_flight.load(Ordering::SeqCst))
            .finish()
    }
}

fn backoff(spins: &mut u32) {
    if *spins < 64 {
        std::hint::spin_loop();
        *spins += 1;
    } else {
        std::thread::yield_now();
    }
}

// ---------------------------------------------------------------------------
// TaskBuilder
// ---------------------------------------------------------------------------

/// Builder for a task, mirroring the clauses of `#pragma omp task`.
pub struct TaskBuilder<'r> {
    inner: &'r Arc<RuntimeInner>,
    parent_children: Arc<ChildTracker>,
    deque: Option<&'r WorkerDeque<Arc<TaskNode>>>,
    name: Option<Arc<str>>,
    priority: TaskPriority,
    accesses: Vec<Access>,
}

impl<'r> TaskBuilder<'r> {
    /// Give the task a name (shown in traces and panic reports).
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(Arc::from(name));
        self
    }

    /// Set the scheduling priority (higher runs earlier among ready tasks).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = TaskPriority(priority);
        self
    }

    /// Declare a read access (`input(x)`).
    pub fn input(mut self, handle: &impl Accessible) -> Self {
        self.accesses
            .push(Access::new(handle.region(), AccessKind::Input));
        self
    }

    /// Declare a write access (`output(x)`).
    pub fn output(mut self, handle: &impl Accessible) -> Self {
        self.accesses
            .push(Access::new(handle.region(), AccessKind::Output));
        self
    }

    /// Declare a read-write access (`inout(x)`).
    pub fn inout(mut self, handle: &impl Accessible) -> Self {
        self.accesses
            .push(Access::new(handle.region(), AccessKind::InOut));
        self
    }

    /// Declare a commutative-update access (`concurrent(x)`).
    pub fn concurrent(mut self, handle: &impl Accessible) -> Self {
        self.accesses
            .push(Access::new(handle.region(), AccessKind::Concurrent));
        self
    }

    /// Declare an access with an explicit kind.
    pub fn access(mut self, kind: AccessKind, handle: &impl Accessible) -> Self {
        self.accesses.push(Access::new(handle.region(), kind));
        self
    }

    /// Spawn the task. The closure receives a [`TaskContext`] through which
    /// it obtains guarded access to the declared data.
    pub fn spawn<F>(self, body: F) -> TaskId
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        let node = TaskNode::new(
            self.name,
            self.priority,
            Arc::from(self.accesses.into_boxed_slice()),
            Box::new(body),
            self.parent_children,
        );
        self.inner.spawn_node(node, self.deque)
    }
}

// ---------------------------------------------------------------------------
// TaskContext
// ---------------------------------------------------------------------------

/// Handed to every task body; provides checked access to declared data,
/// nested task creation and synchronisation.
pub struct TaskContext<'a> {
    pub(crate) inner: &'a Arc<RuntimeInner>,
    pub(crate) node: &'a Arc<TaskNode>,
    pub(crate) worker: Option<usize>,
    pub(crate) deque: Option<&'a WorkerDeque<Arc<TaskNode>>>,
}

impl<'a> TaskContext<'a> {
    /// Id of the executing task.
    pub fn task_id(&self) -> TaskId {
        self.node.id
    }

    /// Index of the worker executing this task, if known.
    pub fn worker_id(&self) -> Option<usize> {
        self.worker
    }

    /// Name of the executing task, if it was given one.
    pub fn task_name(&self) -> Option<&str> {
        self.node.name.as_deref()
    }

    fn check_access(&self, region: &crate::region::Region, write: bool, what: &str) {
        let ok = self.node.accesses.iter().any(|a| {
            a.region.contains(region) && (!write || a.kind.allows_mutation())
        });
        if !ok {
            panic!(
                "task `{}` accessed {what} {} ({}) without declaring a matching {} access",
                self.node.display_name(),
                region.id,
                if write { "mutably" } else { "for reading" },
                if write { "output/inout/concurrent" } else { "input/inout" },
            );
        }
    }

    /// Obtain shared access to `data`; the task must have declared any access
    /// on it.
    pub fn read<'d, T: Send + 'static>(&self, data: &'d Data<T>) -> ReadGuard<'d, T> {
        self.check_access(&data.region(), false, "data");
        ReadGuard {
            value: unsafe { &*data.ptr() },
        }
    }

    /// Obtain exclusive access to `data`; the task must have declared an
    /// `output`, `inout` or `concurrent` access on it.
    pub fn write<'d, T: Send + 'static>(&self, data: &'d Data<T>) -> WriteGuard<'d, T> {
        self.check_access(&data.region(), true, "data");
        WriteGuard {
            value: unsafe { &mut *data.ptr() },
        }
    }

    /// Obtain shared access to one chunk of a partitioned vector.
    pub fn read_chunk<'d, T: Send + 'static>(&self, chunk: &'d Chunk<T>) -> SliceReadGuard<'d, T> {
        self.check_access(&chunk.region(), false, "chunk");
        let (ptr, len) = chunk.slice_ptr();
        SliceReadGuard {
            slice: unsafe { std::slice::from_raw_parts(ptr, len) },
        }
    }

    /// Obtain exclusive access to one chunk of a partitioned vector.
    pub fn write_chunk<'d, T: Send + 'static>(
        &self,
        chunk: &'d Chunk<T>,
    ) -> SliceWriteGuard<'d, T> {
        self.check_access(&chunk.region(), true, "chunk");
        let (ptr, len) = chunk.slice_ptr();
        SliceWriteGuard {
            slice: unsafe { std::slice::from_raw_parts_mut(ptr, len) },
        }
    }

    /// Obtain shared access to the whole partitioned vector.
    pub fn read_whole<'d, T: Send + 'static>(&self, whole: &'d Whole<T>) -> SliceReadGuard<'d, T> {
        self.check_access(&whole.region(), false, "array");
        let (ptr, len) = whole.slice_ptr();
        SliceReadGuard {
            slice: unsafe { std::slice::from_raw_parts(ptr, len) },
        }
    }

    /// Obtain exclusive access to the whole partitioned vector.
    pub fn write_whole<'d, T: Send + 'static>(
        &self,
        whole: &'d Whole<T>,
    ) -> SliceWriteGuard<'d, T> {
        self.check_access(&whole.region(), true, "array");
        let (ptr, len) = whole.slice_ptr();
        SliceWriteGuard {
            slice: unsafe { std::slice::from_raw_parts_mut(ptr, len) },
        }
    }

    /// Begin building a nested task (child of the current task).
    pub fn task(&self) -> TaskBuilder<'a> {
        TaskBuilder {
            inner: self.inner,
            parent_children: self.node.children.clone(),
            deque: self.deque,
            name: None,
            priority: TaskPriority::default(),
            accesses: Vec::new(),
        }
    }

    /// Wait for the direct children of the current task. While waiting, the
    /// calling worker helps execute ready tasks so that nested `taskwait`
    /// never deadlocks the pool.
    pub fn taskwait(&self) {
        self.inner.stats.add(StatField::Taskwaits, 1);
        let mut spins = 0u32;
        while self.node.children.live_children() > 0 {
            let helper_id = self.worker.unwrap_or(0);
            if let Some(task) = self.inner.sched.pop(helper_id, None) {
                worker::execute_task(self.inner, task, self.worker, None);
                spins = 0;
            } else {
                backoff(&mut spins);
            }
        }
    }

    /// Wait for the in-flight tasks accessing `handle` (helping execute ready
    /// tasks meanwhile).
    pub fn taskwait_on(&self, handle: &impl Accessible) {
        self.inner.stats.add(StatField::TaskwaitOns, 1);
        let region = handle.region();
        let touching = self.inner.tracker.lock().tasks_touching(&region);
        let helper_id = self.worker.unwrap_or(0);
        for task in touching {
            let mut spins = 0u32;
            while !task.is_completed() {
                if let Some(t) = self.inner.sched.pop(helper_id, None) {
                    worker::execute_task(self.inner, t, self.worker, None);
                    spins = 0;
                } else {
                    backoff(&mut spins);
                }
            }
        }
    }

    /// Execute `f` under the named critical section.
    pub fn critical<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.inner.critical.enter(name, f)
    }
}

impl std::fmt::Debug for TaskContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskContext")
            .field("task", &self.node.id)
            .field("worker", &self.worker)
            .finish()
    }
}
